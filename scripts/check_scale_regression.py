#!/usr/bin/env python3
"""Throughput-regression guard for BENCH_*.json telemetry.

Compares a fresh benchmark run against committed baseline telemetry
(e.g. results/BENCH_scale.json for exp_scale, BENCH_estimators.json
for exp_estimators) and fails when any run shared by both files got
more than REGRESSION_TOLERANCE slower. Wall-clock noise on shared CI
runners is real, so the guard compares only runs present in both files
(the committed baseline may be the full grid; the smoke grid is a
subset) and a generous default tolerance is used.

Usage: check_scale_regression.py BASELINE.json FRESH.json [tolerance]

Exit status: 0 when no run regressed beyond tolerance, 1 otherwise.
"""

import json
import sys

# Runs faster than this are timer-noise-dominated (the smoke grid's
# repair/dispatch rows finish in ~1 ms); a 1.2x swing on them says
# nothing about throughput, so they are reported but never fail the
# guard.
MIN_COMPARABLE_WALL = 0.005


def load_runs(path):
    with open(path) as fh:
        report = json.load(fh)
    return {
        run["name"]: run
        for run in report.get("runs", [])
        if isinstance(run.get("wall_seconds"), (int, float))
    }


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = float(argv[3]) if len(argv) > 3 else 1.20
    baseline = load_runs(argv[1])
    fresh = load_runs(argv[2])
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("no shared runs between baseline and fresh report", file=sys.stderr)
        return 1

    regressions = []
    for name in shared:
        base_wall = baseline[name]["wall_seconds"]
        fresh_wall = fresh[name]["wall_seconds"]
        if base_wall <= 0:
            continue
        ratio = fresh_wall / base_wall
        noise = max(base_wall, fresh_wall) < MIN_COMPARABLE_WALL
        if ratio > tolerance:
            status = "noise (too fast to compare)" if noise else "REGRESSED"
        else:
            status = "ok"
        print(f"{name}: baseline {base_wall:.6f}s fresh {fresh_wall:.6f}s ({ratio:.2f}x) {status}")
        if ratio > tolerance and not noise:
            regressions.append((name, ratio))

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(
            f"{len(regressions)} run(s) regressed beyond {tolerance:.2f}x; "
            f"worst: {worst[0]} at {worst[1]:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(shared)} shared runs within {tolerance:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
