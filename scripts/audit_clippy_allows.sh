#!/usr/bin/env bash
# Audit `#[allow(clippy::…)]` occurrences against the reviewed
# allow-list (scripts/clippy_allowlist.txt). Fails when the tree grows
# an allow the list does not record, or when the list carries stale
# entries for allows that no longer exist.
set -euo pipefail
cd "$(dirname "$0")/.."

actual=$(grep -rno 'allow(clippy::[a-z_]*)' crates src tests examples 2>/dev/null \
  | sed -E 's/:[0-9]+:allow\((clippy::[a-z_]*)\)/ \1/' \
  | sort -u)
expected=$(grep -v '^#' scripts/clippy_allowlist.txt | grep -v '^$' | sort -u)

if ! diff <(echo "$expected") <(echo "$actual") >/dev/null; then
  echo "clippy allow-list drift detected:" >&2
  diff <(echo "$expected") <(echo "$actual") >&2 || true
  echo "(< recorded in scripts/clippy_allowlist.txt, > found in tree)" >&2
  exit 1
fi
echo "clippy allow-list clean: $(echo "$actual" | grep -c .) audited allow(s)"
