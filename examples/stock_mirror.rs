//! A stock-quote mirror for day traders — the paper's motivating "aligned"
//! case: the most volatile tickers are exactly the ones users watch.
//!
//! Demonstrates:
//! * aggregating individual user profiles (with per-user priority weights
//!   — the paper's "generals or higher paying customers") into the master
//!   profile;
//! * why the interest-blind scheduler collapses here: it starves volatile
//!   tickers as "hopeless", but those are the ones everyone queries;
//! * verifying both schedules in the discrete-event simulator.
//!
//! ```text
//! cargo run --release --example stock_mirror
//! ```

use freshen::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TICKERS: usize = 200;

fn main() {
    let mut rng = StdRng::seed_from_u64(2003);

    // Volatility: a few meme stocks update constantly, most barely move.
    // Ticker i's change rate decays with i (ticker 0 most volatile).
    let change_rates: Vec<f64> = (0..TICKERS)
        .map(|i| 20.0 / (1.0 + i as f64 * 0.5) + rng.gen_range(0.0..0.05))
        .collect();

    // Build individual trader profiles. Day traders chase volatility:
    // each trader watches a handful of hot tickers plus a few randoms.
    let mut profiles = Vec::new();
    let mut weights = Vec::new();
    for trader in 0..500 {
        let mut freq = vec![0.0; TICKERS];
        for _ in 0..5 {
            // Interest concentrated on volatile (low-index) tickers.
            let t = (rng.gen_range(0.0f64..1.0).powi(3) * TICKERS as f64) as usize;
            freq[t.min(TICKERS - 1)] += rng.gen_range(1.0..10.0);
        }
        profiles.push(UserProfile::new(freq).expect("valid profile"));
        // Every 50th trader is a premium customer with 10x priority.
        weights.push(if trader % 50 == 0 { 10.0 } else { 1.0 });
    }
    let master =
        MasterProfile::aggregate_weighted(&profiles, &weights).expect("profiles aggregate");
    println!(
        "aggregated {} trader profiles into a master profile over {} tickers",
        master.user_count(),
        master.len()
    );

    let problem = Problem::builder()
        .change_rates(change_rates)
        .access_probs(master.access_probs())
        .bandwidth(100.0) // 100 quote refreshes per period
        .build()
        .expect("valid problem");

    let pf = solve_perceived_freshness(&problem).expect("solvable");
    let gf = solve_general_freshness(&problem).expect("solvable");
    println!(
        "\nanalytic perceived freshness: profile-aware {:.3} vs interest-blind {:.3}",
        pf.perceived_freshness, gf.perceived_freshness
    );
    println!(
        "volatile hot ticker 0: PF gives it {:.2} refreshes/period, GF gives {:.2}",
        pf.frequencies[0], gf.frequencies[0]
    );
    println!(
        "starved tickers: PF schedule {} of {TICKERS}, GF schedule {} of {TICKERS}",
        pf.starved_count(),
        gf.starved_count()
    );

    // What do traders actually experience? Simulate both schedules.
    let config = SimConfig {
        periods: 100.0,
        warmup_periods: 5.0,
        accesses_per_period: 2000.0,
        seed: 7,
    };
    for (name, sol) in [("profile-aware", &pf), ("interest-blind", &gf)] {
        let report = Simulation::new(&problem, &sol.frequencies, config)
            .expect("valid simulation")
            .run()
            .expect("simulation run");
        println!(
            "simulated {name}: {:.3} of {} accesses saw a fresh quote",
            report.access_pf.unwrap_or(f64::NAN),
            report.accesses
        );
    }
}
