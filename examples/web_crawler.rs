//! A search-engine-scale refresh scheduler — the paper's big case plus the
//! §5 object-size extension: 200 000 pages, Pareto-distributed page sizes
//! (most pages tiny, a few huge), large stable media vs small volatile
//! pages, limited crawl bandwidth.
//!
//! Demonstrates the scalable pipeline: PF/s-partitioning, a few k-Means
//! refinement iterations, Fixed *Bandwidth* Allocation — and why solving
//! exactly at this scale is the wrong tool (we time both).
//!
//! ```text
//! cargo run --release --example web_crawler
//! ```

use std::time::Instant;

use freshen::heuristics::partition::PartitionCriterion;
use freshen::prelude::*;
use freshen::workload::scenario::{SizeAlignment, SizeDist};

fn main() {
    let n = 200_000;
    // Interest: Zipf(1.1) — web access is heavily skewed. Change rates:
    // gamma, shuffled against interest. Sizes: Pareto(1.1) with big pages
    // changing rarely (images/video) and small pages often (tickers).
    let problem = Scenario::builder()
        .num_objects(n)
        .updates_per_period(2.0 * n as f64)
        .syncs_per_period(0.5 * n as f64)
        .zipf_theta(1.1)
        .update_std_dev(2.0)
        .alignment(Alignment::ShuffledChange)
        .size_dist(SizeDist::Pareto { shape: 1.1 })
        .size_alignment(SizeAlignment::ReverseOfChange)
        .seed(11)
        .build()
        .expect("valid scenario")
        .problem()
        .expect("problem materializes");
    println!(
        "crawl scheduling for {n} pages, budget {} size-units/period",
        problem.bandwidth()
    );

    // The scalable pipeline: 100 partitions, 5 k-means iterations, FBA.
    let start = Instant::now();
    let heuristic = HeuristicScheduler::new(HeuristicConfig {
        criterion: PartitionCriterion::PerceivedFreshnessPerSize,
        num_partitions: 100,
        kmeans_iterations: 5,
        allocation: AllocationPolicy::FixedBandwidth,
        reference_frequency: 1.0,
    })
    .expect("valid config")
    .solve(&problem)
    .expect("heuristic solves");
    let heuristic_time = start.elapsed();
    println!(
        "heuristic (100 partitions + 5 k-means iters): PF {:.4} in {:.2?} (reduced to {} representatives)",
        heuristic.solution.perceived_freshness, heuristic_time, heuristic.reduced_elements
    );

    // The exact solver still works here (our Lagrange scheme is O(N) per
    // probe) — but a generic NLP would not; see the solver_scaling bench.
    let start = Instant::now();
    let exact = LagrangeSolver::default()
        .solve(&problem)
        .expect("exact solves");
    let exact_time = start.elapsed();
    println!(
        "exact Lagrange solve:                         PF {:.4} in {:.2?}",
        exact.perceived_freshness, exact_time
    );
    println!(
        "heuristic captures {:.1}% of optimal perceived freshness",
        100.0 * heuristic.solution.perceived_freshness / exact.perceived_freshness
    );

    // Crawl-plan summary: how refreshes distribute over page sizes.
    let freqs = &heuristic.solution.frequencies;
    let mut small = (0.0, 0.0); // (syncs, bandwidth) for pages < 1 unit
    let mut large = (0.0, 0.0);
    for (&f, &s) in freqs.iter().zip(problem.sizes()) {
        let cell = if s < 1.0 { &mut small } else { &mut large };
        cell.0 += f;
        cell.1 += f * s;
    }
    println!(
        "\nsmall pages (<1 unit): {:.0} refreshes using {:.0} bandwidth",
        small.0, small.1
    );
    println!(
        "large pages (>=1 unit): {:.0} refreshes using {:.0} bandwidth",
        large.0, large.1
    );
    println!("(FBA gives small volatile pages many cheap refreshes — paper §5.3)");
}
