//! A self-tuning mirror: learn change rates *and* the user profile from
//! observation, then re-solve — closing the loop the paper assumes exists
//! ("frequency estimates would be periodically communicated to the
//! mirror"; profiles can come "from a simple learning algorithm that
//! monitors the system request log", §7).
//!
//! Round 0 starts blind (uniform schedule). Each round then:
//! 1. simulates a measurement window under the current schedule,
//! 2. feeds poll outcomes to the bias-reduced change-rate estimator
//!    (Cho & Garcia-Molina, ref [4]) and the request log to the profile
//!    estimator,
//! 3. re-solves with the estimates.
//!
//! Perceived freshness climbs toward the known-parameter optimum.
//!
//! ```text
//! cargo run --release --example adaptive_mirror
//! ```

use freshen::core::estimate::PollHistory;
use freshen::prelude::*;

fn main() {
    // Ground truth (the mirror does NOT get to see these directly).
    let truth = Scenario::builder()
        .num_objects(300)
        .updates_per_period(600.0)
        .syncs_per_period(150.0)
        .zipf_theta(1.2)
        .alignment(Alignment::ShuffledChange)
        .seed(5)
        .build()
        .expect("valid scenario")
        .problem()
        .expect("problem materializes");
    let optimum = solve_perceived_freshness(&truth).expect("solvable");
    println!(
        "known-parameter optimum: perceived freshness {:.3}\n",
        optimum.perceived_freshness
    );

    let n = truth.len();
    // Blind initial state: uniform schedule, uniform rate guesses, empty
    // profile.
    let mut schedule = vec![truth.bandwidth() / n as f64; n];
    let mut rate_estimates = vec![2.0; n];
    let mut profile = ProfileEstimator::new(n, 1.0).expect("valid estimator");

    for round in 0..6 {
        let config = SimConfig {
            periods: 40.0,
            warmup_periods: 2.0,
            accesses_per_period: 1500.0,
            seed: 100 + round,
        };
        let report = Simulation::new(&truth, &schedule, config)
            .expect("valid simulation")
            .run()
            .expect("simulation run");
        println!(
            "round {round}: schedule achieved PF {:.3} (access-scored {:.3})",
            report.analytic_pf,
            report.access_pf.unwrap_or(f64::NAN)
        );

        // Learn change rates from what the polls saw: an element polled k
        // times over the horizon has poll interval horizon/k.
        let horizon = config.warmup_periods + config.periods;
        for (i, estimate) in rate_estimates.iter_mut().enumerate() {
            if report.polls[i] > 0 {
                let interval = horizon / report.polls[i] as f64;
                let hist = PollHistory::new(report.polls[i], report.polls_changed[i], interval)
                    .expect("valid history");
                *estimate = hist.estimate_bias_reduced();
            }
        }
        // Learn the profile from the simulated request log.
        for (i, &count) in report.access_counts.iter().enumerate() {
            for _ in 0..count.min(1000) {
                profile.observe(i);
            }
        }

        // Re-solve with what we have learned. Smoothing keeps cold objects
        // from being starved forever just because nobody hit them yet.
        let estimated = Problem::builder()
            .change_rates(rate_estimates.clone())
            .access_probs(profile.access_probs_smoothed(0.5))
            .bandwidth(truth.bandwidth())
            .build()
            .expect("estimated problem is valid");
        schedule = solve_perceived_freshness(&estimated)
            .expect("solvable")
            .frequencies;
    }

    let final_pf = truth.perceived_freshness(&schedule);
    println!(
        "\nfinal learned schedule: PF {:.3} = {:.1}% of the known-parameter optimum",
        final_pf,
        100.0 * final_pf / optimum.perceived_freshness
    );
}
