//! Quickstart: schedule refreshes for a small mirror and see why
//! profile-awareness matters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use freshen::prelude::*;

fn main() {
    // A mirror of 6 objects. Change rates in updates/period; the master
    // profile says users hammer objects 0 and 1.
    let problem = Problem::builder()
        .change_rates(vec![4.0, 0.5, 2.0, 8.0, 1.0, 0.1])
        .access_probs(vec![0.40, 0.25, 0.15, 0.10, 0.07, 0.03])
        .bandwidth(6.0) // six refreshes per period
        .build()
        .expect("valid problem");

    // The profile-aware optimum (the paper's PF technique).
    let pf = solve_perceived_freshness(&problem).expect("solvable");
    // The interest-blind baseline (Cho & Garcia-Molina's GF technique).
    let gf = solve_general_freshness(&problem).expect("solvable");

    println!("object  λ      p      f_PF    f_GF");
    for (i, e) in problem.elements().enumerate() {
        println!(
            "{i:>6}  {:<5.1}  {:<5.2}  {:<6.3}  {:<6.3}",
            e.change_rate, e.access_prob, pf.frequencies[i], gf.frequencies[i]
        );
    }
    println!();
    println!(
        "perceived freshness: PF-schedule {:.3} vs GF-schedule {:.3}",
        pf.perceived_freshness, gf.perceived_freshness
    );
    println!(
        "average freshness:   PF-schedule {:.3} vs GF-schedule {:.3}",
        pf.general_freshness, gf.general_freshness
    );

    // Turn the frequencies into a concrete fixed-order timetable for the
    // next two periods.
    let schedule = FixedOrderSchedule::build(&pf.frequencies, 2.0);
    println!("\nfirst 10 scheduled refreshes:");
    for op in schedule.ops().iter().take(10) {
        println!("  t = {:.3}  refresh object {}", op.time, op.element);
    }

    // And check the schedule in the discrete-event simulator: measured
    // perceived freshness should match the analytic prediction.
    let report = Simulation::new(
        &problem,
        &pf.frequencies,
        SimConfig {
            periods: 200.0,
            warmup_periods: 5.0,
            accesses_per_period: 500.0,
            seed: 1,
        },
    )
    .expect("valid simulation")
    .run()
    .expect("simulation run");
    println!(
        "\nsimulated: analytic PF {:.3}, time-averaged {:.3}, access-scored {:.3}",
        report.analytic_pf,
        report.time_averaged_pf,
        report.access_pf.unwrap_or(f64::NAN)
    );
}
