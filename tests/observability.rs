//! End-to-end checks of the `freshen-obs` instrumentation surface:
//! the `--metrics-out`/`--trace-out` CLI flags, the metrics snapshot
//! schema, the Chrome-trace export, and recorder thread safety.

use freshen::prelude::*;
use serde_json::Value;

/// Drive the real CLI entry point with the given argv, returning stdout.
fn run_cli(argv: &[&str]) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    freshen_cli::run(&argv, &mut out).expect("cli command succeeds");
    String::from_utf8(out).expect("utf8 output")
}

fn expect_object<'a>(v: &'a Value, what: &str) -> &'a Value {
    assert!(matches!(v, Value::Object(_)), "{what} must be an object");
    v
}

fn object_key<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(map) => map
            .get(key)
            .unwrap_or_else(|| panic!("missing key {key:?}")),
        _ => panic!("expected object around key {key:?}"),
    }
}

fn has_key(v: &Value, key: &str) -> bool {
    matches!(v, Value::Object(map) if map.contains_key(key))
}

/// `freshen simulate --metrics-out --trace-out` on a Table-2 scenario
/// writes a valid metrics snapshot (events_total, events_per_sec, pf) and
/// a Chrome-trace JSON array.
#[test]
fn simulate_writes_metrics_and_trace() {
    let dir = std::env::temp_dir().join("freshen_obs_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let problem_path = dir.join("problem.json");
    let schedule_path = dir.join("schedule.json");
    let metrics_path = dir.join("metrics.json");
    let trace_path = dir.join("trace.json");

    let problem_json = run_cli(&[
        "scenario",
        "--objects",
        "50",
        "--updates",
        "100",
        "--syncs",
        "25",
        "--theta",
        "0.8",
        "--seed",
        "7",
    ]);
    std::fs::write(&problem_path, &problem_json).expect("write problem");
    let schedule_json = run_cli(&["solve", "--input", problem_path.to_str().unwrap()]);
    std::fs::write(&schedule_path, &schedule_json).expect("write schedule");

    run_cli(&[
        "simulate",
        "--input",
        problem_path.to_str().unwrap(),
        "--schedule",
        schedule_path.to_str().unwrap(),
        "--periods",
        "20",
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);

    // Metrics snapshot: valid JSON with the headline keys.
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let snapshot: Value = serde_json::from_str(&metrics).expect("metrics file is valid JSON");
    expect_object(&snapshot, "metrics snapshot");
    let counters = object_key(&snapshot, "counters");
    assert!(has_key(counters, "events_total"), "counter events_total");
    assert!(has_key(counters, "sim.events.sync"), "per-type counters");
    let gauges = object_key(&snapshot, "gauges");
    assert!(has_key(gauges, "events_per_sec"), "gauge events_per_sec");
    assert!(has_key(gauges, "pf"), "gauge pf");
    let histograms = object_key(&snapshot, "histograms");
    let queue = object_key(histograms, "sim.link_queue_depth");
    for q in ["p50", "p95", "p99", "count"] {
        assert!(has_key(queue, q), "queue-depth histogram reports {q}");
    }

    // Chrome-trace export: a JSON array of events with spans inside.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let events: Value = serde_json::from_str(&trace).expect("trace file is valid JSON");
    match &events {
        Value::Array(items) => {
            assert!(!items.is_empty(), "trace must contain events");
            for item in items {
                assert!(has_key(item, "name") && has_key(item, "ph") && has_key(item, "ts"));
            }
        }
        _ => panic!("chrome trace must be a JSON array"),
    }
    assert!(trace.contains("sim.run"), "simulation span present");

    std::fs::remove_dir_all(&dir).ok();
}

/// The solver path surfaces iteration counters through `--metrics-out`.
#[test]
fn solve_metrics_include_solver_iterations() {
    let dir = std::env::temp_dir().join("freshen_obs_solver_metrics");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let problem_path = dir.join("problem.json");
    let metrics_path = dir.join("metrics.json");
    let problem_json = run_cli(&[
        "scenario",
        "--objects",
        "20",
        "--updates",
        "40",
        "--syncs",
        "10",
        "--seed",
        "3",
    ]);
    std::fs::write(&problem_path, &problem_json).expect("write problem");
    run_cli(&[
        "solve",
        "--input",
        problem_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let snapshot: Value = serde_json::from_str(&metrics).expect("valid JSON");
    let counters = object_key(&snapshot, "counters");
    for key in ["solver.solves", "solver.outer_iters", "solver.inner_iters"] {
        assert!(has_key(counters, key), "counter {key} present");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hammer one recorder from many threads through the public API; totals
/// must come out exact (no lost updates) and the export must stay valid.
#[test]
fn recorder_is_thread_safe_under_crossbeam_scope() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let recorder = Recorder::enabled();
    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            let recorder = recorder.clone();
            scope.spawn(move |_| {
                let counter = recorder.counter("stress.count");
                let gauge = recorder.gauge("stress.level");
                let histogram = recorder.histogram("stress.value", &[1.0, 10.0, 100.0]);
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.set(t as f64);
                    histogram.observe((i % 128) as f64);
                }
            });
        }
    })
    .expect("no worker panicked");
    assert_eq!(
        recorder.counter_value("stress.count"),
        Some(THREADS as u64 * PER_THREAD)
    );
    let level = recorder.gauge_value("stress.level").expect("gauge set");
    assert!(level >= 0.0 && level < THREADS as f64);
    let metrics = recorder.metrics_json().expect("export succeeds");
    assert!(metrics.contains("\"stress.count\""));
}

/// The simulator result is byte-identical with and without recording —
/// instrumentation must never perturb the experiment.
#[test]
fn instrumented_simulation_matches_plain_run() {
    let scenario = Scenario::builder()
        .num_objects(40)
        .updates_per_period(80.0)
        .syncs_per_period(20.0)
        .zipf_theta(0.8)
        .alignment(Alignment::ShuffledChange)
        .seed(11)
        .build()
        .unwrap();
    let problem = scenario.problem().unwrap();
    let schedule = LagrangeSolver::default().solve(&problem).unwrap();
    let config = SimConfig {
        periods: 30.0,
        ..Default::default()
    };
    let plain = Simulation::new(&problem, &schedule.frequencies, config)
        .unwrap()
        .run()
        .unwrap();
    let recorder = Recorder::enabled();
    let observed = Simulation::new(&problem, &schedule.frequencies, config)
        .unwrap()
        .with_recorder(recorder.clone())
        .run()
        .unwrap();
    assert_eq!(plain.time_averaged_pf, observed.time_averaged_pf);
    assert_eq!(plain.syncs, observed.syncs);
    let total = recorder.counter_value("events_total").expect("counted");
    assert!(total > 0);
}
