//! Multi-tier relay freshening, end to end: the topology model, the
//! composed-freshness analytics, the tiered budget-split solver, and the
//! Monte-Carlo cross-check.
//!
//! The two acceptance gates of the tiered subsystem live here:
//!
//! * a **single-tier** topology must reproduce the flat
//!   [`LagrangeSolver`] *byte for byte* — tiering degenerates exactly,
//!   not approximately;
//! * a **two-tier chain**'s reported edge PF must match the
//!   independently-written cache-chain product formula (Bastopcu &
//!   Ulukus-style composed freshness) within 1e-6.

use freshen::heuristics::{split_budget, TierSplit};
use freshen::prelude::*;
use freshen::workload::tiers::{parallel_relay, two_tier_chain};

/// The paper-style element universe used throughout this file.
fn universe(n: usize) -> Problem {
    Problem::builder()
        .change_rates((0..n).map(|i| 0.3 + (i % 7) as f64 * 0.45).collect())
        .access_weights((0..n).map(|i| 1.0 / (i + 1) as f64).collect())
        .bandwidth(0.5 * n as f64)
        .build()
        .expect("universe builds")
}

/// Single-hop steady-state freshness under `policy` — written out
/// locally so the chain test does not lean on the library's own
/// composed recursion.
fn hop(policy: SyncPolicy, lam: f64, f: f64) -> f64 {
    if f <= 0.0 {
        return if lam <= 0.0 { 1.0 } else { 0.0 };
    }
    if lam <= 0.0 {
        return 1.0;
    }
    match policy {
        SyncPolicy::FixedOrder => (f / lam) * (1.0 - (-lam / f).exp()),
        SyncPolicy::Poisson => f / (lam + f),
    }
}

#[test]
fn single_tier_topology_is_byte_identical_to_flat_solve() {
    let n = 200;
    let problem = universe(n);
    let topo = Topology::builder()
        .source("origin")
        .tier("mirror", problem.bandwidth())
        .link("origin", "mirror")
        .build(n)
        .expect("single-tier topology");
    for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
        let flat = LagrangeSolver {
            policy,
            ..Default::default()
        }
        .solve(&problem)
        .expect("flat solve");
        let tiered = TieredSolver {
            base: LagrangeSolver {
                policy,
                ..Default::default()
            },
            ..Default::default()
        }
        .solve(&topo, &problem)
        .expect("tiered solve");
        for i in 0..n {
            assert_eq!(
                tiered.schedule.link_freqs[0][i].to_bits(),
                flat.frequencies[i].to_bits(),
                "{policy:?}: frequency {i} must be bitwise identical"
            );
        }
        assert_eq!(
            tiered.edge_pf.to_bits(),
            problem
                .perceived_freshness_with(policy, &flat.frequencies)
                .to_bits(),
            "{policy:?}: edge PF is the flat PF"
        );
    }
}

#[test]
fn two_tier_chain_edge_pf_matches_the_analytic_product_within_1e6() {
    let n = 48;
    let problem = universe(n);
    let topo = Topology::builder()
        .source("origin")
        .tier("relay", 14.0)
        .tier("edge", 9.0)
        .link("origin", "relay")
        .link("relay", "edge")
        .build(n)
        .expect("chain topology");
    for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
        let solver = TieredSolver {
            base: LagrangeSolver {
                policy,
                ..Default::default()
            },
            ..Default::default()
        };
        let solution = solver.solve(&topo, &problem).expect("chain solve");
        // Independent recomputation: for Poisson source changes the
        // edge copy is fresh iff the exponential age exceeds the sum of
        // the per-hop waits, so composed freshness is the product of
        // the single-hop laws (the cache-chain result).
        let p = problem.access_probs();
        let lam = problem.change_rates();
        let mut expected = 0.0;
        for i in 0..n {
            let through_relay = hop(policy, lam[i], solution.schedule.link_freqs[0][i]);
            let through_edge = hop(policy, lam[i], solution.schedule.link_freqs[1][i]);
            expected += p[i] * through_relay * through_edge;
        }
        assert!(
            (solution.edge_pf - expected).abs() < 1e-6,
            "{policy:?}: reported {} vs analytic product {expected}",
            solution.edge_pf
        );
        // And every tier of the solution carries a strict certificate.
        let reports = solver
            .certify(&topo, &problem, &solution)
            .expect("certification runs");
        assert_eq!(reports.len(), 2);
        for (tier, report) in reports.iter().enumerate() {
            assert!(
                report.is_clean(),
                "{policy:?}: tier {tier} violations: {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn generated_scenarios_solve_split_and_certify() {
    for scenario in [
        two_tier_chain(40, 3).expect("chain scenario"),
        parallel_relay(36, 3, 5).expect("parallel scenario"),
    ] {
        let solver = TieredSolver::default();
        let solution = solver
            .solve_split(&scenario.topology, &scenario.problem, scenario.total_budget)
            .expect("split solve");
        // The split must cover the whole budget without overdrawing any
        // tier, and beat (or match) every division heuristic.
        let spent: f64 = solution.node_spend.iter().sum();
        assert!(
            (spent - scenario.total_budget).abs() < 1e-6 * scenario.total_budget,
            "{}: spent {spent} of {}",
            scenario.name,
            scenario.total_budget
        );
        for (node, (&spend, &budget)) in solution
            .node_spend
            .iter()
            .zip(&solution.budgets)
            .enumerate()
        {
            assert!(
                spend <= budget + 1e-6 * budget.max(1.0),
                "{}: node {node} overdraws ({spend} > {budget})",
                scenario.name
            );
        }
        for rule in TierSplit::ALL {
            let budgets = split_budget(
                &scenario.topology,
                &scenario.problem,
                rule,
                scenario.total_budget,
            )
            .expect("heuristic split");
            let topo = scenario.topology.with_budgets(&budgets).expect("budgets");
            let fixed = TieredSolver::default()
                .solve(&topo, &scenario.problem)
                .expect("heuristic-budget solve");
            assert!(
                solution.edge_pf >= fixed.edge_pf - 1e-9,
                "{}: solver split {} loses to {} ({})",
                scenario.name,
                solution.edge_pf,
                rule.name(),
                fixed.edge_pf
            );
        }
        let reports = solver
            .certify(&scenario.topology, &scenario.problem, &solution)
            .expect("certification runs");
        assert!(
            reports.iter().all(|r| r.is_clean()),
            "{}: uncertified tier",
            scenario.name
        );
    }
}

#[test]
fn monte_carlo_measurement_agrees_with_the_solved_chain() {
    let scenario = two_tier_chain(24, 11).expect("chain scenario");
    let solver = TieredSolver::default();
    let solution = solver
        .solve(&scenario.topology, &scenario.problem)
        .expect("chain solve");
    let report = simulate_tiered(
        &scenario.topology,
        &scenario.problem,
        &solution.schedule,
        solver.base.policy,
        &TieredSimConfig {
            horizon: 800.0,
            warmup: 30.0,
            seed: 17,
            replications: 8,
        },
    )
    .expect("simulation runs");
    assert!(
        (report.analytic_edge_pf - solution.edge_pf).abs() < 1e-12,
        "simulator's analytic view must equal the solver's"
    );
    assert!(
        report.edge_gap() < 0.03,
        "measured {} vs analytic {}",
        report.measured_edge_pf,
        report.analytic_edge_pf
    );
}
