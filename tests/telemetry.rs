//! Integration tests for the freshness-SLO telemetry layer (DESIGN.md
//! §13): a served run that degrades mid-run — here, resumed with its
//! poll budget cut to a few percent — must walk the SLO state machine
//! from `Ok` to `Breach`, record the violated rule in its alert journal,
//! and flip `/health` to 503, all without perturbing the deterministic
//! engine underneath.

use std::time::Duration;

use freshen::engine::EngineConfig;
use freshen::obs::{Recorder, SloConfig};
use freshen::serve::{request, ExitReason, ServeConfig, ServeWorkload, Server};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("freshen-telemetry").join(tag);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn live_workload(n: usize) -> ServeWorkload {
    let rates: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64).collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    ServeWorkload::Live {
        problem: freshen::core::problem::Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .bandwidth(n as f64 * 0.75)
            .build()
            .expect("problem builds"),
        access_rate: 120.0,
    }
}

/// SLO rules a healthy run satisfies comfortably: a modest freshness
/// floor, two consecutive violations to breach, and a grace window that
/// skips warmup noise.
fn slo_rules() -> SloConfig {
    SloConfig {
        target_pf: 0.3,
        breach_after: 2,
        clear_after: 2,
        grace_epochs: 4,
        ..SloConfig::default()
    }
}

fn serve_config(dir: &std::path::Path, epochs: usize) -> ServeConfig {
    ServeConfig {
        engine: EngineConfig {
            epochs,
            warmup_epochs: 2,
            failure_rate: 0.1,
            seed: 23,
            slo: Some(slo_rules()),
            ..EngineConfig::default()
        },
        checkpoint_path: dir.join("run.snapshot"),
        ..ServeConfig::default()
    }
}

#[test]
fn budget_cut_on_resume_walks_ok_to_breach_and_health_to_503() {
    let dir = temp_dir("breach");
    let workload = live_workload(6);
    let epochs = 200;
    let config = serve_config(&dir, epochs);

    // Leg 1: run healthy for a while, then drain at a boundary. The SLO
    // engine must still be in `Ok` when the snapshot is written.
    let mut healthy = config.clone();
    healthy.drain_after = Some(12);
    let server = Server::new(workload.clone(), healthy).expect("server builds");
    let control = server.control();
    let outcome = server.run().expect("healthy leg");
    assert_eq!(outcome.exit, ExitReason::Drained);
    assert!(
        !control
            .health_breach
            .load(std::sync::atomic::Ordering::SeqCst),
        "healthy leg must drain in Ok"
    );
    let health = control.health.lock().unwrap().clone();
    assert!(health.contains("\"state\": \"ok\""), "{health}");

    // Leg 2: resume the same run with the poll budget cut to 3% — a
    // legal resume (the budget factor is an operator knob, deliberately
    // outside the snapshot shape) that starves the dispatcher and drags
    // realized freshness under the SLO floor within a few epochs.
    let recorder = Recorder::enabled();
    let mut degraded = config.clone();
    degraded.resume = Some(config.checkpoint_path.clone());
    degraded.engine.budget_factor = 0.03;
    degraded.listen = Some("127.0.0.1:0".to_string());
    degraded.epoch_throttle = Some(Duration::from_millis(2));
    let server = Server::new(workload, degraded)
        .expect("server builds")
        .with_recorder(recorder.clone());
    let control = server.control();
    let addr = server.local_addr().expect("bound");

    // Poll /health until the breach surfaces as a 503, then drain.
    let probe = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            assert!(
                std::time::Instant::now() < deadline,
                "no 503 before the run ended"
            );
            match request(addr, "GET", "/health") {
                Ok((503, body)) => {
                    assert!(body.contains("\"state\": \"breach\""), "{body}");
                    assert!(body.contains("\"rule\": \"pf_floor\""), "{body}");
                    break;
                }
                Ok((200, body)) => {
                    assert!(body.contains("\"state\""), "{body}");
                }
                Ok((status, body)) => panic!("/health -> {status}: {body}"),
                Err(e) => panic!("/health request failed mid-run: {e}"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let (status, _) = request(addr, "POST", "/shutdown").expect("/shutdown");
        assert_eq!(status, 200);
    });
    let outcome = server.run().expect("degraded leg");
    probe.join().expect("health probe");

    assert_eq!(outcome.exit, ExitReason::Drained, "probe drained on breach");
    assert!(
        control
            .health_breach
            .load(std::sync::atomic::Ordering::SeqCst),
        "breach flag must still be set at drain"
    );
    assert!(
        recorder.counter_value("obs.slo.breaches").unwrap_or(0) >= 1,
        "the Ok->Breach transition must be counted"
    );
    let health = control.health.lock().unwrap().clone();
    assert!(health.contains("\"state\": \"breach\""), "{health}");
    assert!(
        health.contains("\"rule\": \"pf_floor\""),
        "alert journal must name the violated rule: {health}"
    );
}

#[test]
fn telemetry_rides_through_checkpoint_resume() {
    // The time-series ring and SLO state are part of the snapshot: a
    // resumed run continues the series where the drained leg stopped
    // instead of restarting at epoch 0.
    let dir = temp_dir("series");
    let workload = live_workload(5);
    let config = serve_config(&dir, 20);

    let mut first = config.clone();
    first.drain_after = Some(8);
    Server::new(workload.clone(), first)
        .expect("server builds")
        .run()
        .expect("drained leg");

    let mut second = config.clone();
    second.resume = Some(config.checkpoint_path.clone());
    let server = Server::new(workload, second).expect("server builds");
    let control = server.control();
    let outcome = server.run().expect("resumed leg");
    assert_eq!(outcome.exit, ExitReason::Completed);

    let series = control.series.lock().unwrap().clone();
    let epochs: Vec<u64> = series.samples().iter().map(|s| s.epoch).collect();
    assert_eq!(epochs.last(), Some(&19), "series reaches the final epoch");
    assert!(
        epochs.contains(&0) || series.stride() > 1,
        "early epochs retained unless downsampling evicted them"
    );
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "series stays strictly increasing across the resume seam"
    );
}
