//! End-to-end integration: scenario generation → scheduling (exact and
//! heuristic) → Fixed-Order timetable → discrete-event simulation →
//! monitoring-mode evaluation, all through the public facade.

use freshen::heuristics::partition::PartitionCriterion;
use freshen::prelude::*;

#[test]
fn optimal_schedule_survives_simulation() {
    let problem = Scenario::table2(1.0, Alignment::ShuffledChange, 3)
        .problem()
        .unwrap();
    let sol = solve_perceived_freshness(&problem).unwrap();
    let report = Simulation::new(
        &problem,
        &sol.frequencies,
        SimConfig {
            periods: 60.0,
            warmup_periods: 4.0,
            accesses_per_period: 2000.0,
            seed: 9,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");
    assert!(
        (report.time_averaged_pf - sol.perceived_freshness).abs() < 0.02,
        "simulated {} vs analytic {}",
        report.time_averaged_pf,
        sol.perceived_freshness
    );
    assert!(
        (report.access_pf.unwrap() - sol.perceived_freshness).abs() < 0.02,
        "access-scored {} vs analytic {}",
        report.access_pf.unwrap(),
        sol.perceived_freshness
    );
}

#[test]
fn heuristic_schedule_survives_simulation() {
    let problem = Scenario::table2(0.8, Alignment::Aligned, 11)
        .problem()
        .unwrap();
    let heuristic = HeuristicScheduler::new(HeuristicConfig {
        criterion: PartitionCriterion::PerceivedFreshness,
        num_partitions: 40,
        kmeans_iterations: 3,
        ..Default::default()
    })
    .unwrap()
    .solve(&problem)
    .unwrap();
    let report = Simulation::new(
        &problem,
        &heuristic.solution.frequencies,
        SimConfig {
            periods: 60.0,
            warmup_periods: 4.0,
            accesses_per_period: 2000.0,
            seed: 13,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");
    assert!(
        (report.time_averaged_pf - heuristic.solution.perceived_freshness).abs() < 0.02,
        "simulated {} vs analytic {}",
        report.time_averaged_pf,
        heuristic.solution.perceived_freshness
    );
}

#[test]
fn simulated_pf_ranks_schedules_like_analytic_pf() {
    // The simulator must agree with the analytic model about *which*
    // schedule is better, not just absolute values.
    let problem = Scenario::table2(1.2, Alignment::Aligned, 21)
        .problem()
        .unwrap();
    let pf = solve_perceived_freshness(&problem).unwrap();
    let gf = solve_general_freshness(&problem).unwrap();
    let config = SimConfig {
        periods: 60.0,
        warmup_periods: 4.0,
        accesses_per_period: 2000.0,
        seed: 17,
    };
    let pf_sim = Simulation::new(&problem, &pf.frequencies, config)
        .unwrap()
        .run()
        .expect("simulation run");
    let gf_sim = Simulation::new(&problem, &gf.frequencies, config)
        .unwrap()
        .run()
        .expect("simulation run");
    assert!(
        pf_sim.time_averaged_pf > gf_sim.time_averaged_pf + 0.05,
        "profile-aware {} must visibly beat interest-blind {} in simulation",
        pf_sim.time_averaged_pf,
        gf_sim.time_averaged_pf
    );
}

#[test]
fn schedule_materialization_matches_frequencies() {
    let problem = Scenario::table2(0.6, Alignment::Reverse, 5)
        .problem()
        .unwrap();
    let sol = solve_perceived_freshness(&problem).unwrap();
    let horizon = 10.0;
    let schedule = FixedOrderSchedule::build(&sol.frequencies, horizon);
    let counts = schedule.counts(problem.len());
    for (i, (&count, &freq)) in counts.iter().zip(&sol.frequencies).enumerate() {
        let expected = freq * horizon;
        assert!(
            (count as f64 - expected).abs() <= 1.0 + 1e-9,
            "element {i}: {count} ops vs expected {expected:.2}"
        );
    }
    // Total ops ≈ bandwidth × horizon (unit sizes).
    let total: usize = counts.iter().sum();
    assert!(
        (total as f64 - problem.bandwidth() * horizon).abs() < problem.len() as f64 * 0.5,
        "total ops {total} vs budget {}",
        problem.bandwidth() * horizon
    );
}

#[test]
fn mirror_selection_composes_with_solver() {
    // §7 future work: restrict the mirror, then schedule what remains.
    use freshen::core::selection::select_with_solver;
    let problem = Scenario::table2(1.4, Alignment::ShuffledChange, 8)
        .problem()
        .unwrap();
    let capacity = 250.0; // only half the objects fit
    let selection = select_with_solver(&problem, capacity, 4, |sub| {
        solve_perceived_freshness(sub).unwrap().frequencies
    });
    assert!(selection.space_used <= capacity);
    assert!(!selection.selected.is_empty());
    // The kept half must cover most of the interest under Zipf(1.4).
    let kept_interest: f64 = selection
        .selected
        .iter()
        .map(|&i| problem.access_probs()[i])
        .sum();
    assert!(
        kept_interest > 0.9,
        "half the objects should cover >90% of skewed interest, got {kept_interest}"
    );
    // And the restricted problem still solves end to end.
    let sub = problem
        .restrict_to(&selection.selected, problem.bandwidth())
        .unwrap();
    let sol = solve_perceived_freshness(&sub).unwrap();
    assert!(sol.perceived_freshness > 0.0);
}
