//! Regression test: the exact solver reproduces the paper's Table 1 —
//! its only published numeric ground truth — through the public facade.

use freshen::prelude::*;

fn toy(probs: Vec<f64>) -> Problem {
    Problem::builder()
        .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
        .access_probs(probs)
        .bandwidth(5.0)
        .build()
        .unwrap()
}

fn assert_frequencies(probs: Vec<f64>, expected: [f64; 5]) {
    let sol = LagrangeSolver::default().solve(&toy(probs)).unwrap();
    for (i, (got, want)) in sol.frequencies.iter().zip(expected).enumerate() {
        assert!(
            (got - want).abs() < 0.011,
            "element {i}: solver {got:.4} vs paper {want}"
        );
    }
}

#[test]
fn table1_uniform_profile_matches_paper() {
    assert_frequencies(vec![0.2; 5], [1.15, 1.36, 1.35, 1.14, 0.00]);
}

#[test]
fn table1_aligned_profile_matches_paper() {
    assert_frequencies(
        (1..=5).map(|i| i as f64 / 15.0).collect(),
        [0.33, 0.67, 1.00, 1.33, 1.67],
    );
}

#[test]
fn table1_reverse_profile_matches_paper() {
    assert_frequencies(
        (1..=5).rev().map(|i| i as f64 / 15.0).collect(),
        [1.68, 1.83, 1.49, 0.00, 0.00],
    );
}

#[test]
fn table1_aligned_profile_exact_identity() {
    // When pᵢ ∝ λᵢ the optimum is exactly fᵢ = B·pᵢ (row (c)'s pattern).
    let probs: Vec<f64> = (1..=5).map(|i| i as f64 / 15.0).collect();
    let sol = LagrangeSolver::default()
        .solve(&toy(probs.clone()))
        .unwrap();
    for (f, p) in sol.frequencies.iter().zip(&probs) {
        assert!(
            (f - 5.0 * p).abs() < 1e-4,
            "f = B·p identity violated: {f} vs {}",
            5.0 * p
        );
    }
}

#[test]
fn table1_row_c_gives_most_volatile_element_the_most_bandwidth() {
    // The paper's commentary: under P2 the fastest-changing element gets
    // the *highest* frequency (1.67), the opposite of the uniform case
    // where it gets zero.
    let p2: Vec<f64> = (1..=5).map(|i| i as f64 / 15.0).collect();
    let sol2 = LagrangeSolver::default().solve(&toy(p2)).unwrap();
    assert!(sol2.frequencies[4] > sol2.frequencies[3]);
    let sol1 = LagrangeSolver::default().solve(&toy(vec![0.2; 5])).unwrap();
    assert!(sol1.frequencies[4] < 0.01);
}
