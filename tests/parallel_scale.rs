//! Acceptance test for the sharded parallel execution layer: at N = 10⁵
//! the two-level sharded solve plus parallel PF evaluation must match the
//! serial global optimum to 1e-6, and — when the machine actually has the
//! cores — finish at least 2× faster on a 4-worker pool.
//!
//! PF parity is asserted unconditionally; the speedup assertion is gated
//! on `std::thread::available_parallelism()` ≥ 4 because on a smaller box
//! a pool cannot beat the serial pass no matter how the work is split.

use std::time::Instant;

use freshen::core::exec::Executor;
use freshen::prelude::*;

const N: usize = 100_000;
const SHARDS: usize = 32;
const THREADS: usize = 4;

/// Same deterministic mirror family as `exp_scale`: striped rates,
/// harmonic access weights, striped sizes.
fn scale_problem(n: usize) -> Problem {
    let rates: Vec<f64> = (0..n).map(|i| 0.1 + (i % 17) as f64 * 0.3).collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let sizes: Vec<f64> = (0..n).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect();
    Problem::builder()
        .change_rates(rates)
        .access_weights(weights)
        .sizes(sizes)
        .bandwidth(n as f64 / 4.0)
        .build()
        .expect("scale problem builds")
}

#[test]
fn sharded_parallel_solve_matches_serial_and_scales() {
    let problem = scale_problem(N);

    // Serial baseline: global solve + serial evaluation. Best-of-two so a
    // cold first pass (page faults, lazy allocation) doesn't skew timing.
    let serial_solver = LagrangeSolver::default();
    let mut serial_wall = f64::INFINITY;
    let mut serial_pf = 0.0;
    for _ in 0..2 {
        let start = Instant::now();
        let solution = serial_solver.solve(&problem).expect("serial solve");
        let pf = problem.perceived_freshness(&solution.frequencies);
        serial_wall = serial_wall.min(start.elapsed().as_secs_f64());
        serial_pf = pf;
    }

    let executor = Executor::thread_pool(THREADS);
    let solver = LagrangeSolver::default().with_executor(executor.clone());
    let mut pool_wall = f64::INFINITY;
    let mut pool_pf = 0.0;
    for _ in 0..2 {
        let start = Instant::now();
        let solution = solver
            .solve_sharded(&problem, SHARDS)
            .expect("sharded solve");
        let pf = problem.perceived_freshness_exec(&solution.frequencies, &executor);
        pool_wall = pool_wall.min(start.elapsed().as_secs_f64());
        pool_pf = pf;
    }

    // Shard equivalence: the sharded optimum recovers the global PF.
    let parity = (pool_pf - serial_pf).abs();
    assert!(
        parity < 1e-6,
        "sharded PF {pool_pf} vs serial {serial_pf} (parity {parity:.3e})"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < THREADS {
        eprintln!(
            "skipping speedup assertion: {cores} cores available, \
             {THREADS} required (parity checked: {parity:.3e})"
        );
        return;
    }
    let speedup = serial_wall / pool_wall.max(f64::MIN_POSITIVE);
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup at {THREADS} threads on {cores} cores; \
         got {speedup:.2}x (serial {serial_wall:.3}s, pool {pool_wall:.3}s)"
    );
}
