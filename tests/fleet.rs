//! Integration tests for the fleet runtime (DESIGN.md §14): the
//! determinism-per-tenant invariant fleet-wide.
//!
//! * every tenant's final report is **byte-identical** to a same-seed
//!   solo `freshen serve` run;
//! * a fleet killed at *any* round boundary resumes to byte-identical
//!   reports;
//! * a tenant whose snapshot fails CRC/validation on resume is
//!   quarantined while healthy tenants resume normally;
//! * concurrent HTTP probes against per-tenant routes leave every
//!   report byte-identical to a headless run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use freshen::fleet::{Fleet, FleetConfig, FleetSpec, TenantSpec, MANIFEST_FILE};
use freshen::obs::{prometheus, Recorder};
use freshen::serve::{request, ExitReason, Server};

const EPOCHS: usize = 6;

fn fleet_spec() -> FleetSpec {
    let mut spec = FleetSpec::new(vec![
        TenantSpec {
            seed: 3,
            epochs: EPOCHS,
            ..TenantSpec::new("acme", 6)
        },
        TenantSpec {
            seed: 17,
            epochs: EPOCHS,
            scenario: "flash-crowd".into(),
            access_rate: 150.0,
            ..TenantSpec::new("bolt", 5)
        },
        TenantSpec {
            seed: 29,
            epochs: EPOCHS,
            scenario: "diurnal".into(),
            failure_rate: 0.1,
            ..TenantSpec::new("crisp-9", 7)
        },
    ])
    .unwrap();
    spec.checkpoint_every = 1;
    spec
}

fn fleet_config(tag: &str) -> FleetConfig {
    let dir = std::env::temp_dir().join("freshen-fleet-itest").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    FleetConfig {
        snapshot_dir: dir,
        ..FleetConfig::default()
    }
}

/// Final reports of an uninterrupted headless fleet run, in spec order.
fn reference_reports(spec: &FleetSpec, tag: &str) -> Vec<String> {
    let outcome = Fleet::new(spec.clone(), fleet_config(tag))
        .expect("fleet builds")
        .run()
        .expect("uninterrupted fleet run");
    assert_eq!(outcome.exit, ExitReason::Completed);
    outcome
        .tenants
        .iter()
        .map(|t| t.report.as_ref().expect("completed tenant").to_json())
        .collect()
}

#[test]
fn every_tenant_matches_its_solo_serve_run() {
    let spec = fleet_spec();
    let fleet_reports = reference_reports(&spec, "solo-parity");
    let dir = std::env::temp_dir()
        .join("freshen-fleet-itest")
        .join("solo-runs");
    std::fs::create_dir_all(&dir).unwrap();
    for (tenant, fleet_json) in spec.tenants.iter().zip(&fleet_reports) {
        let solo = Server::new(
            tenant.workload().unwrap(),
            tenant.serve_config(dir.join(tenant.snapshot_file())),
        )
        .expect("solo server builds")
        .run()
        .expect("solo run");
        assert_eq!(
            solo.report.expect("solo completes").to_json(),
            *fleet_json,
            "tenant `{}` diverged between fleet and solo runs",
            tenant.id
        );
    }
}

#[test]
fn kill_and_resume_is_byte_identical_at_every_round_boundary() {
    let spec = fleet_spec();
    let expected = reference_reports(&spec, "resume-ref");

    for kill_at in 1..EPOCHS {
        let config = fleet_config(&format!("resume-{kill_at}"));
        let dir = config.snapshot_dir.clone();
        let drained = Fleet::new(
            spec.clone(),
            FleetConfig {
                drain_after: Some(kill_at),
                ..config.clone()
            },
        )
        .expect("fleet builds")
        .run()
        .expect("drained leg");
        assert_eq!(drained.exit, ExitReason::Drained);
        assert_eq!(drained.rounds_run, kill_at);
        assert!(
            drained.tenants.iter().all(|t| t.report.is_none()),
            "a drained fleet has no reports"
        );
        assert!(dir.join(MANIFEST_FILE).exists());

        let resumed = Fleet::new(
            spec.clone(),
            FleetConfig {
                resume_dir: Some(dir),
                ..config
            },
        )
        .expect("fleet builds")
        .run()
        .expect("resumed leg");
        assert_eq!(resumed.exit, ExitReason::Completed);
        let got: Vec<String> = resumed
            .tenants
            .iter()
            .map(|t| t.report.as_ref().expect("completed").to_json())
            .collect();
        assert_eq!(got, expected, "kill at round {kill_at}: reports diverged");
    }
}

/// Drain a fleet into `tag`'s snapshot dir and hand back the dir.
fn drained_dir(spec: &FleetSpec, tag: &str) -> PathBuf {
    let config = fleet_config(tag);
    let dir = config.snapshot_dir.clone();
    Fleet::new(
        spec.clone(),
        FleetConfig {
            drain_after: Some(2),
            ..config
        },
    )
    .expect("fleet builds")
    .run()
    .expect("drained leg");
    dir
}

fn resume_with_recorder(spec: &FleetSpec, dir: &Path) -> (freshen::fleet::FleetOutcome, Recorder) {
    let recorder = Recorder::enabled();
    let outcome = Fleet::new(
        spec.clone(),
        FleetConfig {
            resume_dir: Some(dir.to_path_buf()),
            snapshot_dir: dir.to_path_buf(),
            ..FleetConfig::default()
        },
    )
    .expect("fleet builds")
    .with_recorder(recorder.clone())
    .run()
    .expect("resume with damage still runs");
    (outcome, recorder)
}

#[test]
fn corrupted_tenants_are_quarantined_while_the_rest_resume() {
    let spec = fleet_spec();
    let expected = reference_reports(&spec, "quarantine-ref");

    // Battery: each kind of per-tenant damage quarantines exactly that
    // tenant; the others resume to byte-identical reports.
    let bit_flip = |path: &Path| {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, &bytes).unwrap();
    };
    let truncate = |path: &Path| {
        let bytes = std::fs::read(path).unwrap();
        std::fs::write(path, &bytes[..bytes.len() / 3]).unwrap();
    };
    let delete = |path: &Path| std::fs::remove_file(path).unwrap();
    type Damage<'a> = &'a dyn Fn(&Path);
    let damages: Vec<(&str, Damage)> = vec![
        ("bit-flip", &bit_flip),
        ("truncate", &truncate),
        ("delete", &delete),
    ];

    for (victim_index, (kind, damage)) in damages.into_iter().enumerate() {
        let victim = &spec.tenants[victim_index];
        let dir = drained_dir(&spec, &format!("quarantine-{kind}"));
        damage(&dir.join(victim.snapshot_file()));

        let (outcome, recorder) = resume_with_recorder(&spec, &dir);
        assert_eq!(outcome.exit, ExitReason::Completed);
        for (i, (tenant, result)) in spec.tenants.iter().zip(&outcome.tenants).enumerate() {
            if i == victim_index {
                assert!(
                    result.quarantined,
                    "{kind}: `{}` not quarantined",
                    tenant.id
                );
                assert!(result.report.is_none());
            } else {
                assert!(!result.quarantined, "{kind}: `{}` quarantined", tenant.id);
                assert_eq!(
                    result.report.as_ref().expect("healthy tenant").to_json(),
                    expected[i],
                    "{kind}: healthy tenant `{}` diverged",
                    tenant.id
                );
            }
        }
        assert_eq!(
            recorder.counter_value("fleet.quarantined"),
            Some(1),
            "{kind}: quarantine counter"
        );
        let trace = recorder.chrome_trace_json().expect("trace export");
        assert!(
            trace.contains("fleet.quarantine") && trace.contains(&victim.id),
            "{kind}: journaled alert names the tenant: {trace}"
        );
    }

    // Swapping two tenants' snapshot files fails both manifest CRCs.
    let dir = drained_dir(&spec, "quarantine-swap");
    let a = dir.join(spec.tenants[0].snapshot_file());
    let b = dir.join(spec.tenants[1].snapshot_file());
    let tmp = dir.join("swap.tmp");
    std::fs::rename(&a, &tmp).unwrap();
    std::fs::rename(&b, &a).unwrap();
    std::fs::rename(&tmp, &b).unwrap();
    let (outcome, recorder) = resume_with_recorder(&spec, &dir);
    assert!(outcome.tenants[0].quarantined && outcome.tenants[1].quarantined);
    assert!(!outcome.tenants[2].quarantined);
    assert_eq!(
        outcome.tenants[2].report.as_ref().unwrap().to_json(),
        expected[2]
    );
    assert_eq!(recorder.counter_value("fleet.quarantined"), Some(2));

    // A corrupt manifest is a whole-fleet error, not a quarantine: no
    // tenant's provenance can be trusted without it.
    let dir = drained_dir(&spec, "quarantine-manifest");
    bit_flip(&dir.join(MANIFEST_FILE));
    let err = Fleet::new(
        spec.clone(),
        FleetConfig {
            resume_dir: Some(dir.clone()),
            snapshot_dir: dir,
            ..FleetConfig::default()
        },
    )
    .unwrap()
    .run()
    .unwrap_err();
    assert!(err.to_string().contains("manifest"), "{err}");
}

#[test]
fn concurrent_probes_leave_reports_byte_identical() {
    let spec = fleet_spec();
    let expected = reference_reports(&spec, "probe-ref");

    let fleet = Fleet::new(
        spec.clone(),
        FleetConfig {
            listen: Some("127.0.0.1:0".into()),
            round_throttle: Some(Duration::from_millis(3)),
            ..fleet_config("probe")
        },
    )
    .expect("fleet builds")
    .with_recorder(Recorder::enabled());
    let addr = fleet.local_addr().expect("bound");
    let stop = Arc::new(AtomicBool::new(false));

    // Probe threads cycle the per-tenant and fleet routes while every
    // round runs; responses must always be well-formed.
    let mut probes = Vec::new();
    for tenant in &spec.tenants {
        let stop = Arc::clone(&stop);
        let id = tenant.id.clone();
        probes.push(std::thread::spawn(move || {
            let routes = [
                format!("/tenants/{id}/status"),
                format!("/tenants/{id}/schedule"),
                format!("/tenants/{id}/metrics"),
                format!("/tenants/{id}/health"),
                format!("/tenants/{id}/timeseries?limit=3"),
                format!("/tenants/{id}"),
                "/tenants".to_string(),
                "/status".to_string(),
                "/metrics?format=prometheus".to_string(),
            ];
            let mut hits = 0usize;
            while !stop.load(Ordering::SeqCst) {
                for route in &routes {
                    let Ok((status, body)) = request(addr, "GET", route) else {
                        continue;
                    };
                    assert!(
                        status == 200 || status == 503,
                        "GET {route} -> {status}: {body}"
                    );
                    if route.contains("prometheus") && status == 200 && !body.is_empty() {
                        prometheus::validate_exposition(&body).expect("labeled exposition");
                        assert!(body.contains("tenant=\"_fleet\""), "{body}");
                    }
                    hits += 1;
                }
            }
            hits
        }));
    }

    let outcome = fleet.run().expect("probed fleet run");
    stop.store(true, Ordering::SeqCst);
    let hits: usize = probes.into_iter().map(|p| p.join().unwrap()).sum();
    assert!(hits > 0, "probes landed while the fleet ran");
    assert_eq!(outcome.exit, ExitReason::Completed);
    let got: Vec<String> = outcome
        .tenants
        .iter()
        .map(|t| t.report.as_ref().expect("completed").to_json())
        .collect();
    assert_eq!(got, expected, "probing perturbed a tenant's trajectory");
}
