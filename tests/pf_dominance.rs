//! The paper's central comparison (§2.2.2, Figure 3): the PF technique
//! weakly dominates the GF technique on perceived freshness, they coincide
//! at zero skew, and the gap explodes in the aligned case.

use freshen::prelude::*;

#[test]
fn pf_equals_gf_at_zero_skew() {
    for alignment in [
        Alignment::Aligned,
        Alignment::Reverse,
        Alignment::ShuffledChange,
    ] {
        let problem = Scenario::table2(0.0, alignment, 1).problem().unwrap();
        let pf = solve_perceived_freshness(&problem).unwrap();
        let gf = solve_general_freshness(&problem).unwrap();
        assert!(
            (pf.perceived_freshness - gf.perceived_freshness).abs() < 1e-6,
            "θ=0 ⇒ identical schedules ({alignment:?})"
        );
    }
}

#[test]
fn pf_dominates_gf_across_the_sweep() {
    for alignment in [
        Alignment::Aligned,
        Alignment::Reverse,
        Alignment::ShuffledChange,
    ] {
        for theta in [0.4, 0.8, 1.2, 1.6] {
            for seed in [1, 2] {
                let problem = Scenario::table2(theta, alignment, seed).problem().unwrap();
                let pf = solve_perceived_freshness(&problem).unwrap();
                let gf = solve_general_freshness(&problem).unwrap();
                assert!(
                    pf.perceived_freshness >= gf.perceived_freshness - 1e-9,
                    "{alignment:?} θ={theta} seed={seed}: PF {} < GF {}",
                    pf.perceived_freshness,
                    gf.perceived_freshness
                );
            }
        }
    }
}

#[test]
fn pf_increases_with_skew_for_pf_technique() {
    // Figure 3's common shape: the profile-aware curve rises with θ in
    // the shuffled and reverse cases.
    for alignment in [Alignment::ShuffledChange, Alignment::Reverse] {
        let mut last = 0.0;
        for theta in [0.0, 0.4, 0.8, 1.2, 1.6] {
            let problem = Scenario::table2(theta, alignment, 7).problem().unwrap();
            let pf = solve_perceived_freshness(&problem)
                .unwrap()
                .perceived_freshness;
            assert!(
                pf >= last - 0.01,
                "{alignment:?}: PF should rise with skew ({last} → {pf} at θ={theta})"
            );
            last = pf;
        }
    }
}

#[test]
fn gf_collapses_in_aligned_case_at_high_skew() {
    // Figure 3(b)'s most significant difference: "perceived freshness
    // approaches 0 for high interest skew when user interest is ignored".
    let problem = Scenario::table2(1.6, Alignment::Aligned, 7)
        .problem()
        .unwrap();
    let pf = solve_perceived_freshness(&problem).unwrap();
    let gf = solve_general_freshness(&problem).unwrap();
    assert!(
        gf.perceived_freshness < 0.05,
        "GF must collapse: {}",
        gf.perceived_freshness
    );
    assert!(
        pf.perceived_freshness > 0.7,
        "PF must stay high: {}",
        pf.perceived_freshness
    );
}

#[test]
fn gf_still_wins_on_its_own_metric() {
    // Sanity: the GF technique is optimal for *average* freshness, so it
    // must beat the PF schedule there — the two objectives genuinely trade
    // off.
    let problem = Scenario::table2(1.2, Alignment::Aligned, 7)
        .problem()
        .unwrap();
    let pf = solve_perceived_freshness(&problem).unwrap();
    let gf = solve_general_freshness(&problem).unwrap();
    assert!(
        gf.general_freshness >= pf.general_freshness - 1e-9,
        "GF schedule must maximize average freshness: {} vs {}",
        gf.general_freshness,
        pf.general_freshness
    );
}

#[test]
fn baselines_are_dominated_too() {
    use freshen::solver::baselines::{solve_proportional, solve_uniform};
    for theta in [0.4, 1.0, 1.6] {
        let problem = Scenario::table2(theta, Alignment::ShuffledChange, 3)
            .problem()
            .unwrap();
        let opt = solve_perceived_freshness(&problem)
            .unwrap()
            .perceived_freshness;
        let uni = solve_uniform(&problem).perceived_freshness;
        let prop = solve_proportional(&problem).perceived_freshness;
        assert!(
            opt >= uni - 1e-9,
            "θ={theta}: optimal {opt} vs uniform {uni}"
        );
        assert!(
            opt >= prop - 1e-9,
            "θ={theta}: optimal {opt} vs proportional {prop}"
        );
        // Change-proportional is a notoriously bad policy here: it pours
        // bandwidth into hopeless volatiles.
        assert!(
            prop < uni + 0.05,
            "θ={theta}: proportional should not shine"
        );
    }
}
