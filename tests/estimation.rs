//! Closing the estimation loop: the scheduler never sees true change
//! rates or the true profile — only what polls and the request log reveal
//! (paper §2: estimates "periodically communicated to the mirror"; §7:
//! profiles learned from the request log).

use freshen::core::estimate::PollHistory;
use freshen::prelude::*;

#[test]
fn rates_learned_from_simulation_polls_are_accurate() {
    let problem = Problem::builder()
        .change_rates(vec![4.0, 1.0, 0.25])
        .access_probs(vec![1.0 / 3.0; 3])
        .bandwidth(6.0)
        .build()
        .unwrap();
    // Poll everything at 2/period for a long time.
    let freqs = vec![2.0; 3];
    let report = Simulation::new(
        &problem,
        &freqs,
        SimConfig {
            periods: 3000.0,
            warmup_periods: 0.0,
            accesses_per_period: 1.0,
            seed: 5,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");
    for i in 0..3 {
        let interval = 3000.0 / report.polls[i] as f64;
        let est = PollHistory::new(report.polls[i], report.polls_changed[i], interval)
            .unwrap()
            .estimate_bias_reduced();
        let truth = problem.change_rates()[i];
        assert!(
            (est - truth).abs() < truth * 0.15 + 0.02,
            "element {i}: estimated {est} vs true {truth}"
        );
    }
}

#[test]
fn schedule_from_estimates_close_to_true_optimum() {
    let truth = Scenario::table2(1.0, Alignment::ShuffledChange, 6)
        .problem()
        .unwrap();
    let optimum = solve_perceived_freshness(&truth).unwrap();

    // Observation phase: uniform polling.
    let n = truth.len();
    let probe = vec![truth.bandwidth() / n as f64; n];
    let report = Simulation::new(
        &truth,
        &probe,
        SimConfig {
            periods: 300.0,
            warmup_periods: 0.0,
            accesses_per_period: 5000.0,
            seed: 8,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");

    // Learn rates from polls and the profile from the request log.
    let rates: Vec<f64> = (0..n)
        .map(|i| {
            if report.polls[i] > 0 {
                let interval = 300.0 / report.polls[i] as f64;
                PollHistory::new(report.polls[i], report.polls_changed[i], interval)
                    .unwrap()
                    .estimate_bias_reduced()
            } else {
                2.0
            }
        })
        .collect();
    let weights: Vec<f64> = report
        .access_counts
        .iter()
        .map(|&c| c as f64 + 0.5)
        .collect();
    let estimated = Problem::builder()
        .change_rates(rates)
        .access_weights(weights)
        .bandwidth(truth.bandwidth())
        .build()
        .unwrap();
    let learned = solve_perceived_freshness(&estimated).unwrap();

    // Evaluate the learned schedule against the *true* world.
    let achieved = truth.perceived_freshness(&learned.frequencies);
    assert!(
        achieved > optimum.perceived_freshness * 0.9,
        "learned schedule {achieved} should reach 90% of optimal {}",
        optimum.perceived_freshness
    );
}

#[test]
fn profile_estimator_converges_to_true_mix() {
    let truth = Scenario::table2(1.2, Alignment::ShuffledChange, 4)
        .problem()
        .unwrap();
    let report = Simulation::new(
        &truth,
        &vec![0.5; truth.len()],
        SimConfig {
            periods: 100.0,
            warmup_periods: 0.0,
            accesses_per_period: 10_000.0,
            seed: 2,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");
    let total: u64 = report.access_counts.iter().sum();
    // Empirical mix of the hottest elements tracks the Zipf profile.
    for i in 0..10 {
        let emp = report.access_counts[i] as f64 / total as f64;
        let want = truth.access_probs()[i];
        assert!(
            (emp - want).abs() < want * 0.2 + 1e-4,
            "element {i}: empirical {emp} vs profile {want}"
        );
    }
}
