//! The object-size extension (paper §5): frequency vs bandwidth, the
//! size-blind penalty of Figure 10, and FBA vs FFA of Figure 11 — end to
//! end through the facade.

use freshen::heuristics::partition::PartitionCriterion;
use freshen::prelude::*;
use freshen::workload::scenario::{SizeAlignment, SizeDist};

fn fig10_pareto_problem() -> Problem {
    Scenario::builder()
        .num_objects(500)
        .updates_per_period(1000.0)
        .syncs_per_period(250.0)
        .zipf_theta(0.0)
        .alignment(Alignment::Aligned)
        .size_dist(SizeDist::Pareto { shape: 1.1 })
        .size_alignment(SizeAlignment::AlignedWithChange)
        .seed(42)
        .build()
        .unwrap()
        .problem()
        .unwrap()
}

#[test]
fn pareto_world_grants_more_total_syncs_for_same_bandwidth() {
    // Figure 10(a): "Because the Pareto case has a large number of small
    // objects, the total number of syncs is larger while the total amount
    // of synchronization bandwidth is the same."
    let pareto = fig10_pareto_problem();
    let uniform = pareto.with_uniform_sizes();
    let solver = LagrangeSolver::default();
    let sol_p = solver.solve(&pareto).unwrap();
    let sol_u = solver.solve(&uniform).unwrap();
    let syncs_p: f64 = sol_p.frequencies.iter().sum();
    let syncs_u: f64 = sol_u.frequencies.iter().sum();
    assert!(
        syncs_p > syncs_u * 1.5,
        "Pareto world should hand out many more syncs: {syncs_p} vs {syncs_u}"
    );
    assert!((sol_p.bandwidth_used - sol_u.bandwidth_used).abs() < 1e-6);
}

#[test]
fn sync_resources_go_to_low_change_objects() {
    // Figure 10: with uniform access and aligned change rates, the
    // volatile head of the object axis is starved; the stable tail gets
    // everything.
    let pareto = fig10_pareto_problem();
    let sol = LagrangeSolver::default().solve(&pareto).unwrap();
    let n = sol.frequencies.len();
    let head: f64 = sol.frequencies[..n / 10].iter().sum();
    let tail: f64 = sol.frequencies[9 * n / 10..].iter().sum();
    assert!(
        tail > head,
        "stable tail must out-earn the volatile head: head {head} tail {tail}"
    );
    assert!(sol.starved_count() > 0, "some objects must be starved");
}

#[test]
fn size_blind_schedule_loses() {
    // Figure 10 / §5.3: ignoring sizes wastes bandwidth on large objects.
    // The paper measured 0.312 (blind) vs 0.586 (aware), replaying the
    // blind plan as-is; we additionally give the blind schedule the best
    // possible defence — rescaling it to exactly exhaust the true sized
    // budget — and it must still lose.
    let pareto = fig10_pareto_problem();
    let solver = LagrangeSolver::default();
    let aware = solver.solve(&pareto).unwrap();
    let blind_raw = solver.solve(&pareto.with_uniform_sizes()).unwrap();

    // (a) As planned: execute the size-blind frequencies; if the plan
    // overdraws the real budget it must be cut, if it underdraws the
    // leftover bandwidth is simply wasted (the scheduler doesn't know).
    let used = pareto.bandwidth_used(&blind_raw.frequencies);
    let cut = if used > pareto.bandwidth() {
        pareto.bandwidth() / used
    } else {
        1.0
    };
    let as_planned: Vec<f64> = blind_raw.frequencies.iter().map(|f| f * cut).collect();
    let as_planned_pf = pareto.perceived_freshness(&as_planned);
    assert!(
        aware.perceived_freshness > as_planned_pf + 0.05,
        "size-aware {} must clearly beat the size-blind plan {}",
        aware.perceived_freshness,
        as_planned_pf
    );

    // (b) Generously rescaled to exhaust the sized budget: still worse.
    let scale = pareto.bandwidth() / used;
    let rescaled: Vec<f64> = blind_raw.frequencies.iter().map(|f| f * scale).collect();
    let rescaled_pf = pareto.perceived_freshness(&rescaled);
    assert!(
        aware.perceived_freshness > rescaled_pf + 0.02,
        "size-aware {} must beat even the rescaled size-blind schedule {}",
        aware.perceived_freshness,
        rescaled_pf
    );
}

#[test]
fn fba_dominates_ffa_across_partition_counts() {
    // Figure 11's claim: "FBA always outperforms FFA."
    let problem = Scenario::builder()
        .num_objects(500)
        .updates_per_period(1000.0)
        .syncs_per_period(250.0)
        .zipf_theta(1.0)
        .alignment(Alignment::ShuffledChange)
        .size_dist(SizeDist::Pareto { shape: 1.1 })
        .size_alignment(SizeAlignment::ReverseOfChange)
        .seed(42)
        .build()
        .unwrap()
        .problem()
        .unwrap();
    for k in [5, 25, 100] {
        let pf_of = |allocation| {
            HeuristicScheduler::new(HeuristicConfig {
                criterion: PartitionCriterion::PerceivedFreshnessPerSize,
                num_partitions: k,
                allocation,
                ..Default::default()
            })
            .unwrap()
            .solve(&problem)
            .unwrap()
            .solution
            .perceived_freshness
        };
        let fba = pf_of(AllocationPolicy::FixedBandwidth);
        let ffa = pf_of(AllocationPolicy::FixedFrequency);
        assert!(
            fba >= ffa - 1e-9,
            "k={k}: FBA {fba} must not lose to FFA {ffa}"
        );
    }
}

#[test]
fn pf_size_partitioning_beats_size_partitioning() {
    // §5.3: "ordering by size only does not capture the relationship
    // between elements so as to improve Perceived Freshness as much as
    // PF/s-Partitioning."
    let problem = Scenario::builder()
        .num_objects(500)
        .updates_per_period(1000.0)
        .syncs_per_period(250.0)
        .zipf_theta(1.0)
        .alignment(Alignment::ShuffledChange)
        .size_dist(SizeDist::Pareto { shape: 1.1 })
        .size_alignment(SizeAlignment::Shuffled)
        .seed(42)
        .build()
        .unwrap()
        .problem()
        .unwrap();
    let pf_of = |criterion| {
        HeuristicScheduler::new(HeuristicConfig {
            criterion,
            num_partitions: 25,
            ..Default::default()
        })
        .unwrap()
        .solve(&problem)
        .unwrap()
        .solution
        .perceived_freshness
    };
    let pf_size = pf_of(PartitionCriterion::PerceivedFreshnessPerSize);
    let size_only = pf_of(PartitionCriterion::Size);
    assert!(
        pf_size > size_only,
        "PF/s {pf_size} must beat size-only {size_only}"
    );
}

#[test]
fn sized_simulation_agrees_with_analytic() {
    // The simulator doesn't model transfer durations, but the analytic PF
    // of a sized schedule must still match its simulated freshness (sizes
    // only constrain the *choice* of frequencies).
    let problem = fig10_pareto_problem();
    let sol = LagrangeSolver::default().solve(&problem).unwrap();
    let report = Simulation::new(
        &problem,
        &sol.frequencies,
        SimConfig {
            periods: 60.0,
            warmup_periods: 4.0,
            accesses_per_period: 1000.0,
            seed: 3,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");
    assert!(
        (report.time_averaged_pf - sol.perceived_freshness).abs() < 0.02,
        "simulated {} vs analytic {}",
        report.time_averaged_pf,
        sol.perceived_freshness
    );
}
