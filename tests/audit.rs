//! The verification layer end to end: KKT certificates on every solver
//! family, differential parity between independent solution methods, and
//! the engine's poll-credit ledger under injected failures.

use freshen::core::SyncPolicy;
use freshen::engine::LivePollSource;
use freshen::prelude::*;
use freshen::solver::baselines::solve_grid_search;
use freshen::solver::ProjectedGradientSolver;
use freshen::workload::scenario::SizeDist;

fn table1_problem(probs: Vec<f64>) -> Problem {
    Problem::builder()
        .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
        .access_probs(probs)
        .bandwidth(5.0)
        .build()
        .unwrap()
}

fn table2_problem(theta: f64, seed: u64) -> Problem {
    Scenario::table2(theta, Alignment::ShuffledChange, seed)
        .problem()
        .unwrap()
}

fn assert_clean(report: &AuditReport, label: &str) {
    assert!(
        report.is_clean(),
        "{label} failed its certificate: {}",
        report.to_json()
    );
}

#[test]
fn lagrange_solutions_carry_a_clean_certificate() {
    let audit = SolutionAudit::default();
    let solver = LagrangeSolver::default();
    let profiles = [
        vec![0.2; 5],
        (1..=5).map(|i| i as f64 / 15.0).collect::<Vec<_>>(),
        (1..=5).rev().map(|i| i as f64 / 15.0).collect::<Vec<_>>(),
    ];
    for (k, probs) in profiles.into_iter().enumerate() {
        let problem = table1_problem(probs);
        let solution = solver.solve(&problem).unwrap();
        let report = audit
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        assert_clean(&report, &format!("table1 profile {k}"));
    }
    for theta in [0.0, 1.0, 2.0] {
        let problem = table2_problem(theta, 42);
        let solution = solver.solve(&problem).unwrap();
        let report = audit
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        assert_clean(&report, &format!("table2 θ={theta}"));
    }
}

#[test]
fn sharded_solves_match_global_and_pass_audit() {
    let solver = LagrangeSolver::default();
    let problem = table2_problem(1.0, 7);
    let global = solver.solve(&problem).unwrap();
    for shards in [2, 4, 8] {
        let sharded = solver.solve_sharded(&problem, shards).unwrap();
        let report = SolutionAudit::default()
            .check(&problem, &sharded, SyncPolicy::FixedOrder)
            .unwrap();
        assert_clean(&report, &format!("sharded K={shards}"));
        assert!(
            (sharded.perceived_freshness - global.perceived_freshness).abs() < 1e-9,
            "shard count must not move the optimum: {} vs {}",
            sharded.perceived_freshness,
            global.perceived_freshness
        );
    }
}

#[test]
fn sharded_solves_stay_cost_aware_under_a_levy() {
    // Differential pin of the sharded path against the global solve when
    // a per-poll cost levy γ > 0 is active: the cost column must shape
    // the sharded allocation exactly as it shapes the global one, and
    // the cost-adjusted certificate must hold shard-count-independently.
    let base = table2_problem(1.0, 7);
    let n = base.len();
    let costed = Problem::builder()
        .change_rates(base.change_rates().to_vec())
        .access_probs(base.access_probs().to_vec())
        .costs((0..n).map(|i| 0.5 + (i % 5) as f64 * 0.75).collect())
        .bandwidth(base.bandwidth())
        .build()
        .unwrap();
    let gamma = 2e-3;
    let solver = LagrangeSolver {
        cost_weight: gamma,
        ..Default::default()
    };
    let global = solver.solve(&costed).unwrap();
    let audit = SolutionAudit::default();
    for shards in [2, 4, 8] {
        let sharded = solver.solve_sharded(&costed, shards).unwrap();
        assert_eq!(
            sharded.cost_multiplier,
            Some(gamma),
            "K={shards}: the levy must survive the sharded path"
        );
        assert!(
            (sharded.perceived_freshness - global.perceived_freshness).abs() < 1e-9,
            "K={shards}: costed PF moved: {} vs {}",
            sharded.perceived_freshness,
            global.perceived_freshness
        );
        let (global_cost, sharded_cost) = (
            costed.cost_used(&global.frequencies),
            costed.cost_used(&sharded.frequencies),
        );
        assert!(
            (sharded_cost - global_cost).abs() < 1e-6 * global_cost.max(1.0),
            "K={shards}: cost spend diverged: {sharded_cost} vs {global_cost}"
        );
        let report = audit
            .check_with_cost(&costed, &sharded, SyncPolicy::FixedOrder, gamma)
            .unwrap();
        assert_clean(&report, &format!("costed sharded K={shards}"));
    }
}

#[test]
fn projected_gradient_passes_the_audit() {
    let problem = table1_problem(vec![0.2; 5]);
    // Audit-grade NLP: a tight convergence tolerance brings the KKT
    // spread under the strict certificate's 1e-6.
    let tight = ProjectedGradientSolver {
        max_iters: 50_000,
        rel_tol: 1e-16,
        ..Default::default()
    };
    let solution = tight.solve(&problem).unwrap();
    let report = SolutionAudit::default()
        .check(&problem, &solution, SyncPolicy::FixedOrder)
        .unwrap();
    assert_clean(&report, "projected gradient (rel_tol 1e-16)");

    // Default settings stop earlier (spread ~1e-5..1e-4): still a valid
    // allocation, certified by the relaxed profile built for NLP output.
    let solution = ProjectedGradientSolver::default().solve(&problem).unwrap();
    let strict = SolutionAudit::default()
        .check(&problem, &solution, SyncPolicy::FixedOrder)
        .unwrap();
    assert!(
        !strict.is_clean(),
        "default PG should NOT meet the strict exact-solver bar \
         (if it does, tighten the strict profile): {}",
        strict.to_json()
    );
    let relaxed = SolutionAudit::relaxed()
        .check(&problem, &solution, SyncPolicy::FixedOrder)
        .unwrap();
    assert_clean(&relaxed, "projected gradient (default, relaxed profile)");
}

#[test]
fn grid_search_brackets_the_exact_solver() {
    // Differential check against a method with *no shared code* with the
    // Lagrange solver: exhaustive search over the bandwidth simplex.
    let problem = Problem::builder()
        .change_rates(vec![1.0, 3.0, 6.0])
        .access_probs(vec![0.5, 0.3, 0.2])
        .bandwidth(3.0)
        .build()
        .unwrap();
    let exact = LagrangeSolver::default().solve(&problem).unwrap();
    let grid = solve_grid_search(&problem, 120).unwrap();
    assert!(
        exact.perceived_freshness >= grid.perceived_freshness - 1e-12,
        "grid ({}) must not beat the certified optimum ({})",
        grid.perceived_freshness,
        exact.perceived_freshness
    );
    assert!(
        exact.perceived_freshness - grid.perceived_freshness < 5e-3,
        "a 120-step grid should land within O(Δ²) of the optimum: gap {}",
        exact.perceived_freshness - grid.perceived_freshness
    );
}

#[test]
fn simulator_confirms_the_analytic_model() {
    // The discrete-event simulator measures PF by integrating actual
    // staleness intervals — an independent path to the same number the
    // analytic evaluator computes in closed form.
    let problem = table1_problem(vec![0.2; 5]);
    let solution = LagrangeSolver::default().solve(&problem).unwrap();
    let report = Simulation::new(
        &problem,
        &solution.frequencies,
        SimConfig {
            periods: 400.0,
            warmup_periods: 20.0,
            accesses_per_period: 200.0,
            seed: 9,
        },
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(
        (report.time_averaged_pf - report.analytic_pf).abs() < 0.02,
        "measured PF {} vs analytic {} — the model and the simulator disagree",
        report.time_averaged_pf,
        report.analytic_pf
    );
}

#[test]
fn heuristic_allocations_conserve_the_budget_under_pareto_sizes() {
    // FFA and FBA must hand back schedules that respect Σ sᵢfᵢ ≤ B even
    // with heavy-tailed object sizes (the paper's shape-1.1 web sizing).
    let problem = Scenario::builder()
        .num_objects(300)
        .updates_per_period(600.0)
        .syncs_per_period(150.0)
        .zipf_theta(1.0)
        .update_std_dev(1.0)
        .alignment(Alignment::ShuffledChange)
        .size_dist(SizeDist::Pareto { shape: 1.1 })
        .seed(17)
        .build()
        .unwrap()
        .problem()
        .unwrap();
    let budget = problem.bandwidth();
    for allocation in [
        AllocationPolicy::FixedFrequency,
        AllocationPolicy::FixedBandwidth,
    ] {
        let config = HeuristicConfig {
            allocation,
            ..HeuristicConfig::default()
        };
        let heuristic = HeuristicScheduler::new(config)
            .unwrap()
            .solve(&problem)
            .unwrap();
        let used: f64 = heuristic
            .solution
            .frequencies
            .iter()
            .zip(problem.sizes())
            .map(|(&f, &s)| f * s)
            .sum();
        assert!(
            used <= budget * (1.0 + 1e-9),
            "{} overspends: {used} > {budget}",
            allocation.name()
        );
        assert!(
            used >= budget * 0.99,
            "{} strands bandwidth: {used} of {budget}",
            allocation.name()
        );
        assert!(heuristic
            .solution
            .frequencies
            .iter()
            .all(|f| f.is_finite() && *f >= 0.0));
    }
}

#[test]
fn cli_audit_subcommand_certifies_scenarios_end_to_end() {
    let run = |argv: &[&str]| {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let result = freshen_cli::run(&argv, &mut buf);
        (result, String::from_utf8(buf).unwrap())
    };
    // Table-1-scale scenario through every audited solver family.
    for extra in [&[][..], &["--shards", "4"][..], &["--solver", "pg"][..]] {
        let mut argv = vec![
            "audit",
            "--objects",
            "100",
            "--updates",
            "200",
            "--syncs",
            "50",
            "--theta",
            "1.0",
            "--seed",
            "3",
        ];
        argv.extend_from_slice(extra);
        let (result, report) = run(&argv);
        result.unwrap_or_else(|e| panic!("{extra:?}: {e}\n{report}"));
        assert!(report.contains("\"clean\":true"), "{extra:?}: {report}");
    }
    // A violation must surface as a command failure (CI exit status 1).
    let (result, report) = run(&["audit"]);
    assert!(result.is_err(), "bare invocation must fail: {report}");
}

#[test]
fn engine_ledger_balances_under_injected_failures() {
    // A budget-starved, failure-injected run through the public engine
    // API: the per-epoch conservation law must hold on every epoch even
    // while polls are retried, abandoned, and shed.
    let prior = Problem::builder()
        .change_rates(vec![3.0, 2.0, 1.5, 1.0, 0.5])
        .access_weights(vec![5.0, 4.0, 3.0, 2.0, 1.0])
        .bandwidth(5.0)
        .build()
        .unwrap();
    let config = EngineConfig {
        epochs: 12,
        warmup_epochs: 2,
        failure_rate: 0.35,
        max_retries: 1,
        budget_factor: 0.6,
        seed: 23,
        audit: true,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(&prior, config).unwrap();
    let accesses = freshen::engine::LiveAccessStream::new(prior.access_probs(), 80.0, 31, 12.0);
    let mut source = LivePollSource::new(prior.change_rates(), 37, 24.0).unwrap();
    let report = engine.run(accesses, &mut source).unwrap();

    let ledger = engine.ledger().expect("audit flag arms the ledger");
    assert_eq!(ledger.epochs().len(), report.epochs.len());
    assert!(
        ledger.is_clean(),
        "credit leaked: {:?}",
        ledger
            .epochs()
            .iter()
            .filter(|e| e.violated)
            .collect::<Vec<_>>()
    );
    assert!(ledger.max_residual() < 1e-9);
    let abandoned: u64 = ledger.epochs().iter().map(|e| e.abandoned).sum();
    assert!(
        abandoned > 0,
        "the starved run must exercise the abandonment path the ledger guards"
    );
}
