//! The full operational loop, end to end across every crate:
//! simulate → emit logs → learn parameters from the logs → adaptively
//! re-solve (drift-gated, warm-started) → verify the learned schedule in
//! a fresh simulation.

use freshen::heuristics::adaptive::AdaptiveScheduler;
use freshen::prelude::*;
use freshen::workload::trace::{
    learn_from_logs, parse_access_log, write_access_log, AccessRecord, PollRecord,
};

/// Turn a simulation report into the log records an operator would ship.
fn logs_from_report(
    report: &freshen::sim::SimReport,
    horizon: f64,
) -> (Vec<AccessRecord>, Vec<PollRecord>) {
    let mut accesses = Vec::new();
    for (element, &count) in report.access_counts.iter().enumerate() {
        // The report aggregates counts; spread them evenly for the log —
        // timestamps don't matter to the frequency learner.
        for k in 0..count {
            accesses.push(AccessRecord {
                time: (k as f64 + 0.5) * horizon / count as f64,
                element,
            });
        }
    }
    let mut polls = Vec::new();
    for element in 0..report.polls.len() {
        let total = report.polls[element];
        let changed = report.polls_changed[element];
        for k in 0..total {
            polls.push(PollRecord {
                time: (k as f64 + 1.0) * horizon / total as f64,
                element,
                changed: k < changed, // order is irrelevant to the estimator
            });
        }
    }
    (accesses, polls)
}

#[test]
fn learn_from_logs_then_adapt_and_verify() {
    // Ground truth the operator never sees directly.
    let truth = Scenario::builder()
        .num_objects(120)
        .updates_per_period(240.0)
        .syncs_per_period(60.0)
        .zipf_theta(1.1)
        .alignment(Alignment::ShuffledChange)
        .seed(19)
        .build()
        .unwrap()
        .problem()
        .unwrap();
    let optimum = solve_perceived_freshness(&truth).unwrap();

    // Phase 1: observe under a uniform probe schedule; ship the logs.
    let probe = vec![truth.bandwidth() / truth.len() as f64; truth.len()];
    let horizon = 120.0;
    let report = Simulation::new(
        &truth,
        &probe,
        SimConfig {
            periods: horizon,
            warmup_periods: 0.0,
            accesses_per_period: 2000.0,
            seed: 23,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");
    let (accesses, polls) = logs_from_report(&report, horizon);

    // The access log round-trips through its CSV representation, exactly
    // as it would through a file.
    let parsed = parse_access_log(&write_access_log(&accesses)).unwrap();
    assert_eq!(parsed.len(), accesses.len());

    // Phase 2: learn the problem from logs.
    let learned = learn_from_logs(truth.len(), &parsed, &polls, 0.5, 2.0).unwrap();
    let estimated = Problem::builder()
        .change_rates(learned.change_rates)
        .access_probs(learned.access_probs)
        .bandwidth(truth.bandwidth())
        .build()
        .unwrap();

    // Phase 3: adaptive scheduler solves the learned problem and ignores
    // a re-observation with no drift.
    let mut scheduler = AdaptiveScheduler::new(&estimated, 0.05).unwrap();
    assert!(
        !scheduler.observe(&estimated).unwrap(),
        "no drift, no re-solve"
    );
    let schedule = scheduler.schedule().frequencies.clone();

    // Phase 4: the learned schedule performs near-optimally on the truth,
    // measured by a *fresh* simulation.
    let verify = Simulation::new(
        &truth,
        &schedule,
        SimConfig {
            periods: 80.0,
            warmup_periods: 5.0,
            accesses_per_period: 2000.0,
            seed: 29,
        },
    )
    .unwrap()
    .run()
    .expect("simulation run");
    let achieved = verify.time_averaged_pf;
    assert!(
        achieved > optimum.perceived_freshness * 0.85,
        "learned+adaptive schedule achieves {achieved} vs optimum {}",
        optimum.perceived_freshness
    );

    // Phase 5: interest drifts hard; the monitor fires and the warm
    // re-solve matches a cold solve of the drifted problem.
    let drifted_probs: Vec<f64> = estimated.access_probs().iter().rev().copied().collect();
    let drifted = Problem::builder()
        .change_rates(estimated.change_rates().to_vec())
        .access_probs(drifted_probs)
        .bandwidth(estimated.bandwidth())
        .build()
        .unwrap();
    assert!(scheduler.observe(&drifted).unwrap(), "hard drift must fire");
    let cold = solve_perceived_freshness(&drifted).unwrap();
    assert!(
        (scheduler.schedule().perceived_freshness - cold.perceived_freshness).abs() < 1e-6,
        "warm re-solve reaches the cold optimum"
    );
}
