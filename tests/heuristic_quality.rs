//! Quality guarantees of the scalable pipeline (paper §4.1): convergence
//! to the optimum with partition count, criterion rankings, and the
//! k-Means refinement win.

use freshen::heuristics::partition::PartitionCriterion;
use freshen::prelude::*;
use freshen::solver::solve_perceived_freshness;

fn pf_with(problem: &Problem, config: HeuristicConfig) -> f64 {
    HeuristicScheduler::new(config)
        .unwrap()
        .solve(problem)
        .unwrap()
        .solution
        .perceived_freshness
}

#[test]
fn all_criteria_converge_to_optimal_at_full_granularity() {
    let problem = Scenario::table2(0.8, Alignment::ShuffledChange, 42)
        .problem()
        .unwrap();
    let opt = solve_perceived_freshness(&problem)
        .unwrap()
        .perceived_freshness;
    for criterion in PartitionCriterion::CORE {
        let pf = pf_with(
            &problem,
            HeuristicConfig {
                criterion,
                num_partitions: problem.len(),
                ..Default::default()
            },
        );
        assert!(
            (pf - opt).abs() < 1e-6,
            "{}: full granularity must equal optimal ({pf} vs {opt})",
            criterion.name()
        );
    }
}

#[test]
fn quality_improves_broadly_with_partitions() {
    let problem = Scenario::table2(0.8, Alignment::ShuffledChange, 42)
        .problem()
        .unwrap();
    for criterion in PartitionCriterion::CORE {
        let coarse = pf_with(
            &problem,
            HeuristicConfig {
                criterion,
                num_partitions: 5,
                ..Default::default()
            },
        );
        let fine = pf_with(
            &problem,
            HeuristicConfig {
                criterion,
                num_partitions: 250,
                ..Default::default()
            },
        );
        assert!(
            fine >= coarse - 1e-6,
            "{}: 250 partitions ({fine}) must beat 5 ({coarse})",
            criterion.name()
        );
    }
}

#[test]
fn pf_partitioning_wins_under_shuffled_change() {
    // Figure 5(a)/Figure 7: with p and λ independent, PF-partitioning
    // needs far fewer partitions than λ-partitioning for the same quality.
    let problem = Scenario::table2(1.0, Alignment::ShuffledChange, 42)
        .problem()
        .unwrap();
    for k in [10, 25, 50] {
        let pf = pf_with(
            &problem,
            HeuristicConfig {
                criterion: PartitionCriterion::PerceivedFreshness,
                num_partitions: k,
                ..Default::default()
            },
        );
        let lam = pf_with(
            &problem,
            HeuristicConfig {
                criterion: PartitionCriterion::ChangeRate,
                num_partitions: k,
                ..Default::default()
            },
        );
        assert!(
            pf > lam + 0.02,
            "k={k}: PF-partitioning {pf} must clearly beat λ-partitioning {lam}"
        );
    }
}

#[test]
fn techniques_nearly_identical_under_aligned_case() {
    // Figure 5(b)/(c): with p and λ (anti-)monotone, all four sort orders
    // coincide, so the techniques produce near-identical results.
    for alignment in [Alignment::Aligned, Alignment::Reverse] {
        let problem = Scenario::table2(0.8, alignment, 42).problem().unwrap();
        let k = 50;
        let values: Vec<f64> = PartitionCriterion::CORE
            .iter()
            .map(|&criterion| {
                pf_with(
                    &problem,
                    HeuristicConfig {
                        criterion,
                        num_partitions: k,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max - min < 0.05,
            "{alignment:?}: techniques should nearly coincide, spread {min}..{max}"
        );
    }
}

#[test]
fn kmeans_lifts_small_partition_counts() {
    // Figure 8: few partitions + a few iterations ≈ many partitions.
    let problem = Scenario::table3_scaled(20_000, 42).problem().unwrap();
    let raw = pf_with(
        &problem,
        HeuristicConfig {
            num_partitions: 20,
            kmeans_iterations: 0,
            ..Default::default()
        },
    );
    let refined = pf_with(
        &problem,
        HeuristicConfig {
            num_partitions: 20,
            kmeans_iterations: 10,
            ..Default::default()
        },
    );
    assert!(
        refined > raw + 0.005,
        "k-means must visibly improve 20 partitions at 20k objects: {raw} → {refined}"
    );
}

#[test]
fn big_case_smoke_runs_fast_and_sane() {
    // Scaled-down Table 3 as a correctness smoke (the full 500k case runs
    // in the exp_fig7 binary).
    let problem = Scenario::table3_scaled(50_000, 42).problem().unwrap();
    let h = HeuristicScheduler::new(HeuristicConfig {
        num_partitions: 100,
        ..Default::default()
    })
    .unwrap()
    .solve(&problem)
    .unwrap();
    assert!(problem.is_feasible(&h.solution.frequencies, 1e-6));
    assert!(h.solution.perceived_freshness > 0.4);
    assert!(h.reduced_elements <= 100);
}
