//! Integration tests for the serve layer's crash-recovery contract
//! (DESIGN.md §12): a run killed at an epoch boundary and resumed from
//! its checkpoint finishes with a report **byte-identical** to an
//! uninterrupted same-seed run, and every malformed snapshot is rejected
//! with a clean `CoreError` — never a panic, never a partial restore.

use std::path::PathBuf;

use freshen::core::error::CoreError;
use freshen::core::problem::Problem;
use freshen::engine::EngineConfig;
use freshen::serve::{ExitReason, ServeConfig, ServeWorkload, Server, Snapshot};
use freshen::workload::trace::{AccessRecord, PollRecord};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("freshen-serve-recovery")
        .join(tag);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn live_workload(n: usize) -> ServeWorkload {
    let rates: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64).collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    ServeWorkload::Live {
        problem: Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .bandwidth(n as f64 * 0.75)
            .build()
            .expect("problem builds"),
        access_rate: 120.0,
    }
}

fn serve_config(dir: &std::path::Path, epochs: usize) -> ServeConfig {
    ServeConfig {
        engine: EngineConfig {
            epochs,
            warmup_epochs: 2,
            failure_rate: 0.1,
            seed: 23,
            ..EngineConfig::default()
        },
        checkpoint_path: dir.join("run.snapshot"),
        ..ServeConfig::default()
    }
}

fn reference_json(workload: &ServeWorkload, config: &ServeConfig) -> String {
    Server::new(workload.clone(), config.clone())
        .expect("server builds")
        .run()
        .expect("uninterrupted run")
        .report
        .expect("completed run has a report")
        .to_json()
}

#[test]
fn kill_and_resume_is_byte_identical_at_every_boundary() {
    let dir = temp_dir("boundaries");
    let workload = live_workload(6);
    let epochs = 10;
    let config = serve_config(&dir, epochs);
    let expected = reference_json(&workload, &config);

    // Kill at the first boundary, mid-run, and the second-to-last epoch.
    for kill_at in [1usize, epochs / 2, epochs - 1] {
        let mut first = config.clone();
        first.drain_after = Some(kill_at);
        let drained = Server::new(workload.clone(), first)
            .expect("server builds")
            .run()
            .expect("drained leg");
        assert_eq!(drained.exit, ExitReason::Drained);
        assert_eq!(drained.epochs_run, kill_at);
        assert!(drained.report.is_none(), "a drained run has no report");

        let mut second = config.clone();
        second.resume = Some(config.checkpoint_path.clone());
        let resumed = Server::new(workload.clone(), second)
            .expect("server builds")
            .run()
            .expect("resumed leg");
        assert_eq!(resumed.exit, ExitReason::Completed);
        assert_eq!(resumed.epochs_run, epochs - kill_at);
        assert_eq!(
            resumed.report.expect("completed").to_json(),
            expected,
            "kill at epoch {kill_at}: resumed report diverged"
        );
    }
}

#[test]
fn estimator_variants_and_cost_levy_resume_byte_identically() {
    // Format-V4 state: the LLN and SA estimators checkpoint different
    // sufficient statistics than EWMA, and a poll levy adds the schedule's
    // cost multiplier. Kill/resume parity must hold for every variant.
    use freshen::engine::EstimatorKind;
    let workload = live_workload(6);
    let cases = [
        ("lln", EstimatorKind::Lln, 0.0),
        (
            "sa",
            EstimatorKind::Sa {
                gain: 0.5,
                decay: 0.75,
            },
            0.0,
        ),
        ("lln-levy", EstimatorKind::Lln, 0.01),
    ];
    for (tag, estimator, poll_cost) in cases {
        let dir = temp_dir(&format!("estimators-{tag}"));
        let epochs = 10;
        let mut config = serve_config(&dir, epochs);
        config.engine.estimator = estimator;
        config.engine.poll_cost = poll_cost;
        let expected = reference_json(&workload, &config);

        let mut first = config.clone();
        first.drain_after = Some(epochs / 2);
        let drained = Server::new(workload.clone(), first)
            .expect("server builds")
            .run()
            .expect("drained leg");
        assert_eq!(drained.exit, ExitReason::Drained, "{tag}");

        // The on-disk V4 snapshot is an exact codec identity.
        let bytes = std::fs::read(&config.checkpoint_path).expect("snapshot bytes");
        let snapshot = Snapshot::decode(&bytes).expect("valid snapshot");
        assert_eq!(snapshot.encode(), bytes, "{tag}: codec identity");

        let mut second = config.clone();
        second.resume = Some(config.checkpoint_path.clone());
        let resumed = Server::new(workload.clone(), second)
            .expect("server builds")
            .run()
            .expect("resumed leg");
        assert_eq!(resumed.exit, ExitReason::Completed, "{tag}");
        assert_eq!(
            resumed.report.expect("completed").to_json(),
            expected,
            "{tag}: resumed report diverged"
        );
    }
}

#[test]
fn replay_workload_recovers_identically_too() {
    let n = 4;
    let mut accesses = Vec::new();
    for k in 0..600 {
        accesses.push(AccessRecord {
            time: k as f64 * 0.015,
            element: [0, 1, 0, 2, 3, 0][k % 6],
        });
    }
    let mut polls = Vec::new();
    for k in 0..90 {
        polls.push(PollRecord {
            time: k as f64 * 0.1,
            element: k % n,
            changed: k % 3 != 2,
        });
    }
    let workload = ServeWorkload::Replay {
        elements: n,
        bandwidth: 4.0,
        accesses,
        polls,
    };
    let dir = temp_dir("replay");
    let config = serve_config(&dir, 9);
    let expected = reference_json(&workload, &config);

    let mut first = config.clone();
    first.drain_after = Some(4);
    Server::new(workload.clone(), first)
        .expect("server builds")
        .run()
        .expect("drained leg");
    let mut second = config.clone();
    second.resume = Some(config.checkpoint_path.clone());
    let resumed = Server::new(workload, second)
        .expect("server builds")
        .run()
        .expect("resumed leg");
    assert_eq!(resumed.report.expect("completed").to_json(), expected);
}

#[test]
fn checkpoint_cadence_and_double_resume_hold_the_invariant() {
    // Periodic checkpoints plus a *chain* of two kills: resuming a
    // resumed run must still land on the reference bytes.
    let dir = temp_dir("cadence");
    let workload = live_workload(5);
    let epochs = 12;
    let mut config = serve_config(&dir, epochs);
    config.checkpoint_every = 3;
    let expected = reference_json(&workload, &config);

    let mut leg1 = config.clone();
    leg1.drain_after = Some(4);
    let outcome = Server::new(workload.clone(), leg1)
        .expect("server builds")
        .run()
        .expect("leg 1");
    // Cadence checkpoint at epoch 3 + drain checkpoint at epoch 4.
    assert_eq!(outcome.checkpoints, 2);

    let mut leg2 = config.clone();
    leg2.resume = Some(config.checkpoint_path.clone());
    leg2.drain_after = Some(4);
    let outcome = Server::new(workload.clone(), leg2)
        .expect("server builds")
        .run()
        .expect("leg 2");
    assert_eq!(outcome.exit, ExitReason::Drained);

    let mut leg3 = config.clone();
    leg3.resume = Some(config.checkpoint_path.clone());
    let resumed = Server::new(workload, leg3)
        .expect("server builds")
        .run()
        .expect("leg 3");
    assert_eq!(resumed.epochs_run, epochs - 8);
    assert_eq!(resumed.report.expect("completed").to_json(), expected);
}

#[test]
fn repair_active_run_resumes_byte_identically() {
    // Kill-and-resume with incremental KKT repair armed wide open
    // (`repair_fraction = 1.0`): the repair/fallback counters must ride
    // the snapshot (format v3) so the resumed run repairs from the same
    // tallies and lands on the reference bytes.
    let dir = temp_dir("repair-active");
    let workload = live_workload(6);
    let epochs = 12;
    let mut config = serve_config(&dir, epochs);
    config.engine.repair_fraction = 1.0;
    config.engine.drift_threshold = 0.01; // resolve (and so repair) often
    let expected = reference_json(&workload, &config);
    assert!(
        expected.contains("\"repairs\": "),
        "report must carry the repair counter"
    );

    let kill_at = epochs / 2;
    let mut first = config.clone();
    first.drain_after = Some(kill_at);
    Server::new(workload.clone(), first)
        .expect("server builds")
        .run()
        .expect("drained leg");

    // The snapshot itself must carry the mid-run repair tallies.
    let bytes = std::fs::read(&config.checkpoint_path).expect("snapshot bytes");
    let snapshot = Snapshot::decode(&bytes).expect("valid snapshot");
    assert!(
        snapshot.engine.repairs > 0,
        "a wide-open repair gate must have repaired before epoch {kill_at} \
         (resolves {} skips {})",
        snapshot.engine.resolves,
        snapshot.engine.skips,
    );

    let mut second = config.clone();
    second.resume = Some(config.checkpoint_path.clone());
    let resumed = Server::new(workload, second)
        .expect("server builds")
        .run()
        .expect("resumed leg");
    assert_eq!(resumed.exit, ExitReason::Completed);
    assert_eq!(
        resumed.report.expect("completed").to_json(),
        expected,
        "repair-active resume diverged"
    );
}

#[test]
fn corrupt_snapshots_are_clean_errors_never_panics() {
    let dir = temp_dir("corrupt");
    let workload = live_workload(4);
    let config = serve_config(&dir, 8);
    let mut drain = config.clone();
    drain.drain_after = Some(3);
    Server::new(workload.clone(), drain)
        .expect("server builds")
        .run()
        .expect("produce a good snapshot");
    let good = std::fs::read(&config.checkpoint_path).expect("snapshot bytes");
    assert!(Snapshot::decode(&good).is_ok(), "sanity: snapshot is valid");

    let resume_with = |bytes: &[u8], tag: &str| -> CoreError {
        let path = dir.join(format!("{tag}.snapshot"));
        std::fs::write(&path, bytes).expect("write corrupt file");
        let mut cfg = config.clone();
        cfg.resume = Some(path);
        Server::new(workload.clone(), cfg)
            .expect("server builds")
            .run()
            .expect_err("corrupt snapshot must be rejected")
    };

    // Truncated file — every prefix must fail cleanly.
    for cut in [0, 7, 12, good.len() / 3, good.len() - 1] {
        let err = resume_with(&good[..cut], &format!("truncated-{cut}"));
        assert!(err.to_string().contains("snapshot"), "cut {cut}: {err}");
    }
    // Flipped CRC byte.
    let mut bad = good.clone();
    bad[9] ^= 0x40;
    let err = resume_with(&bad, "bad-crc");
    assert!(err.to_string().contains("CRC"), "{err}");
    // Flipped payload byte (caught by the CRC before decoding).
    let mut bad = good.clone();
    let mid = 12 + (good.len() - 12) / 2;
    bad[mid] ^= 0xFF;
    let err = resume_with(&bad, "bad-payload");
    assert!(err.to_string().contains("CRC"), "{err}");
    // Wrong magic and unsupported version.
    let mut bad = good.clone();
    bad[..4].copy_from_slice(b"NOPE");
    let err = resume_with(&bad, "bad-magic");
    assert!(err.to_string().contains("magic"), "{err}");
    let mut bad = good.clone();
    bad[4] = 0xEE;
    let err = resume_with(&bad, "bad-version");
    assert!(err.to_string().contains("version"), "{err}");

    // Shape mismatches: the snapshot is intact but belongs to another
    // run — wrong element count, then wrong seed.
    let mut cfg = config.clone();
    cfg.resume = Some(config.checkpoint_path.clone());
    let err = Server::new(live_workload(5), cfg)
        .expect("server builds")
        .run()
        .expect_err("element-count mismatch");
    assert!(
        matches!(err, CoreError::LengthMismatch { .. }),
        "wrong-N must be a length error, got: {err}"
    );
    let mut cfg = config.clone();
    cfg.resume = Some(config.checkpoint_path.clone());
    cfg.engine.seed = 999;
    let err = Server::new(workload, cfg)
        .expect("server builds")
        .run()
        .expect_err("seed mismatch");
    assert!(err.to_string().contains("does not match"), "{err}");

    // A missing file is an error too, not a fresh start.
    let mut cfg = config.clone();
    cfg.resume = Some(dir.join("does-not-exist.snapshot"));
    let err = Server::new(live_workload(4), cfg)
        .expect("server builds")
        .run()
        .expect_err("missing snapshot");
    assert!(err.to_string().contains("snapshot read"), "{err}");
}

#[test]
fn http_shutdown_drains_and_the_drained_run_resumes() {
    use std::time::Duration;

    let dir = temp_dir("http");
    let workload = live_workload(4);
    let mut config = serve_config(&dir, 30);
    config.listen = Some("127.0.0.1:0".to_string());
    config.epoch_throttle = Some(Duration::from_millis(2));
    let checkpoint = config.checkpoint_path.clone();

    let mut reference = config.clone();
    reference.listen = None;
    reference.epoch_throttle = None;
    let expected = reference_json(&workload, &reference);

    let server = Server::new(workload.clone(), config.clone())
        .expect("server builds")
        .with_recorder(freshen::obs::Recorder::enabled());
    let addr = server.local_addr().expect("bound");
    let probe = std::thread::spawn(move || {
        let (status, body) = freshen::serve::request(addr, "GET", "/status").expect("/status");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\": \"running\""), "{body}");
        std::thread::sleep(Duration::from_millis(10));
        let (status, _) = freshen::serve::request(addr, "POST", "/shutdown").expect("/shutdown");
        assert_eq!(status, 200);
    });
    let outcome = server.run().expect("served run");
    probe.join().expect("probe");
    assert_eq!(outcome.exit, ExitReason::Drained);
    assert!(outcome.epochs_run < 30, "shutdown landed mid-run");

    let mut resume = config;
    resume.listen = None;
    resume.epoch_throttle = None;
    resume.resume = Some(checkpoint);
    let resumed = Server::new(workload, resume)
        .expect("server builds")
        .run()
        .expect("resumed run");
    assert_eq!(resumed.report.expect("completed").to_json(), expected);
}
