//! Property-based tests (proptest) of the core invariants, spanning the
//! freshness model, the exact solver, the heuristics, and the projection.

use freshen::core::exec::Executor;
use freshen::core::freshness::{freshness_gradient, perceived_freshness, steady_state_freshness};
use freshen::core::schedule::{FixedOrderSchedule, ScheduleStream};
use freshen::engine::audit::LedgerAudit;
use freshen::engine::EngineConfig;
use freshen::engine::{PollDispatcher, PollSource};
use freshen::heuristics::partition::{PartitionCriterion, Partitioning};
use freshen::heuristics::{AllocationPolicy, HeuristicConfig, HeuristicScheduler};
use freshen::prelude::*;
use freshen::serve::{ExitReason, ServeWorkload, Server, Snapshot};
use freshen::solver::projected_gradient::project_weighted_simplex;
use proptest::prelude::*;

/// Build a serve configuration writing its checkpoint under `dir`.
fn serve_config_for(
    dir: &std::path::Path,
    tag: &str,
    epochs: usize,
    seed: u64,
) -> freshen::serve::ServeConfig {
    freshen::serve::ServeConfig {
        engine: EngineConfig {
            epochs,
            warmup_epochs: 1,
            failure_rate: 0.1,
            seed,
            ..EngineConfig::default()
        },
        checkpoint_path: dir.join(format!("{tag}.snapshot")),
        ..freshen::serve::ServeConfig::default()
    }
}

/// Strategy: a plausible problem with 2..=24 elements, optional sizes.
fn problem_strategy(with_sizes: bool) -> impl Strategy<Value = Problem> {
    (2usize..=24).prop_flat_map(move |n| {
        let rates = proptest::collection::vec(0.05f64..20.0, n);
        let weights = proptest::collection::vec(0.01f64..10.0, n);
        let sizes = if with_sizes {
            proptest::collection::vec(0.1f64..8.0, n).boxed()
        } else {
            Just(vec![1.0; n]).boxed()
        };
        let budget = 0.5f64..50.0;
        (rates, weights, sizes, budget).prop_map(|(r, w, s, b)| {
            Problem::builder()
                .change_rates(r)
                .access_weights(w)
                .sizes(s)
                .bandwidth(b)
                .build()
                .expect("generated problem is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- freshness function ------------------------------------------

    #[test]
    fn freshness_in_unit_interval(lam in 0.0f64..100.0, f in 0.0f64..100.0) {
        let fr = steady_state_freshness(lam, f);
        prop_assert!((0.0..=1.0).contains(&fr));
    }

    #[test]
    fn freshness_monotone_in_f(lam in 0.01f64..50.0, f in 0.01f64..50.0, df in 0.01f64..10.0) {
        prop_assert!(steady_state_freshness(lam, f + df) > steady_state_freshness(lam, f));
    }

    #[test]
    fn gradient_positive_and_decreasing(lam in 0.01f64..50.0, f in 0.01f64..50.0, df in 0.01f64..10.0) {
        let g1 = freshness_gradient(lam, f);
        let g2 = freshness_gradient(lam, f + df);
        prop_assert!(g1 > 0.0);
        prop_assert!(g2 < g1);
    }

    #[test]
    fn concavity_midpoint(lam in 0.01f64..20.0, a in 0.01f64..20.0, b in 0.01f64..20.0) {
        // F((a+b)/2) ≥ (F(a)+F(b))/2 for concave F.
        let mid = steady_state_freshness(lam, 0.5 * (a + b));
        let avg = 0.5 * (steady_state_freshness(lam, a) + steady_state_freshness(lam, b));
        prop_assert!(mid >= avg - 1e-12);
    }

    // ---- exact solver -------------------------------------------------

    #[test]
    fn solver_feasible_and_budget_tight(problem in problem_strategy(false)) {
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        prop_assert!(sol.frequencies.iter().all(|&f| f >= 0.0 && f.is_finite()));
        prop_assert!((sol.bandwidth_used - problem.bandwidth()).abs()
            < problem.bandwidth() * 1e-6);
    }

    #[test]
    fn solver_beats_uniform_allocation(problem in problem_strategy(false)) {
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        let uniform = vec![problem.bandwidth() / problem.len() as f64; problem.len()];
        let upf = problem.perceived_freshness(&uniform);
        prop_assert!(sol.perceived_freshness >= upf - 1e-9,
            "optimal {} vs uniform {}", sol.perceived_freshness, upf);
    }

    #[test]
    fn solver_kkt_equalized_marginals(problem in problem_strategy(false)) {
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        let mu = sol.multiplier.unwrap();
        for i in 0..problem.len() {
            let f = sol.frequencies[i];
            if f > 1e-6 {
                let marginal = problem.access_probs()[i]
                    * freshness_gradient(problem.change_rates()[i], f);
                prop_assert!((marginal - mu).abs() <= mu * 1e-3 + 1e-12,
                    "element {i}: marginal {marginal:e} vs mu {mu:e}");
            }
        }
    }

    #[test]
    fn solver_sized_feasible(problem in problem_strategy(true)) {
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        prop_assert!(problem.is_feasible(&sol.frequencies, 1e-6));
        prop_assert!((sol.bandwidth_used - problem.bandwidth()).abs()
            < problem.bandwidth() * 1e-6);
    }

    #[test]
    fn solver_scale_invariance(problem in problem_strategy(false), scale in 0.5f64..4.0) {
        // Scaling all access weights by a constant must not change the
        // optimal schedule (weights are normalized anyway) — exercised via
        // the weighted builder.
        let sol1 = LagrangeSolver::default().solve(&problem).unwrap();
        let scaled = Problem::builder()
            .change_rates(problem.change_rates().to_vec())
            .access_weights(problem.access_probs().iter().map(|p| p * scale).collect())
            .bandwidth(problem.bandwidth())
            .build()
            .unwrap();
        let sol2 = LagrangeSolver::default().solve(&scaled).unwrap();
        for (a, b) in sol1.frequencies.iter().zip(&sol2.frequencies) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn proportional_interest_gives_proportional_frequencies(
        n in 2usize..12, factor in 0.1f64..2.0, base in 0.1f64..5.0
    ) {
        // Generalized Table-1-row-(c) identity: pᵢ ∝ λᵢ ⇒ fᵢ = B·pᵢ.
        // The budget is tied to the total change volume so every optimal
        // frequency keeps λ/f ≤ 10: below that the marginal ∂F̄/∂f is
        // float-flat near 1/λ and the identity, while true analytically,
        // is not numerically recoverable (the objective itself is flat).
        let rates: Vec<f64> = (1..=n).map(|i| base * i as f64).collect();
        let budget = factor * rates.iter().sum::<f64>();
        let problem = Problem::builder()
            .change_rates(rates.clone())
            .access_weights(rates.clone())
            .bandwidth(budget)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        for (f, p) in sol.frequencies.iter().zip(problem.access_probs()) {
            prop_assert!((f - budget * p).abs() < 1e-4 * budget,
                "f {} vs B·p {}", f, budget * p);
        }
    }

    // ---- heuristics -----------------------------------------------------

    #[test]
    fn heuristic_never_beats_optimal(
        problem in problem_strategy(false),
        k in 1usize..8,
        iters in 0usize..4,
    ) {
        let opt = LagrangeSolver::default().solve(&problem).unwrap();
        let h = HeuristicScheduler::new(HeuristicConfig {
            num_partitions: k,
            kmeans_iterations: iters,
            ..Default::default()
        }).unwrap().solve(&problem).unwrap();
        prop_assert!(h.solution.perceived_freshness <= opt.perceived_freshness + 1e-7);
        prop_assert!(problem.is_feasible(&h.solution.frequencies, 1e-6));
    }

    #[test]
    fn heuristic_spends_full_budget(
        problem in problem_strategy(true),
        k in 1usize..8,
    ) {
        for allocation in [AllocationPolicy::FixedFrequency, AllocationPolicy::FixedBandwidth] {
            let h = HeuristicScheduler::new(HeuristicConfig {
                criterion: PartitionCriterion::PerceivedFreshnessPerSize,
                num_partitions: k,
                allocation,
                ..Default::default()
            }).unwrap().solve(&problem).unwrap();
            prop_assert!(
                (h.solution.bandwidth_used - problem.bandwidth()).abs()
                    < problem.bandwidth() * 1e-6,
                "{allocation:?}: used {} of {}", h.solution.bandwidth_used, problem.bandwidth()
            );
        }
    }

    #[test]
    fn partitioning_is_a_partition(
        problem in problem_strategy(false),
        k in 1usize..10,
    ) {
        for criterion in PartitionCriterion::CORE {
            let part = Partitioning::by_criterion(&problem, criterion, k, 1.0).unwrap();
            prop_assert_eq!(part.len(), problem.len());
            let counts = part.counts();
            prop_assert_eq!(counts.iter().sum::<usize>(), problem.len());
            // Contiguous-run construction: sizes differ by at most one run.
            let max = counts.iter().max().unwrap();
            prop_assert!(counts.iter().all(|c| *c <= *max));
        }
    }

    // ---- projection ------------------------------------------------------

    #[test]
    fn projection_feasible(
        n in 1usize..16,
        b in 0.1f64..20.0,
        seed_vals in proptest::collection::vec(-10.0f64..10.0, 16),
        weights in proptest::collection::vec(0.1f64..5.0, 16),
    ) {
        let mut y: Vec<f64> = seed_vals[..n].to_vec();
        let a: Vec<f64> = weights[..n].to_vec();
        project_weighted_simplex(&mut y, &a, b);
        let used: f64 = y.iter().zip(&a).map(|(&x, &w)| x * w).sum();
        prop_assert!((used - b).abs() < 1e-6 * b.max(1.0));
        prop_assert!(y.iter().all(|&x| x >= 0.0));
    }

    // ---- schedules --------------------------------------------------------

    #[test]
    fn schedule_counts_track_frequencies(
        freqs in proptest::collection::vec(0.0f64..8.0, 1..12),
        horizon in 0.5f64..20.0,
    ) {
        let schedule = FixedOrderSchedule::build(&freqs, horizon);
        let counts = schedule.counts(freqs.len());
        for (i, (&count, &f)) in counts.iter().zip(&freqs).enumerate() {
            let expected = f * horizon;
            prop_assert!((count as f64 - expected).abs() <= 1.0 + 1e-9,
                "element {i}: {count} ops vs f·H = {expected}");
        }
        // Ops sorted and inside the horizon.
        for w in schedule.ops().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        prop_assert!(schedule.ops().iter().all(|o| o.time >= 0.0 && o.time < horizon));
    }

    #[test]
    fn schedule_stream_equals_materialized(
        freqs in proptest::collection::vec(0.0f64..5.0, 1..10),
        horizon in 0.5f64..10.0,
    ) {
        let materialized = FixedOrderSchedule::build(&freqs, horizon);
        let streamed: Vec<_> = ScheduleStream::new(&freqs, horizon).collect();
        prop_assert_eq!(materialized.len(), streamed.len());
        for (a, b) in materialized.ops().iter().zip(&streamed) {
            prop_assert!((a.time - b.time).abs() < 1e-12);
            prop_assert_eq!(a.element, b.element);
        }
    }

    // ---- synchronization policies ------------------------------------------

    #[test]
    fn fixed_order_law_dominates_poisson_law(lam in 0.01f64..50.0, f in 0.01f64..50.0) {
        use freshen::prelude::SyncPolicy;
        prop_assert!(SyncPolicy::FixedOrder.freshness(lam, f)
            > SyncPolicy::Poisson.freshness(lam, f));
    }

    #[test]
    fn poisson_solver_feasible_and_kkt(problem in problem_strategy(false)) {
        use freshen::prelude::SyncPolicy;
        let solver = LagrangeSolver { policy: SyncPolicy::Poisson, ..Default::default() };
        let sol = solver.solve(&problem).unwrap();
        prop_assert!(problem.is_feasible(&sol.frequencies, 1e-6));
        let mu = sol.multiplier.unwrap();
        for i in 0..problem.len() {
            let f = sol.frequencies[i];
            if f > 1e-6 {
                let marginal = problem.access_probs()[i]
                    * SyncPolicy::Poisson.gradient(problem.change_rates()[i], f);
                prop_assert!((marginal - mu).abs() <= mu * 1e-3 + 1e-12);
            }
        }
    }

    #[test]
    fn fixed_optimum_dominates_poisson_optimum_property(problem in problem_strategy(false)) {
        use freshen::prelude::SyncPolicy;
        let fixed = LagrangeSolver::default().solve(&problem).unwrap();
        let poisson = LagrangeSolver { policy: SyncPolicy::Poisson, ..Default::default() }
            .solve(&problem).unwrap();
        // Each optimum is scored under its own law; the fixed-order law is
        // pointwise larger, so its optimum must be at least as good.
        prop_assert!(fixed.perceived_freshness >= poisson.perceived_freshness - 1e-9);
    }

    // ---- robustness under extreme magnitudes --------------------------------

    #[test]
    fn solver_survives_wild_magnitudes(
        n in 2usize..10,
        rate_exp in proptest::collection::vec(-5i32..6, 10),
        weight_exp in proptest::collection::vec(-4i32..4, 10),
        budget_exp in -3i32..5,
    ) {
        // Rates spanning 11 orders of magnitude, budgets spanning 8: the
        // solver must stay finite, feasible, and budget-tight.
        let rates: Vec<f64> = rate_exp[..n].iter().map(|&e| 10f64.powi(e)).collect();
        let weights: Vec<f64> = weight_exp[..n].iter().map(|&e| 10f64.powi(e)).collect();
        let budget = 10f64.powi(budget_exp);
        let problem = Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .bandwidth(budget)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        prop_assert!(sol.frequencies.iter().all(|f| f.is_finite() && *f >= 0.0));
        prop_assert!((sol.bandwidth_used - budget).abs() < budget * 1e-6);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&sol.perceived_freshness));
    }

    // ---- verification layer -------------------------------------------------

    #[test]
    fn exact_solutions_pass_the_kkt_audit(problem in problem_strategy(true)) {
        // The bisection's own stopping tolerance bounds how tightly random
        // problems equalize marginals, so the property uses a 1e-3 spread
        // (matching `solver_kkt_equalized_marginals`); the strict 1e-6
        // profile is pinned on deterministic problems below.
        let audit = SolutionAudit {
            spread_tol: 1e-3,
            slack_tol: 1e-3,
            budget_tol: 1e-6,
            ..Default::default()
        };
        for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
            let solver = LagrangeSolver { policy, ..Default::default() };
            let sol = solver.solve(&problem).unwrap();
            let report = audit.check(&problem, &sol, policy).unwrap();
            prop_assert!(report.is_clean(), "{policy:?}: {}", report.to_json());
        }
    }

    #[test]
    fn dispatcher_ledger_balances(
        n in 1usize..8,
        failure_rate in 0.0f64..0.9,
        budget_factor in 0.2f64..1.5,
        max_backlog in 1.0f64..6.0,
        max_retries in 0u32..4,
        freq_scale in 0.1f64..4.0,
        seed in 0u64..1000,
    ) {
        // The conservation law must hold for *any* dispatcher setting:
        // saturated or idle, flaky or reliable, big or small backlog cap.
        let config = EngineConfig {
            failure_rate,
            budget_factor,
            max_backlog,
            max_retries,
            seed,
            ..EngineConfig::default()
        };
        let freqs: Vec<f64> = (0..n).map(|i| freq_scale * (1.0 + i as f64 * 0.5)).collect();
        let priorities: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let bandwidth = n as f64;
        let mut dispatcher = PollDispatcher::new(n, bandwidth, &config).unwrap();
        let mut ledger = LedgerAudit::new();
        let mut source = EverChanging;
        for epoch in 0..6 {
            let credit_in = dispatcher.total_credit();
            let outcome = dispatcher.run_epoch(
                epoch,
                epoch as f64,
                1.0,
                &freqs,
                &priorities,
                &mut source,
                &Recorder::disabled(),
            ).unwrap();
            let record = ledger.record(
                epoch,
                credit_in,
                &freqs,
                1.0,
                &outcome,
                dispatcher.total_credit(),
                dispatcher.min_credit(),
            );
            prop_assert!(!record.violated, "epoch {epoch}: {record:?}");
        }
        prop_assert!(ledger.is_clean());
    }

    // ---- perceived freshness metric ---------------------------------------

    #[test]
    fn pf_bounded_by_weights(
        problem in problem_strategy(false),
        fscale in 0.0f64..10.0,
    ) {
        let freqs: Vec<f64> = problem.change_rates().iter().map(|&l| l * fscale).collect();
        let pf = perceived_freshness(problem.access_probs(), problem.change_rates(), &freqs);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&pf));
    }

    // ---- parallel execution layer ------------------------------------------

    #[test]
    fn pool_solver_matches_serial(
        problem in problem_strategy(true),
        workers_idx in 0usize..2,
    ) {
        // Chunk boundaries depend only on problem size, so a pool solve
        // must reproduce the serial schedule exactly — not just within
        // tolerance.
        let workers = [2usize, 4][workers_idx];
        let serial = LagrangeSolver::default().solve(&problem).unwrap();
        let pooled = LagrangeSolver::default()
            .with_executor(Executor::thread_pool(workers))
            .solve(&problem)
            .unwrap();
        prop_assert_eq!(&serial.frequencies, &pooled.frequencies);
        prop_assert!(
            (serial.perceived_freshness - pooled.perceived_freshness).abs() < 1e-9,
            "serial {} vs {workers}-worker {}", serial.perceived_freshness,
            pooled.perceived_freshness
        );
    }

    #[test]
    fn pool_heuristic_matches_serial(
        problem in problem_strategy(true),
        k in 1usize..8,
        iters in 0usize..4,
        workers_idx in 0usize..2,
    ) {
        let workers = [2usize, 4][workers_idx];
        let config = HeuristicConfig {
            num_partitions: k,
            kmeans_iterations: iters,
            ..Default::default()
        };
        let serial = HeuristicScheduler::new(config.clone()).unwrap()
            .solve(&problem).unwrap();
        let pooled = HeuristicScheduler::new(config).unwrap()
            .with_executor(Executor::thread_pool(workers))
            .solve(&problem).unwrap();
        prop_assert_eq!(&serial.solution.frequencies, &pooled.solution.frequencies);
        prop_assert!(
            (serial.solution.perceived_freshness
                - pooled.solution.perceived_freshness).abs() < 1e-9
        );
    }

    #[test]
    fn pool_runs_are_deterministic(
        problem in problem_strategy(true),
        workers in 2usize..5,
    ) {
        // Two runs at the same worker count must agree bit-for-bit.
        let solve = || LagrangeSolver::default()
            .with_executor(Executor::thread_pool(workers))
            .solve(&problem)
            .unwrap();
        let a = solve();
        let b = solve();
        prop_assert_eq!(&a.frequencies, &b.frequencies);
        prop_assert_eq!(
            a.perceived_freshness.to_bits(),
            b.perceived_freshness.to_bits()
        );
        prop_assert_eq!(a.bandwidth_used.to_bits(), b.bandwidth_used.to_bits());
    }

    #[test]
    fn sharded_solve_matches_global(
        problem in problem_strategy(true),
        shards in 1usize..9,
    ) {
        // Two-level equivalence: every shard shares the global multiplier
        // at the optimum, so any shard count recovers the global PF.
        let global = LagrangeSolver::default().solve(&problem).unwrap();
        let sharded = LagrangeSolver::default()
            .with_executor(Executor::thread_pool(4))
            .solve_sharded(&problem, shards)
            .unwrap();
        prop_assert!(
            (global.perceived_freshness - sharded.perceived_freshness).abs() < 1e-6,
            "global {} vs {shards}-shard {}", global.perceived_freshness,
            sharded.perceived_freshness
        );
        prop_assert!(problem.is_feasible(&sharded.frequencies, 1e-6));
    }

    // ---- incremental KKT repair ---------------------------------------

    #[test]
    fn repair_matches_full_resolve_property(
        problem in problem_strategy(true),
        stride in 1usize..6,
        tilt in 1.05f64..3.0,
    ) {
        // Drift a strided subset of the change rates, then repair the old
        // optimum: the patched schedule must match a from-scratch re-solve
        // of the drifted problem to 1e-9 in PF and clear the strict
        // certificate.
        let solver = LagrangeSolver::default();
        let before = solver.solve(&problem).unwrap();
        let (after, touched) = tilt_rates(&problem, stride, tilt);
        let repaired = solver.repair(&after, &before, &touched).unwrap().solution;
        let full = solver.solve(&after).unwrap();
        prop_assert!(
            (repaired.perceived_freshness - full.perceived_freshness).abs() < 1e-9,
            "repair {} vs full {}", repaired.perceived_freshness, full.perceived_freshness
        );
        let report = SolutionAudit::default()
            .check(&after, &repaired, solver.policy)
            .unwrap();
        prop_assert!(report.is_clean(), "{}", report.to_json());
    }

    // ---- serve: checkpoint/restore -----------------------------------

    #[test]
    fn checkpoint_restore_resumes_byte_identically(
        problem in problem_strategy(false),
        split in 1usize..5,
        seed in 0u64..(1 << 16),
    ) {
        let dir = std::env::temp_dir().join("freshen-properties-serve");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let workload = ServeWorkload::Live { problem, access_rate: 90.0 };
        let config = serve_config_for(&dir, &format!("case-{seed}-{split}"), split + 3, seed);
        let reference = Server::new(workload.clone(), config.clone())
            .expect("server builds")
            .run()
            .expect("uninterrupted run")
            .report
            .expect("completed")
            .to_json();

        let mut drain = config.clone();
        drain.drain_after = Some(split);
        Server::new(workload.clone(), drain)
            .expect("server builds")
            .run()
            .expect("drained leg");

        // The snapshot codec is an exact identity: decode(encode(s)) == s
        // and re-encoding reproduces the on-disk bytes.
        let bytes = std::fs::read(&config.checkpoint_path).expect("snapshot bytes");
        let snapshot = Snapshot::decode(&bytes).expect("valid snapshot");
        prop_assert_eq!(&snapshot.encode(), &bytes);

        let mut resume = config.clone();
        resume.resume = Some(config.checkpoint_path.clone());
        let resumed = Server::new(workload, resume)
            .expect("server builds")
            .run()
            .expect("resumed leg");
        prop_assert_eq!(resumed.exit, ExitReason::Completed);
        prop_assert_eq!(resumed.report.expect("completed").to_json(), reference);
    }
}

// ---- deterministic fallbacks for the parallel properties -----------------
//
// The proptest cases above shrink across random problems; these fixed-seed
// variants pin the same invariants on a deterministic family of problems so
// they hold even where proptest is unavailable.

/// Poll source whose objects always changed — the worst case for credit
/// accounting (every successful poll does estimator-visible work).
struct EverChanging;

impl PollSource for EverChanging {
    fn poll(&mut self, _element: usize, _time: f64) -> bool {
        true
    }
}

/// Deterministic problem family: striped rates, harmonic weights, mixed
/// sizes — same construction idea as the scaling benchmark.
fn fixed_problem(n: usize) -> Problem {
    let rates: Vec<f64> = (0..n).map(|i| 0.1 + (i % 13) as f64 * 0.4).collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let sizes: Vec<f64> = (0..n).map(|i| 0.25 + (i % 5) as f64 * 0.5).collect();
    Problem::builder()
        .change_rates(rates)
        .access_weights(weights)
        .sizes(sizes)
        .bandwidth(n as f64 / 3.0)
        .build()
        .expect("fixed problem builds")
}

/// Tilt every `stride`-th change rate by `factor`, returning the drifted
/// problem and the touched index set.
fn tilt_rates(problem: &Problem, stride: usize, factor: f64) -> (Problem, Vec<usize>) {
    let mut rates = problem.change_rates().to_vec();
    let mut touched = Vec::new();
    for (i, r) in rates.iter_mut().enumerate() {
        if i % stride == 0 {
            *r *= factor;
            touched.push(i);
        }
    }
    let after = Problem::builder()
        .change_rates(rates)
        .access_probs(problem.access_probs().to_vec())
        .sizes(problem.sizes().to_vec())
        .bandwidth(problem.bandwidth())
        .build()
        .expect("tilted problem builds");
    (after, touched)
}

#[test]
fn repair_matches_full_resolve_across_subset_sizes() {
    // Fixed-seed pin of `repair_matches_full_resolve_property`: drift
    // subsets of one element, ~1%, ~10%, and 100% of N, and require the
    // repaired schedule to match the full re-solve within 1e-9 PF *and*
    // pass the strict KKT certificate after every repair.
    let n = 400;
    let problem = fixed_problem(n);
    let solver = LagrangeSolver::default();
    let before = solver.solve(&problem).unwrap();
    for (stride, label) in [(n, "single"), (97, "1%"), (11, "10%"), (1, "100%")] {
        let (after, touched) = tilt_rates(&problem, stride, 1.6);
        let repaired = solver
            .repair(&after, &before, &touched)
            .unwrap_or_else(|e| panic!("{label}: repair failed: {e}"))
            .solution;
        let full = solver.solve(&after).unwrap();
        assert!(
            (repaired.perceived_freshness - full.perceived_freshness).abs() < 1e-9,
            "{label} ({} touched): repair PF {} vs full {}",
            touched.len(),
            repaired.perceived_freshness,
            full.perceived_freshness
        );
        let report = SolutionAudit::default()
            .check(&after, &repaired, solver.policy)
            .unwrap();
        assert!(
            report.is_clean(),
            "{label}: certificate failed: {}",
            report.to_json()
        );
    }
}

#[test]
fn dispatcher_queue_reuse_has_no_steady_state_churn() {
    // Satellite regression: the calendar queue is built once and re-binned
    // in place, so after the first epoch sizes it, fifty steady-state
    // epochs must not move the allocation counter — neither the queue's
    // own `grows()` tally nor the `engine.queue_grows` obs counter.
    let config = EngineConfig {
        failure_rate: 0.2,
        max_retries: 2,
        seed: 17,
        ..EngineConfig::default()
    };
    let freqs = [2.5, 1.5, 1.0, 0.5];
    let priorities = [4.0, 3.0, 2.0, 1.0];
    let recorder = Recorder::enabled();
    let mut dispatcher = PollDispatcher::new(4, 4.0, &config).unwrap();
    let mut source = EverChanging;
    let mut run = |dispatcher: &mut PollDispatcher, epoch: usize| {
        dispatcher
            .run_epoch(
                epoch,
                epoch as f64,
                1.0,
                &freqs,
                &priorities,
                &mut source,
                &recorder,
            )
            .unwrap();
    };
    run(&mut dispatcher, 0);
    let grows_after_first = dispatcher.queue_grows();
    let counter_after_first = recorder.counter_value("engine.queue_grows").unwrap_or(0);
    assert!(grows_after_first > 0, "first epoch sizes the queue");
    for epoch in 1..=50 {
        run(&mut dispatcher, epoch);
    }
    assert_eq!(
        dispatcher.queue_grows(),
        grows_after_first,
        "steady-state epochs must not reallocate queue storage"
    );
    assert_eq!(
        recorder.counter_value("engine.queue_grows").unwrap_or(0),
        counter_after_first,
        "obs allocation counter must stay flat after warm-up"
    );
}

#[test]
fn pool_solver_matches_serial_on_fixed_seeds() {
    for n in [3usize, 17, 120, 999] {
        let problem = fixed_problem(n);
        let serial = LagrangeSolver::default().solve(&problem).unwrap();
        for workers in [2usize, 4] {
            let pooled = LagrangeSolver::default()
                .with_executor(Executor::thread_pool(workers))
                .solve(&problem)
                .unwrap();
            assert_eq!(
                serial.frequencies, pooled.frequencies,
                "n={n} workers={workers}: pool schedule must be identical"
            );
            assert!(
                (serial.perceived_freshness - pooled.perceived_freshness).abs() < 1e-9,
                "n={n} workers={workers}: PF drifted"
            );
        }
    }
}

#[test]
fn pool_heuristic_matches_serial_on_fixed_seeds() {
    for (n, k) in [(24usize, 3usize), (120, 6), (999, 8)] {
        let problem = fixed_problem(n);
        let config = HeuristicConfig {
            num_partitions: k,
            ..Default::default()
        };
        let serial = HeuristicScheduler::new(config.clone())
            .unwrap()
            .solve(&problem)
            .unwrap();
        for workers in [2usize, 4] {
            let pooled = HeuristicScheduler::new(config.clone())
                .unwrap()
                .with_executor(Executor::thread_pool(workers))
                .solve(&problem)
                .unwrap();
            assert_eq!(
                serial.solution.frequencies, pooled.solution.frequencies,
                "n={n} k={k} workers={workers}: heuristic schedule must be identical"
            );
            assert!(
                (serial.solution.perceived_freshness - pooled.solution.perceived_freshness).abs()
                    < 1e-9
            );
        }
    }
}

#[test]
fn pool_runs_are_deterministic_on_fixed_seeds() {
    let problem = fixed_problem(500);
    for workers in [2usize, 3, 4] {
        let solve = || {
            LagrangeSolver::default()
                .with_executor(Executor::thread_pool(workers))
                .solve(&problem)
                .unwrap()
        };
        let a = solve();
        let b = solve();
        assert_eq!(a.frequencies, b.frequencies, "workers={workers}");
        assert_eq!(
            a.perceived_freshness.to_bits(),
            b.perceived_freshness.to_bits()
        );
        assert_eq!(a.bandwidth_used.to_bits(), b.bandwidth_used.to_bits());
    }
}

#[test]
fn audit_certifies_fixed_problems_strictly() {
    // On the deterministic family the exact solver must clear the strict
    // certificate (spread ≤ 1e-6, budget residual ≤ 1e-8·B), under both
    // synchronization laws.
    for n in [3usize, 17, 120] {
        let problem = fixed_problem(n);
        for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
            let solver = LagrangeSolver {
                policy,
                ..Default::default()
            };
            let sol = solver.solve(&problem).unwrap();
            let report = SolutionAudit::default()
                .check(&problem, &sol, policy)
                .unwrap();
            assert!(report.is_clean(), "n={n} {policy:?}: {}", report.to_json());
        }
    }
}

#[test]
fn dispatcher_ledger_balances_on_fixed_seeds() {
    // Fixed-seed pin of `dispatcher_ledger_balances`, covering the
    // saturated-with-failures corner that historically leaked credit.
    for (failure_rate, budget_factor, max_retries) in
        [(0.0, 1.0, 2u32), (0.5, 0.5, 0), (0.35, 0.7, 3)]
    {
        let config = EngineConfig {
            failure_rate,
            budget_factor,
            max_retries,
            max_backlog: 2.0,
            seed: 11,
            ..EngineConfig::default()
        };
        let freqs = [2.5, 1.5, 1.0];
        let mut dispatcher = PollDispatcher::new(3, 3.0, &config).unwrap();
        let mut ledger = LedgerAudit::new();
        let mut source = EverChanging;
        for epoch in 0..8 {
            let credit_in = dispatcher.total_credit();
            let outcome = dispatcher
                .run_epoch(
                    epoch,
                    epoch as f64,
                    1.0,
                    &freqs,
                    &[3.0, 2.0, 1.0],
                    &mut source,
                    &Recorder::disabled(),
                )
                .unwrap();
            ledger.record(
                epoch,
                credit_in,
                &freqs,
                1.0,
                &outcome,
                dispatcher.total_credit(),
                dispatcher.min_credit(),
            );
        }
        assert!(
            ledger.is_clean(),
            "failure={failure_rate} factor={budget_factor}: {:?}",
            ledger.epochs()
        );
    }
}

#[test]
fn sharded_solve_matches_global_on_fixed_seeds() {
    for n in [17usize, 120, 999] {
        let problem = fixed_problem(n);
        let global = LagrangeSolver::default().solve(&problem).unwrap();
        for shards in [1usize, 4, 32] {
            let sharded = LagrangeSolver::default()
                .with_executor(Executor::thread_pool(4))
                .solve_sharded(&problem, shards)
                .unwrap();
            assert!(
                (global.perceived_freshness - sharded.perceived_freshness).abs() < 1e-6,
                "n={n} shards={shards}: global {} vs sharded {}",
                global.perceived_freshness,
                sharded.perceived_freshness
            );
            assert!(problem.is_feasible(&sharded.frequencies, 1e-6));
        }
    }
}

#[test]
fn checkpoint_restore_roundtrips_on_fixed_seeds() {
    let dir = std::env::temp_dir().join("freshen-properties-serve-fixed");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (n, split, seed) in [(3usize, 1usize, 5u64), (9, 2, 77), (20, 4, 4242)] {
        let workload = ServeWorkload::Live {
            problem: fixed_problem(n),
            access_rate: 90.0,
        };
        let config = serve_config_for(&dir, &format!("fixed-{n}-{split}"), split + 3, seed);
        let reference = Server::new(workload.clone(), config.clone())
            .expect("server builds")
            .run()
            .expect("uninterrupted run")
            .report
            .expect("completed")
            .to_json();

        let mut drain = config.clone();
        drain.drain_after = Some(split);
        Server::new(workload.clone(), drain)
            .expect("server builds")
            .run()
            .expect("drained leg");

        let bytes = std::fs::read(&config.checkpoint_path).expect("snapshot bytes");
        let snapshot = Snapshot::decode(&bytes).expect("valid snapshot");
        assert_eq!(
            snapshot.encode(),
            bytes,
            "n={n} split={split}: codec must be an exact identity"
        );

        let mut resume = config.clone();
        resume.resume = Some(config.checkpoint_path.clone());
        let resumed = Server::new(workload, resume)
            .expect("server builds")
            .run()
            .expect("resumed leg");
        assert_eq!(resumed.exit, ExitReason::Completed);
        assert_eq!(
            resumed.report.expect("completed").to_json(),
            reference,
            "n={n} split={split}: resumed report diverged"
        );
    }
}

// ---- cost-aware objective + convergent estimators ------------------------

/// The fixed problem family with a heterogeneous per-poll cost column.
fn costed_fixed_problem(n: usize) -> Problem {
    let base = fixed_problem(n);
    Problem::builder()
        .change_rates(base.change_rates().to_vec())
        .access_probs(base.access_probs().to_vec())
        .sizes(base.sizes().to_vec())
        .costs((0..n).map(|i| 0.5 + (i % 7) as f64 * 0.3).collect())
        .bandwidth(base.bandwidth())
        .build()
        .expect("costed problem builds")
}

fn cost_spend(problem: &Problem, frequencies: &[f64]) -> f64 {
    let costs = problem.poll_costs().expect("cost column present");
    frequencies.iter().zip(costs).map(|(&f, &c)| f * c).sum()
}

#[test]
fn zero_levy_solve_is_byte_identical_to_plain() {
    // A zero cost weight must not merely approximate the cost-blind
    // solver — it must reproduce it bit for bit, so enabling the cost
    // path can never perturb existing schedules.
    for n in [3, 40, 400] {
        let plain_problem = fixed_problem(n);
        let costed_problem = costed_fixed_problem(n);
        let plain = LagrangeSolver::default().solve(&plain_problem).unwrap();
        let levied = LagrangeSolver::default()
            .with_cost_weight(0.0)
            .solve(&costed_problem)
            .unwrap();
        for (i, (a, b)) in plain
            .frequencies
            .iter()
            .zip(&levied.frequencies)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "n={n}, element {i}: {a} != {b}");
        }
        assert_eq!(plain.multiplier, levied.multiplier, "n={n}");
        assert_eq!(levied.cost_multiplier, None, "n={n}");
    }
}

#[test]
fn cost_budget_solve_never_overdraws_and_certifies() {
    // Across caps from deep to mild, the dual bisection must return a
    // schedule spending at most the cap, and the returned levy must
    // certify under the strict cost-adjusted KKT conditions.
    let n = 200;
    let problem = costed_fixed_problem(n);
    let solver = LagrangeSolver::default();
    let unconstrained = solver.solve(&problem).unwrap();
    let spend0 = cost_spend(&problem, &unconstrained.frequencies);
    assert!(spend0 > 0.0, "unconstrained schedule must poll");
    for frac in [0.1, 0.3, 0.5, 0.8, 0.95] {
        let cap = frac * spend0;
        let sol = solver.solve_cost_budget(&problem, cap).unwrap();
        let used = cost_spend(&problem, &sol.frequencies);
        assert!(
            used <= cap * (1.0 + 1e-9),
            "frac={frac}: spend {used} exceeds cap {cap}"
        );
        let gamma = sol.cost_multiplier.unwrap_or(0.0);
        let report = SolutionAudit::default()
            .check_with_cost(&problem, &sol, solver.policy, gamma)
            .unwrap();
        assert!(
            report.is_clean(),
            "frac={frac}: certificate failed: {}",
            report.to_json()
        );
    }
}

#[test]
fn lln_and_sa_converge_where_ewma_plateaus() {
    // On a stationary fixed-seed stream the convergent estimators' error
    // keeps shrinking while constant-gain EWMA sits on its variance
    // floor: after a long run, per-element LLN and SA estimates must be
    // within 10% of truth and both must beat EWMA's aggregate error.
    use freshen::core::estimate::{EwmaRateEstimator, LlnRateEstimator, SaRateEstimator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = 8;
    let interval = 0.4;
    let polls = 6000;
    let rates: Vec<f64> = (0..n)
        .map(|i| 0.3 * 1.414f64.powi((i % 5) as i32))
        .collect();
    let mut ewma = EwmaRateEstimator::new(n, 0.1, 1.0).unwrap();
    let mut lln = LlnRateEstimator::new(n).unwrap();
    let mut sa = SaRateEstimator::new(n, 0.5, 0.6, 1.0).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..polls {
        for (i, &lambda) in rates.iter().enumerate() {
            let changed = rng.gen::<f64>() < 1.0 - (-lambda * interval).exp();
            ewma.observe(i, interval, changed).unwrap();
            lln.observe(i, interval, changed).unwrap();
            sa.observe(i, interval, changed).unwrap();
        }
    }
    let (mut ewma_err, mut lln_err, mut sa_err) = (0.0f64, 0.0f64, 0.0f64);
    for (i, &lambda) in rates.iter().enumerate() {
        let lln_rel = (lln.rate(i, 1.0) - lambda).abs() / lambda;
        let sa_rel = (sa.rate(i) - lambda).abs() / lambda;
        // The SA bound is looser: its residual noise scales with 1/λ in
        // relative terms, so low-rate elements sit higher above truth.
        assert!(lln_rel < 0.15, "element {i}: LLN off by {lln_rel:.3}");
        assert!(sa_rel < 0.25, "element {i}: SA off by {sa_rel:.3}");
        ewma_err += (ewma.rate(i) - lambda).abs() / lambda;
        lln_err += lln_rel;
        sa_err += sa_rel;
    }
    assert!(
        lln_err < ewma_err && sa_err < ewma_err,
        "convergent estimators must beat the EWMA floor \
         (ewma {ewma_err:.3}, lln {lln_err:.3}, sa {sa_err:.3})"
    );
}

// ---- tiered budget-split invariants --------------------------------------

/// Check one tiered solution against the no-overdraw contract: every
/// tier's spend within its budget, and (for split solves) the spends
/// covering the requested total.
fn assert_no_overdraw(name: &str, solution: &freshen::solver::TieredSolution, total: Option<f64>) {
    for (node, (&spend, &budget)) in solution
        .node_spend
        .iter()
        .zip(&solution.budgets)
        .enumerate()
    {
        assert!(
            spend <= budget + 1e-6 * budget.max(1.0),
            "{name}: tier {node} overdraws its budget ({spend} > {budget})"
        );
        assert!(spend >= 0.0, "{name}: tier {node} negative spend {spend}");
    }
    if let Some(total) = total {
        let spent: f64 = solution.node_spend.iter().sum();
        assert!(
            (spent - total).abs() <= 1e-6 * total,
            "{name}: split spends {spent} of the requested {total}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tiered_split_never_overdraws_any_tier_property(
        n in 4usize..=12,
        seed in 0u64..1000,
        scale in 0.2f64..3.0,
        parallel in proptest::bool::ANY,
    ) {
        let scenario = if parallel {
            freshen::workload::tiers::parallel_relay(n, 2, seed).expect("scenario")
        } else {
            freshen::workload::tiers::two_tier_chain(n, seed).expect("scenario")
        };
        let total = scale * scenario.total_budget;
        let solution = TieredSolver::default()
            .solve_split(&scenario.topology, &scenario.problem, total)
            .expect("split solve");
        for (node, (&spend, &budget)) in solution
            .node_spend
            .iter()
            .zip(&solution.budgets)
            .enumerate()
        {
            prop_assert!(
                spend <= budget + 1e-6 * budget.max(1.0),
                "tier {} overdraws ({} > {})", node, spend, budget
            );
        }
        let spent: f64 = solution.node_spend.iter().sum();
        prop_assert!((spent - total).abs() <= 1e-6 * total);
    }
}

#[test]
fn tiered_split_never_overdraws_any_tier() {
    // Fixed-seed pin of the proptest above (and the variant that runs
    // where proptest is unavailable): sweep both generated deployments
    // across sizes, seeds, and budget scales; neither a fixed-budget
    // tiered solve nor a budget-split solve may overdraw any tier.
    for (n, seed) in [(5usize, 1u64), (8, 7), (12, 42)] {
        for scale in [0.25, 1.0, 2.5] {
            let chain = freshen::workload::tiers::two_tier_chain(n, seed).expect("chain");
            let striped = freshen::workload::tiers::parallel_relay(n, 2, seed).expect("striped");
            for scenario in [chain, striped] {
                let solver = TieredSolver::default();
                let fixed = solver
                    .solve(&scenario.topology, &scenario.problem)
                    .expect("fixed-budget solve");
                assert_no_overdraw(scenario.name, &fixed, None);
                let total = scale * scenario.total_budget;
                let split = solver
                    .solve_split(&scenario.topology, &scenario.problem, total)
                    .expect("split solve");
                assert_no_overdraw(scenario.name, &split, Some(total));
            }
        }
    }
}
