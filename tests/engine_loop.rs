//! The online runtime end to end: determinism of trace replay, and the
//! headline drift-gating claim — near-oracle realized perceived freshness
//! on a drifting workload at a small fraction of the oracle's re-solves.

use freshen::engine::{
    DriftingAccessStream, Engine, EngineConfig, EngineReport, LivePollSource, ReplayPollSource,
    ResolvePolicy,
};
use freshen::prelude::*;
use freshen::workload::trace::{AccessRecord, PollRecord};

/// A synthetic recorded trace: deterministic arithmetic, no RNG, so the
/// replay-determinism check cannot be confounded by generator state.
fn recorded_trace(n: usize) -> (Vec<AccessRecord>, Vec<PollRecord>) {
    let mut accesses = Vec::new();
    for k in 0..1500 {
        accesses.push(AccessRecord {
            time: k as f64 * 0.01,
            element: (k * k + k / 3) % n,
        });
    }
    let mut polls = Vec::new();
    for k in 0..300 {
        polls.push(PollRecord {
            time: k as f64 * 0.05,
            element: k % n,
            changed: (k * 7 + 1) % 5 < 2,
        });
    }
    (accesses, polls)
}

fn replay_once(config: &EngineConfig, n: usize, bandwidth: f64) -> EngineReport {
    let (accesses, polls) = recorded_trace(n);
    let prior = Problem::builder()
        .change_rates(vec![1.0; n])
        .access_weights(vec![1.0; n])
        .bandwidth(bandwidth)
        .build()
        .unwrap();
    let mut source = ReplayPollSource::new(n, &polls).unwrap();
    Engine::new(&prior, config.clone())
        .unwrap()
        .with_recorder(Recorder::enabled())
        .run(accesses.into_iter().map(Ok), &mut source)
        .unwrap()
}

#[test]
fn trace_replay_with_same_seed_is_byte_identical() {
    let config = EngineConfig {
        epochs: 15,
        warmup_epochs: 3,
        failure_rate: 0.15,
        seed: 99,
        ..EngineConfig::default()
    };
    let first = replay_once(&config, 5, 10.0);
    let second = replay_once(&config, 5, 10.0);
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "same trace + same seed must reproduce the report byte for byte"
    );
    // Sanity: the run actually exercised the interesting paths.
    assert!(first.polls_failed > 0, "failure injection engaged");
    assert!(first.accesses == 1500, "every access ingested");

    // A different seed changes the injected failures, hence the bytes.
    let reseeded = replay_once(
        &EngineConfig {
            seed: 100,
            ..config
        },
        5,
        10.0,
    );
    assert_ne!(first.to_json(), reseeded.to_json());
}

/// The §9 drifting workload: interest profile flips mid-run, change rates
/// spread geometrically, engine prior is uniform (it must learn both).
struct Drifting {
    n: usize,
    epochs: usize,
}

impl Drifting {
    fn run(&self, policy: ResolvePolicy) -> EngineReport {
        let n = self.n;
        let true_rates: Vec<f64> = (0..n).map(|i| 0.25 * 1.6f64.powi((i % 7) as i32)).collect();
        let mut before: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let sum: f64 = before.iter().sum();
        before.iter_mut().for_each(|p| *p /= sum);
        let mut after = before.clone();
        after.reverse();

        let config = EngineConfig {
            epochs: self.epochs,
            warmup_epochs: self.epochs / 10,
            drift_threshold: 0.12,
            resolve_policy: policy,
            failure_rate: 0.05,
            seed: 7,
            ..EngineConfig::default()
        };
        let horizon = config.horizon();
        let accesses = DriftingAccessStream::new(
            &before,
            &after,
            200.0,
            horizon / 2.0,
            horizon,
            config.seed ^ 0xACCE55,
        );
        let mut source = LivePollSource::new(&true_rates, config.seed ^ 0x50_11, horizon).unwrap();
        let prior = Problem::builder()
            .change_rates(vec![1.0; n])
            .access_weights(vec![1.0; n])
            .bandwidth(n as f64 / 2.0)
            .build()
            .unwrap();
        Engine::new(&prior, config)
            .unwrap()
            .run(accesses, &mut source)
            .unwrap()
    }
}

#[test]
fn drift_gated_engine_tracks_oracle_with_few_resolves() {
    let workload = Drifting { n: 20, epochs: 30 };
    let gated = workload.run(ResolvePolicy::DriftGated);
    let oracle = workload.run(ResolvePolicy::EveryEpoch);

    // The oracle re-solves after every epoch, by definition.
    assert_eq!(oracle.resolve_fraction(), 1.0);
    assert!(oracle.realized_pf > 0.0);

    // Headline claim 1: realized PF within 5% of the oracle.
    assert!(
        gated.realized_pf >= 0.95 * oracle.realized_pf,
        "gated PF {} vs oracle PF {} (ratio {:.4})",
        gated.realized_pf,
        oracle.realized_pf,
        gated.realized_pf / oracle.realized_pf
    );

    // Headline claim 2: at most a quarter of the oracle's re-solves.
    let gated_resolves = gated.epochs.iter().filter(|e| e.resolved).count();
    let oracle_resolves = oracle.epochs.iter().filter(|e| e.resolved).count();
    assert!(
        4 * gated_resolves <= oracle_resolves,
        "gated re-solved {gated_resolves}/{oracle_resolves} epochs"
    );

    // The gate did fire at least once: the mid-run interest flip is real
    // drift that must be caught, not ignored.
    assert!(
        gated_resolves >= 1,
        "the profile flip must trigger a re-solve"
    );
    // And the drift signal itself is visible in the report.
    let max_drift = gated.epochs.iter().map(|e| e.drift).fold(0.0, f64::max);
    assert!(
        max_drift > 0.12,
        "recorded drift should cross the threshold"
    );
}
