//! `promlint`: validate a Prometheus text exposition read from stdin.
//!
//! Exit status 0 when the input passes [`freshen_obs::prometheus::
//! validate_exposition`], 1 with the first violation on stderr otherwise.
//! CI pipes a live `/metrics?format=prometheus` response through this so
//! the served exposition is held to the same rules as the unit tests.

use std::io::Read;

fn main() {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("promlint: cannot read stdin: {e}");
        std::process::exit(2);
    }
    match freshen_obs::prometheus::validate_exposition(&input) {
        Ok(()) => {
            println!("promlint: OK ({} lines)", input.lines().count());
        }
        Err(e) => {
            eprintln!("promlint: {e}");
            std::process::exit(1);
        }
    }
}
