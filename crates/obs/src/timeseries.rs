//! Fixed-capacity per-epoch telemetry ring with power-of-two downsampling.
//!
//! The engine pushes one [`EpochSample`] per epoch. The ring holds at most
//! `capacity` samples; when it fills, every other retained sample is evicted
//! and the admission stride doubles, so a week-long run keeps a bounded,
//! evenly spaced timeline instead of either growing without bound or losing
//! its history. Memory is `capacity × size_of::<EpochSample>()`, allocated
//! once.
//!
//! Samples carry only deterministic run state (PF, ages, credit, counts)
//! plus a wall-clock request-latency summary annotated after the fact by the
//! serve loop. The ring itself is deterministic: which epochs are retained
//! depends only on epoch indices, never on timing, so a resumed run rebuilds
//! the identical ring.

use crate::json::{push_f64, push_u64};

/// Default ring capacity used by the engine (rounded to a power of two).
pub const DEFAULT_SERIES_CAPACITY: usize = 1024;

/// One epoch's telemetry snapshot.
///
/// All fields except `requests`/`request_p95_us` derive from deterministic
/// engine state. The two request fields are wall-clock serve-loop
/// annotations and default to zero; they never feed back into the run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochSample {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Realized perceived freshness for this epoch.
    pub realized_pf: f64,
    /// Jeffreys drift score between live estimates and the solve baseline.
    pub drift: f64,
    /// Median per-element age (time since last poll) at the epoch boundary.
    pub age_p50: f64,
    /// 95th-percentile per-element age at the epoch boundary.
    pub age_p95: f64,
    /// Maximum per-element age at the epoch boundary.
    pub age_max: f64,
    /// Total dispatcher credit retained across the epoch boundary.
    pub credit: f64,
    /// Cumulative exact re-solves so far.
    pub resolves: u64,
    /// Cumulative drift-gated solve skips so far.
    pub skips: u64,
    /// Credit shed by the dispatcher this epoch (backlog-cap overflow).
    pub shed: f64,
    /// Poll attempts dispatched this epoch.
    pub dispatched: u64,
    /// Access events observed this epoch.
    pub accesses: u64,
    /// Accesses served stale this epoch.
    pub stale_served: u64,
    /// SLO health at this epoch (`Health` as u8; 0 when SLOs are unarmed).
    pub health: u8,
    /// Control-plane requests handled during this epoch (serve annotation).
    pub requests: u64,
    /// p95 control-plane request latency in µs (serve annotation).
    pub request_p95_us: f64,
}

/// Portable ring state for checkpoint/restore.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeriesState {
    /// Admission stride: only epochs divisible by it are retained.
    pub stride: u64,
    /// Retained samples, oldest first.
    pub samples: Vec<EpochSample>,
}

/// The downsampling ring. See the module docs for the eviction policy.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    stride: u64,
    samples: Vec<EpochSample>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(DEFAULT_SERIES_CAPACITY)
    }
}

impl TimeSeries {
    /// A ring holding at most `capacity` samples (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        TimeSeries {
            capacity,
            stride: 1,
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Offer one epoch's sample. Samples whose epoch is not a multiple of
    /// the current stride are discarded; a full ring halves itself and
    /// doubles the stride first.
    pub fn push(&mut self, sample: EpochSample) {
        if !sample.epoch.is_multiple_of(self.stride) {
            return;
        }
        if self.samples.len() >= self.capacity {
            self.stride *= 2;
            let stride = self.stride;
            self.samples.retain(|s| s.epoch.is_multiple_of(stride));
            if !sample.epoch.is_multiple_of(stride) {
                return;
            }
        }
        self.samples.push(sample);
    }

    /// Attach a request-latency summary to the retained sample for `epoch`,
    /// if that epoch survived downsampling. Serve-loop only; reports never
    /// read these fields.
    pub fn annotate_requests(&mut self, epoch: u64, requests: u64, p95_us: f64) {
        if let Some(s) = self.samples.iter_mut().rev().find(|s| s.epoch == epoch) {
            s.requests = requests;
            s.request_p95_us = p95_us;
        }
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// Current admission stride (power of two, starts at 1).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Snapshot the ring for checkpointing.
    pub fn export(&self) -> TimeSeriesState {
        TimeSeriesState {
            stride: self.stride,
            samples: self.samples.clone(),
        }
    }

    /// Rebuild a ring from checkpointed state, validating the invariants
    /// the push path maintains.
    pub fn from_state(
        capacity: usize,
        state: &TimeSeriesState,
    ) -> Result<TimeSeries, &'static str> {
        let capacity = capacity.max(2).next_power_of_two();
        if state.stride == 0 || !state.stride.is_power_of_two() {
            return Err("time-series stride must be a power of two");
        }
        if state.samples.len() > capacity {
            return Err("time-series sample count exceeds capacity");
        }
        if state.samples.windows(2).any(|w| w[0].epoch >= w[1].epoch) {
            return Err("time-series epochs must be strictly increasing");
        }
        if state.samples.iter().any(|s| s.epoch % state.stride != 0) {
            return Err("time-series sample off the admission stride");
        }
        Ok(TimeSeries {
            capacity,
            stride: state.stride,
            samples: state.samples.clone(),
        })
    }

    /// Render a window of the series as JSON: samples with `epoch >= since`,
    /// keeping only the `limit` most recent when `limit > 0`.
    pub fn to_json(&self, since: u64, limit: usize) -> String {
        let eligible: Vec<&EpochSample> =
            self.samples.iter().filter(|s| s.epoch >= since).collect();
        let skip = if limit > 0 && eligible.len() > limit {
            eligible.len() - limit
        } else {
            0
        };
        let mut out = String::with_capacity(256);
        out.push_str("{\"stride\": ");
        push_u64(&mut out, self.stride);
        out.push_str(", \"retained\": ");
        push_u64(&mut out, self.samples.len() as u64);
        out.push_str(", \"samples\": [");
        for (i, s) in eligible.into_iter().skip(skip).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            push_sample(&mut out, s);
        }
        out.push_str("\n]}\n");
        out
    }
}

fn push_sample(out: &mut String, s: &EpochSample) {
    out.push_str("{\"epoch\": ");
    push_u64(out, s.epoch);
    for (key, v) in [
        ("realized_pf", s.realized_pf),
        ("drift", s.drift),
        ("age_p50", s.age_p50),
        ("age_p95", s.age_p95),
        ("age_max", s.age_max),
        ("credit", s.credit),
        ("shed", s.shed),
        ("request_p95_us", s.request_p95_us),
    ] {
        out.push_str(", \"");
        out.push_str(key);
        out.push_str("\": ");
        push_f64(out, v);
    }
    for (key, v) in [
        ("resolves", s.resolves),
        ("skips", s.skips),
        ("dispatched", s.dispatched),
        ("accesses", s.accesses),
        ("stale_served", s.stale_served),
        ("health", s.health as u64),
        ("requests", s.requests),
    ] {
        out.push_str(", \"");
        out.push_str(key);
        out.push_str("\": ");
        push_u64(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64) -> EpochSample {
        EpochSample {
            epoch,
            realized_pf: 0.9,
            ..EpochSample::default()
        }
    }

    #[test]
    fn fills_without_downsampling_below_capacity() {
        let mut ts = TimeSeries::new(8);
        for e in 0..8 {
            ts.push(sample(e));
        }
        assert_eq!(ts.len(), 8);
        assert_eq!(ts.stride(), 1);
        let epochs: Vec<u64> = ts.samples().iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn doubles_stride_when_full_and_stays_bounded() {
        let mut ts = TimeSeries::new(8);
        for e in 0..1000 {
            ts.push(sample(e));
        }
        assert!(ts.len() <= 8, "ring overflowed: {}", ts.len());
        assert!(ts.stride().is_power_of_two());
        assert!(
            ts.stride() >= 128,
            "1000 epochs into 8 slots needs stride ≥ 128"
        );
        // Retained epochs are stride-aligned and strictly increasing.
        let stride = ts.stride();
        assert!(ts.samples().iter().all(|s| s.epoch % stride == 0));
        assert!(ts.samples().windows(2).all(|w| w[0].epoch < w[1].epoch));
        // Epoch 0 is always retained: the timeline keeps its origin.
        assert_eq!(ts.samples()[0].epoch, 0);
    }

    #[test]
    fn retention_depends_only_on_epoch_indices() {
        // Two rings fed the same epochs retain identical timelines —
        // the property kill/resume parity rests on.
        let mut a = TimeSeries::new(16);
        let mut b = TimeSeries::new(16);
        for e in 0..500 {
            a.push(sample(e));
        }
        for e in 0..300 {
            b.push(sample(e));
        }
        let restored = TimeSeries::from_state(16, &b.export()).unwrap();
        let mut b = restored;
        for e in 300..500 {
            b.push(sample(e));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn from_state_rejects_corrupt_rings() {
        let good = {
            let mut ts = TimeSeries::new(4);
            for e in 0..3 {
                ts.push(sample(e));
            }
            ts.export()
        };
        assert!(TimeSeries::from_state(4, &good).is_ok());

        let mut bad = good.clone();
        bad.stride = 3;
        assert!(TimeSeries::from_state(4, &bad).is_err(), "non-power stride");

        let mut bad = good.clone();
        bad.samples.swap(0, 2);
        assert!(TimeSeries::from_state(4, &bad).is_err(), "unsorted epochs");

        let mut bad = good.clone();
        bad.stride = 2;
        assert!(
            TimeSeries::from_state(4, &bad).is_err(),
            "odd epochs off a stride-2 grid"
        );

        let mut bad = good;
        bad.samples.extend((3..20).map(sample));
        assert!(TimeSeries::from_state(4, &bad).is_err(), "over capacity");
    }

    #[test]
    fn annotation_targets_the_right_epoch_and_tolerates_evicted_ones() {
        let mut ts = TimeSeries::new(4);
        for e in 0..4 {
            ts.push(sample(e));
        }
        ts.annotate_requests(3, 17, 250.0);
        let s = ts.samples().iter().find(|s| s.epoch == 3).unwrap();
        assert_eq!(s.requests, 17);
        assert_eq!(s.request_p95_us, 250.0);
        // Annotating an epoch that was never retained is a no-op.
        ts.annotate_requests(999, 1, 1.0);
        assert!(ts.samples().iter().all(|s| s.epoch != 999));
    }

    #[test]
    fn json_window_filters_and_limits() {
        let mut ts = TimeSeries::new(16);
        for e in 0..10 {
            ts.push(sample(e));
        }
        let all = ts.to_json(0, 0);
        assert!(all.contains("\"epoch\": 0"));
        assert!(all.contains("\"epoch\": 9"));
        let tail = ts.to_json(5, 2);
        assert!(!tail.contains("\"epoch\": 4"), "{tail}");
        assert!(!tail.contains("\"epoch\": 7"), "limit keeps newest: {tail}");
        assert!(tail.contains("\"epoch\": 8"));
        assert!(tail.contains("\"epoch\": 9"));
        assert!(tail.contains("\"stride\": 1"));
    }
}
