//! `freshen-obs`: minimal-dependency instrumentation for the freshen
//! workspace.
//!
//! Everything hangs off a [`Recorder`], a cheap cloneable handle that is
//! either *enabled* (backed by a shared registry) or *disabled* (every
//! operation is a single branch on an `Option`). Instrumented code holds a
//! `Recorder` — or metric handles pre-registered from one — and never checks
//! an "is observability on?" flag itself:
//!
//! ```
//! use freshen_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! let events = rec.counter("events_total");
//! {
//!     let mut span = rec.span("event_loop");
//!     span.arg("scenario", "table2");
//!     events.add(3);
//! }
//! rec.gauge("pf").set(0.97);
//! let metrics = rec.metrics_json().unwrap();
//! assert!(metrics.contains("\"events_total\": 3"));
//! let trace = rec.chrome_trace_json().unwrap();
//! assert!(trace.contains("\"event_loop\""));
//! ```
//!
//! Design constraints (see DESIGN.md §2 and §7):
//!
//! * **Minimal external dependencies.** The sole dependency is
//!   `parking_lot`, whose non-poisoning uncontended-fast mutex guards the
//!   trace buffer on the span-drop hot path; exporters emit JSON by hand
//!   (the private `json` module). Embedding `freshen-obs` barely widens
//!   the dependency surface of a workspace crate.
//! * **Disabled means free.** A disabled `Recorder` and its handles are
//!   `Option::None` all the way down; hot loops pay one predictable branch.
//! * **Bounded memory.** The trace buffer and journal have hard capacities
//!   and count drops instead of growing with run length.

mod export;
pub mod journal;
mod json;
pub mod metrics;
pub mod prometheus;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use journal::{Journal, JournalEntry};
pub use metrics::{count_buckets, duration_us_buckets, Counter, Gauge, Histogram};
pub use slo::{Health, SloAlert, SloConfig, SloEngine, SloState};
pub use timeseries::{EpochSample, TimeSeries, TimeSeriesState, DEFAULT_SERIES_CAPACITY};
pub use trace::{SpanGuard, TraceBuffer, TraceEvent};

use metrics::HistogramCore;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default cap on buffered span/instant events (~a few MB worst case).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;
/// Default cap on retained journal entries.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8_192;

/// Shared state behind an enabled [`Recorder`].
#[derive(Debug)]
pub(crate) struct RecorderInner {
    pub(crate) epoch: Instant,
    pub(crate) counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    pub(crate) histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCore>>>,
    pub(crate) trace: Arc<TraceBuffer>,
    pub(crate) journal: Journal,
}

/// Handle to the instrumentation registry; `Default` is the disabled no-op.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// A recorder that discards everything. Handles minted from it are
    /// no-ops; `metrics_json`/`chrome_trace_json` return `None`.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder with default buffer capacities.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY, DEFAULT_JOURNAL_CAPACITY)
    }

    /// A live recorder with explicit trace/journal capacities.
    pub fn with_capacity(trace_capacity: usize, journal_capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                trace: Arc::new(TraceBuffer::new(trace_capacity)),
                journal: Journal::new(journal_capacity),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) the counter `name` and return a handle to it.
    /// Registration takes a lock; cache the handle outside hot loops.
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                let cell = map
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter::live(cell.clone())
            }
        }
    }

    /// Register (or look up) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match &self.inner {
            None => Gauge::noop(),
            Some(inner) => {
                let mut map = inner.gauges.lock().unwrap();
                let cell = map
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(f64::NAN.to_bits())));
                Gauge::live(cell.clone())
            }
        }
    }

    /// Register (or look up) the histogram `name`. `bounds` are the upper
    /// bucket edges and are only consulted on first registration.
    pub fn histogram(&self, name: &'static str, bounds: &[f64]) -> Histogram {
        match &self.inner {
            None => Histogram::noop(),
            Some(inner) => {
                let mut map = inner.histograms.lock().unwrap();
                let core = map
                    .entry(name)
                    .or_insert_with(|| Arc::new(HistogramCore::new(bounds)));
                Histogram::live(core.clone())
            }
        }
    }

    /// Start a span; the returned guard records a complete trace event on
    /// drop. Bind it to a named variable (`let _span = ...`), not `_`.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => SpanGuard::live(inner.trace.clone(), name, inner.epoch),
        }
    }

    /// Append a structured entry to the bounded journal.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, &dyn std::fmt::Display)]) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            inner.journal.push(JournalEntry {
                name,
                ts_us,
                fields: fields.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            });
        }
    }

    /// Read back a counter's current value (for report aggregation).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let map = inner.counters.lock().unwrap();
        map.get(name)
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Read back a gauge's current value.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let map = inner.gauges.lock().unwrap();
        map.get(name)
            .map(|c| f64::from_bits(c.load(std::sync::atomic::Ordering::Relaxed)))
            .filter(|v| v.is_finite())
    }

    /// Seconds since the recorder was created.
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.inner.as_ref().map(|i| i.epoch.elapsed().as_secs_f64())
    }

    /// Serialize the full metrics snapshot as a JSON object.
    pub fn metrics_json(&self) -> Option<String> {
        self.inner.as_ref().map(|i| export::metrics_json(i))
    }

    /// Serialize buffered spans and journal entries as a Chrome-trace JSON
    /// array (loads in Perfetto / `chrome://tracing`).
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.inner.as_ref().map(|i| export::chrome_trace_json(i))
    }

    /// Serialize the metrics snapshot in the Prometheus text exposition
    /// format (see [`prometheus`] for the family layout).
    pub fn metrics_prometheus(&self) -> Option<String> {
        self.inner.as_ref().map(|i| prometheus::render(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny recursive-descent JSON well-formedness check so the hand-rolled
    /// exporters are validated without a JSON dependency.
    fn check_json(input: &str) {
        struct P<'a>(&'a [u8], usize);
        impl P<'_> {
            fn ws(&mut self) {
                while self.1 < self.0.len() && self.0[self.1].is_ascii_whitespace() {
                    self.1 += 1;
                }
            }
            fn peek(&mut self) -> u8 {
                self.ws();
                *self.0.get(self.1).unwrap_or(&0)
            }
            fn eat(&mut self, c: u8) {
                assert_eq!(
                    self.peek(),
                    c,
                    "expected {:?} at byte {}",
                    c as char,
                    self.1
                );
                self.1 += 1;
            }
            fn value(&mut self) {
                match self.peek() {
                    b'{' => {
                        self.eat(b'{');
                        if self.peek() != b'}' {
                            loop {
                                self.string();
                                self.eat(b':');
                                self.value();
                                if self.peek() == b',' {
                                    self.eat(b',');
                                } else {
                                    break;
                                }
                            }
                        }
                        self.eat(b'}');
                    }
                    b'[' => {
                        self.eat(b'[');
                        if self.peek() != b']' {
                            loop {
                                self.value();
                                if self.peek() == b',' {
                                    self.eat(b',');
                                } else {
                                    break;
                                }
                            }
                        }
                        self.eat(b']');
                    }
                    b'"' => self.string(),
                    b't' => self.lit("true"),
                    b'f' => self.lit("false"),
                    b'n' => self.lit("null"),
                    _ => self.number(),
                }
            }
            fn string(&mut self) {
                self.eat(b'"');
                while self.0[self.1] != b'"' {
                    if self.0[self.1] == b'\\' {
                        self.1 += 1;
                    }
                    self.1 += 1;
                }
                self.1 += 1;
            }
            fn lit(&mut self, s: &str) {
                self.ws();
                assert_eq!(&self.0[self.1..self.1 + s.len()], s.as_bytes());
                self.1 += s.len();
            }
            fn number(&mut self) {
                self.ws();
                let start = self.1;
                while self.1 < self.0.len()
                    && matches!(
                        self.0[self.1],
                        b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                    )
                {
                    self.1 += 1;
                }
                assert!(self.1 > start, "expected number at byte {}", start);
            }
        }
        let mut p = P(input.as_bytes(), 0);
        p.value();
        p.ws();
        assert_eq!(p.1, input.len(), "trailing bytes after JSON value");
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter("c").inc();
        rec.gauge("g").set(1.0);
        rec.histogram("h", &count_buckets()).observe(1.0);
        rec.event("e", &[("k", &1)]);
        let _span = rec.span("s");
        assert!(rec.metrics_json().is_none());
        assert!(rec.chrome_trace_json().is_none());
        assert!(rec.counter_value("c").is_none());
    }

    #[test]
    fn handles_share_state_across_clones() {
        let rec = Recorder::enabled();
        let a = rec.counter("shared");
        let b = rec.clone().counter("shared");
        a.add(2);
        b.add(3);
        assert_eq!(rec.counter_value("shared"), Some(5));
    }

    #[test]
    fn metrics_snapshot_is_valid_json_with_expected_keys() {
        let rec = Recorder::enabled();
        rec.counter("events_total").add(42);
        rec.gauge("pf").set(0.93);
        let h = rec.histogram("queue_depth", &count_buckets());
        for i in 0..100 {
            h.observe((i % 10) as f64);
        }
        rec.event("dispatch", &[("kind", &"update"), ("t", &1.25)]);
        let json = rec.metrics_json().unwrap();
        check_json(&json);
        for key in [
            "\"events_total\": 42",
            "\"pf\": 0.93",
            "\"queue_depth\"",
            "\"p50\"",
            "\"p95\"",
            "\"p99\"",
            "\"journal\"",
            "\"dispatch\"",
            "\"elapsed_seconds\"",
        ] {
            assert!(json.contains(key), "snapshot missing {key}: {json}");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_and_preserves_span_nesting() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        rec.event("milestone", &[("iter", &3)]);
        let json = rec.chrome_trace_json().unwrap();
        check_json(&json);
        assert!(json.contains("\"outer\""));
        assert!(json.contains("\"inner\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        // Inner drops first so it serializes first; outer must contain it.
        let inner_pos = json.find("\"inner\"").unwrap();
        let outer_pos = json.find("\"outer\"").unwrap();
        assert!(
            inner_pos < outer_pos,
            "inner span should be recorded before outer"
        );
    }

    #[test]
    fn empty_recorder_exports_are_valid_json() {
        let rec = Recorder::enabled();
        check_json(&rec.metrics_json().unwrap());
        check_json(&rec.chrome_trace_json().unwrap());
    }

    #[test]
    fn journal_overflow_is_counted_in_every_export_path() {
        let rec = Recorder::with_capacity(DEFAULT_TRACE_CAPACITY, 4);
        for i in 0..10u64 {
            rec.event("tick", &[("i", &i)]);
        }
        rec.histogram("h", &count_buckets()).observe(f64::NAN);

        let metrics = rec.metrics_json().unwrap();
        check_json(&metrics);
        assert!(metrics.contains("\"journal_dropped\": 6"), "{metrics}");
        assert!(metrics.contains("\"dropped\": 1"), "{metrics}");

        let trace = rec.chrome_trace_json().unwrap();
        check_json(&trace);
        assert!(trace.contains("\"obs.dropped\""), "{trace}");
        assert!(trace.contains("\"journal_dropped\": \"6\""), "{trace}");
        assert!(trace.contains("\"histogram_dropped\": \"1\""), "{trace}");
        assert!(trace.contains("\"trace_dropped\": \"0\""), "{trace}");

        let prom = rec.metrics_prometheus().unwrap();
        crate::prometheus::validate_exposition(&prom).unwrap();
        assert!(prom.contains("freshen_journal_dropped 6"), "{prom}");
        assert!(prom.contains("h_dropped 1"), "{prom}");
    }

    #[test]
    fn concurrent_recording_through_one_recorder() {
        let rec = Recorder::enabled();
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    let c = rec.counter("hits");
                    let h = rec.histogram("work", &count_buckets());
                    for i in 0..1000 {
                        let _span = rec.span("worker");
                        c.inc();
                        h.observe((t * 1000 + i) as f64 % 17.0);
                    }
                });
            }
        });
        assert_eq!(rec.counter_value("hits"), Some(4000));
        check_json(&rec.metrics_json().unwrap());
        check_json(&rec.chrome_trace_json().unwrap());
    }
}
