//! The two exporters: a metrics snapshot (single JSON object) and a
//! Chrome-trace / Perfetto event array.
//!
//! Chrome-trace format reference: each event is an object with `name`,
//! `cat`, `ph` ("X" = complete span, "i" = instant), `ts`/`dur` in
//! microseconds, and `pid`/`tid` track coordinates. A top-level JSON array
//! of such events loads directly in Perfetto (ui.perfetto.dev) and
//! `chrome://tracing`.

use crate::json::{push_f64, push_str_literal, push_u64};
use crate::RecorderInner;

/// Quantiles surfaced for every histogram in the metrics snapshot.
const QUANTILES: [(&str, f64); 3] = [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)];

pub(crate) fn metrics_json(inner: &RecorderInner) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"elapsed_seconds\": ");
    push_f64(&mut out, inner.epoch.elapsed().as_secs_f64());

    out.push_str(",\n  \"counters\": {");
    let counters = inner.counters.lock().unwrap();
    for (i, (name, cell)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_str_literal(&mut out, name);
        out.push_str(": ");
        push_u64(&mut out, cell.load(std::sync::atomic::Ordering::Relaxed));
    }
    drop(counters);
    out.push_str("\n  },\n  \"gauges\": {");

    let gauges = inner.gauges.lock().unwrap();
    for (i, (name, cell)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_str_literal(&mut out, name);
        out.push_str(": ");
        push_f64(
            &mut out,
            f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed)),
        );
    }
    drop(gauges);
    out.push_str("\n  },\n  \"histograms\": {");

    let histograms = inner.histograms.lock().unwrap();
    for (i, (name, core)) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_str_literal(&mut out, name);
        out.push_str(": {\"count\": ");
        push_u64(&mut out, core.count());
        out.push_str(", \"dropped\": ");
        push_u64(&mut out, core.dropped());
        out.push_str(", \"sum\": ");
        push_f64(&mut out, core.sum());
        out.push_str(", \"min\": ");
        push_f64(&mut out, core.min().unwrap_or(f64::NAN));
        out.push_str(", \"max\": ");
        push_f64(&mut out, core.max().unwrap_or(f64::NAN));
        for (label, q) in QUANTILES {
            out.push_str(", \"");
            out.push_str(label);
            out.push_str("\": ");
            push_f64(&mut out, core.quantile(q).unwrap_or(f64::NAN));
        }
        out.push_str(", \"buckets\": [");
        for (j, (le, cum)) in core.cumulative_buckets().into_iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"le\": ");
            if le.is_finite() {
                push_f64(&mut out, le);
            } else {
                out.push_str("\"+inf\"");
            }
            out.push_str(", \"count\": ");
            push_u64(&mut out, cum);
            out.push('}');
        }
        out.push_str("]}");
    }
    drop(histograms);

    out.push_str("\n  },\n  \"journal\": [");
    for (i, entry) in inner.journal.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": ");
        push_str_literal(&mut out, entry.name);
        out.push_str(", \"ts_us\": ");
        push_u64(&mut out, entry.ts_us);
        for (key, value) in &entry.fields {
            out.push_str(", ");
            push_str_literal(&mut out, key);
            out.push_str(": ");
            push_str_literal(&mut out, value);
        }
        out.push('}');
    }
    out.push_str("\n  ],\n  \"journal_dropped\": ");
    push_u64(&mut out, inner.journal.dropped());
    out.push_str(",\n  \"trace_dropped\": ");
    push_u64(&mut out, inner.trace.dropped());
    out.push_str("\n}\n");
    out
}

pub(crate) fn chrome_trace_json(inner: &RecorderInner) -> String {
    let mut out = String::with_capacity(1024);
    out.push('[');
    let mut first = true;

    for event in inner.trace.snapshot() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\": ");
        push_str_literal(&mut out, event.name);
        out.push_str(", \"cat\": \"span\", \"ph\": ");
        out.push_str(if event.dur_us.is_some() {
            "\"X\""
        } else {
            "\"i\""
        });
        out.push_str(", \"ts\": ");
        push_u64(&mut out, event.ts_us);
        if let Some(dur) = event.dur_us {
            out.push_str(", \"dur\": ");
            push_u64(&mut out, dur);
        } else {
            out.push_str(", \"s\": \"t\"");
        }
        out.push_str(", \"pid\": 1, \"tid\": ");
        push_u64(&mut out, event.tid);
        push_args(&mut out, &event.args);
        out.push('}');
    }

    // Journal entries become instant events on a dedicated track so dispatch
    // anomalies and solver milestones line up against the span timeline.
    for entry in inner.journal.snapshot() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\": ");
        push_str_literal(&mut out, entry.name);
        out.push_str(", \"cat\": \"journal\", \"ph\": \"i\", \"ts\": ");
        push_u64(&mut out, entry.ts_us);
        out.push_str(", \"s\": \"t\", \"pid\": 1, \"tid\": 999");
        push_args(&mut out, &entry.fields);
        out.push('}');
    }

    // A trailing metadata event makes telemetry loss visible in the trace
    // itself: a capped buffer silently shortening the timeline would
    // otherwise read as "nothing happened".
    let histogram_dropped: u64 = {
        let histograms = inner.histograms.lock().unwrap();
        histograms.values().map(|core| core.dropped()).sum()
    };
    if !first {
        out.push(',');
    }
    out.push_str("\n{\"name\": \"obs.dropped\", \"cat\": \"meta\", \"ph\": \"i\", \"ts\": ");
    push_u64(&mut out, inner.epoch.elapsed().as_micros() as u64);
    out.push_str(", \"s\": \"t\", \"pid\": 1, \"tid\": 999");
    push_args(
        &mut out,
        &[
            ("trace_dropped", inner.trace.dropped().to_string()),
            ("journal_dropped", inner.journal.dropped().to_string()),
            ("histogram_dropped", histogram_dropped.to_string()),
        ],
    );
    out.push('}');

    out.push_str("\n]\n");
    out
}

fn push_args(out: &mut String, args: &[(&'static str, String)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(", \"args\": {");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_literal(out, key);
        out.push_str(": ");
        push_str_literal(out, value);
    }
    out.push('}');
}
