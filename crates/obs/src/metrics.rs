//! Metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! All three are lock-free on the hot path (a handful of relaxed atomic
//! operations); registration goes through a mutex-guarded map but is meant
//! to happen once per metric, with the returned handle cached by the caller.
//! Every handle has a no-op flavour (`Counter::noop()` etc.) whose operations
//! cost a single branch, so instrumented code never needs `if enabled` guards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Add `v` to an f64 stored as bits in an `AtomicU64`.
fn f64_fetch_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Lower `cell` to `v` if `v` is smaller (f64 bits; `reverse` flips to max).
fn f64_fetch_extreme(cell: &AtomicU64, v: f64, want_max: bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let seen = f64::from_bits(cur);
        let better = if want_max { v > seen } else { v < seen };
        if !better {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(next) => cur = next,
        }
    }
}

/// Monotonically increasing u64 counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Counter(Some(cell))
    }

    /// Handle that discards every operation.
    pub fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value; 0 for a no-op handle.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins f64 gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Gauge(Some(cell))
    }

    pub fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value; NaN for a no-op handle.
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(f64::NAN, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Shared state behind a [`Histogram`] handle.
#[derive(Debug)]
pub struct HistogramCore {
    /// Ascending upper bucket bounds; an implicit +inf bucket follows.
    bounds: Box<[f64]>,
    /// `bounds.len() + 1` buckets: bucket `i` counts values `<= bounds[i]`,
    /// the final bucket counts the overflow.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    dropped: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        // total_cmp, not partial_cmp().unwrap(): the bounds are pre-filtered
        // to finite values here, but the same NaN-poisoned-sort pattern took
        // the whole recorder down from `observe` — keep the sort total so
        // this constructor can never join that bug class again.
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds: sorted.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            dropped: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        if !v.is_finite() {
            // A NaN/inf sample (e.g. a 0/0 rate) must neither poison the
            // quantile math nor vanish silently: count the drop.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        f64_fetch_add(&self.sum_bits, v);
        f64_fetch_extreme(&self.min_bits, v, false);
        f64_fetch_extreme(&self.max_bits, v, true);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Non-finite samples rejected at [`observe`](Histogram::observe).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Cumulative bucket snapshot as `(upper_bound, cumulative_count)` pairs,
    /// ending with the +inf bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation inside
    /// the bucket containing the target rank. Accuracy is bounded by bucket
    /// width; the estimate is clamped to the observed `[min, max]` range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let (min, max) = (self.min()?, self.max()?);
        let target = q * total as f64;
        let mut prev_cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let here = bucket.load(Ordering::Relaxed);
            let cum = prev_cum + here;
            if (cum as f64) >= target && here > 0 {
                let lo = if i == 0 { min } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    max
                };
                let frac = (target - prev_cum as f64) / here as f64;
                let est = lo + (hi - lo) * frac;
                return Some(est.clamp(min, max));
            }
            prev_cum = cum;
        }
        Some(max)
    }
}

/// Fixed-bucket histogram with on-demand quantile estimation.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub(crate) fn live(core: Arc<HistogramCore>) -> Self {
        Histogram(Some(core))
    }

    pub fn noop() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count())
    }

    /// Non-finite samples rejected by this histogram; 0 for a no-op handle.
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.dropped())
    }

    pub fn sum(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.sum())
    }

    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.0.as_ref().and_then(|c| c.quantile(q))
    }
}

/// Exponential-ish default bounds suitable for "small count" distributions
/// such as queue depths or iteration counts.
pub fn count_buckets() -> Vec<f64> {
    vec![
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0,
    ]
}

/// Default bounds for durations measured in microseconds (1us .. ~16s).
pub fn duration_us_buckets() -> Vec<f64> {
    let mut out = Vec::new();
    let mut b = 1.0;
    while b <= 16_000_000.0 {
        out.push(b);
        b *= 4.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::live(Arc::new(AtomicU64::new(0)));
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::live(Arc::new(AtomicU64::new(0)));
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(3.0);
        assert!(g.get().is_nan());
        let h = Histogram::noop();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn histogram_quantiles_on_uniform_distribution() {
        // 1..=1000 with bounds every 50: interpolation should land within
        // one bucket width of the exact order statistic.
        let bounds: Vec<f64> = (1..=20).map(|i| (i * 50) as f64).collect();
        let h = Histogram::live(Arc::new(HistogramCore::new(&bounds)));
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        assert_eq!(h.count(), 1000);
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= 50.0,
                "q={q}: estimate {est} too far from {exact}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_on_two_point_distribution() {
        let h = Histogram::live(Arc::new(HistogramCore::new(&[1.0, 10.0, 100.0])));
        for _ in 0..90 {
            h.observe(1.0);
        }
        for _ in 0..10 {
            h.observe(100.0);
        }
        // p50 sits firmly in the mass at 1.0; p99 in the mass at 100.0.
        assert!(h.quantile(0.5).unwrap() <= 1.0 + 1e-9);
        assert!(h.quantile(0.99).unwrap() > 10.0);
        assert_eq!(h.quantile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn histogram_tracks_sum_min_max_and_overflow() {
        let core = Arc::new(HistogramCore::new(&[10.0]));
        let h = Histogram::live(core.clone());
        h.observe(5.0);
        h.observe(50.0); // overflow bucket
        h.observe(f64::NAN); // dropped
        assert_eq!(core.count(), 2);
        assert_eq!(core.dropped(), 1);
        assert_eq!(core.sum(), 55.0);
        assert_eq!(core.min(), Some(5.0));
        assert_eq!(core.max(), Some(50.0));
        let cum = core.cumulative_buckets();
        assert_eq!(cum, vec![(10.0, 1), (f64::INFINITY, 2)]);
    }

    /// Regression: a NaN sample (e.g. a 0/0 rate) used to poison the
    /// histogram and panic the quantile sort. It must be counted as
    /// dropped while quantiles keep working on the finite samples.
    #[test]
    fn nan_samples_are_dropped_and_quantiles_survive() {
        let h = Histogram::live(Arc::new(HistogramCore::new(&count_buckets())));
        for v in 1..=100 {
            h.observe(v as f64);
        }
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 100);
        assert_eq!(h.dropped(), 3);
        let p50 = h.quantile(0.5).expect("quantiles survive NaN input");
        assert!(p50.is_finite());
        assert!((1.0..=100.0).contains(&p50));
        assert!(h.quantile(0.99).unwrap().is_finite());
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Counter::live(Arc::new(AtomicU64::new(0)));
        let h = Histogram::live(Arc::new(HistogramCore::new(&count_buckets())));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe((i % 64) as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }
}
