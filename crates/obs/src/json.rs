//! Minimal JSON emission helpers.
//!
//! `freshen-obs` is std-only by design (DESIGN.md §7), so the two exporters
//! hand-roll their JSON through this module instead of pulling in serde.
//! Only what the exporters need is implemented: string escaping and finite
//! number formatting.

use std::fmt::Write;

/// Append `s` as a JSON string literal (quotes included) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number, mapping non-finite values to `null`
/// (JSON has no NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's default f64 Display is shortest-roundtrip, which is valid JSON.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `v` as a JSON integer.
pub fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
