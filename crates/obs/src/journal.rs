//! Bounded structured event journal.
//!
//! The journal captures discrete, low-rate happenings (solver outer
//! iterations, simulation dispatch anomalies, warm-start decisions) as named
//! entries with key/value fields. It is a ring with a hard capacity: once
//! full, new entries are counted as dropped rather than reallocating —
//! instrumentation must never let memory grow with run length.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Clone, Debug)]
pub struct JournalEntry {
    pub name: &'static str,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    pub fields: Vec<(&'static str, String)>,
}

#[derive(Debug)]
pub struct Journal {
    entries: Mutex<VecDeque<JournalEntry>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Journal {
    pub fn new(capacity: usize) -> Self {
        Journal {
            entries: Mutex::new(VecDeque::new()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    pub fn push(&self, entry: JournalEntry) {
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= self.capacity {
            entries.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(entry);
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn snapshot(&self) -> Vec<JournalEntry> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &'static str, ts_us: u64) -> JournalEntry {
        JournalEntry {
            name,
            ts_us,
            fields: Vec::new(),
        }
    }

    #[test]
    fn keeps_newest_entries_when_full() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.push(entry("e", i));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let ts: Vec<u64> = j.snapshot().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let j = Journal::new(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..500 {
                        j.push(entry("e", i));
                    }
                });
            }
        });
        assert_eq!(j.len(), 64);
        assert_eq!(j.dropped() as usize, 4 * 500 - 64);
    }
}
