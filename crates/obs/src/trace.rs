//! Span timers and the bounded trace buffer behind the Chrome-trace exporter.
//!
//! A [`SpanGuard`] measures the wall-clock duration between its creation and
//! drop and records a complete ("ph":"X") trace event. Nesting falls out of
//! the timestamps: Perfetto stacks events on the same thread track by their
//! `[ts, ts+dur]` intervals, so inner spans render inside outer ones without
//! any explicit parent bookkeeping.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::ThreadId;
use std::time::Instant;

use parking_lot::Mutex;

/// Monotonic id source distinguishing buffers in the per-thread tid cache.
static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread `(buffer id, interned tid)` pairs. A thread's dense
    /// index within a buffer never changes, so after the first interning
    /// a `tid()` call is a local vector scan — no shared-map lock on the
    /// span-drop hot path. A plain Vec beats a map here: a thread touches
    /// very few distinct recorders over its lifetime.
    static TID_CACHE: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// One recorded trace entry (span or instant event).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Duration in microseconds; `None` marks an instant event ("ph":"i").
    pub dur_us: Option<u64>,
    /// Small dense thread index used as the Chrome-trace `tid`.
    pub tid: u64,
    /// Extra key/value payload rendered into the event's `args` object.
    pub args: Vec<(&'static str, String)>,
}

/// Bounded buffer of trace events plus the thread-id interning table.
pub struct TraceBuffer {
    id: u64,
    events: Mutex<Vec<TraceEvent>>,
    threads: Mutex<HashMap<ThreadId, u64>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TraceBuffer {
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
            threads: Mutex::new(HashMap::new()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Dense per-recorder index for the calling thread, cached
    /// thread-locally after the first interning.
    pub fn tid(&self) -> u64 {
        TID_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&(_, tid)) = cache.iter().find(|&&(id, _)| id == self.id) {
                return tid;
            }
            let tid = {
                let mut map = self.threads.lock();
                let next = map.len() as u64;
                *map.entry(std::thread::current().id()).or_insert(next)
            };
            cache.push((self.id, tid));
            tid
        })
    }

    pub fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock();
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(event);
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }
}

// Manual impl: the lock guards' contents are runtime data, not state
// worth printing, and the mutex type itself offers no `Debug`.
impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("id", &self.id)
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

/// RAII timer: records a complete span event when dropped.
///
/// The no-op flavour (from a disabled recorder) holds nothing and its drop
/// is a single branch.
#[must_use = "a span measures the scope it lives in; binding it to _ drops it immediately"]
pub struct SpanGuard {
    live: Option<SpanLive>,
}

struct SpanLive {
    buffer: std::sync::Arc<TraceBuffer>,
    name: &'static str,
    epoch: Instant,
    started: Instant,
    args: Vec<(&'static str, String)>,
}

impl SpanGuard {
    pub(crate) fn live(
        buffer: std::sync::Arc<TraceBuffer>,
        name: &'static str,
        epoch: Instant,
    ) -> Self {
        SpanGuard {
            live: Some(SpanLive {
                buffer,
                name,
                epoch,
                started: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    pub(crate) fn noop() -> Self {
        SpanGuard { live: None }
    }

    /// Attach a key/value pair surfaced in the trace event's `args`.
    pub fn arg(&mut self, key: &'static str, value: impl ToString) {
        if let Some(live) = &mut self.live {
            live.args.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let ts_us = live.started.duration_since(live.epoch).as_micros() as u64;
            let dur_us = live.started.elapsed().as_micros() as u64;
            let tid = live.buffer.tid();
            live.buffer.push(TraceEvent {
                name: live.name,
                ts_us,
                dur_us: Some(dur_us),
                tid,
                args: live.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn buffer_is_bounded_and_counts_drops() {
        let buf = TraceBuffer::new(2);
        for _ in 0..5 {
            buf.push(TraceEvent {
                name: "e",
                ts_us: 0,
                dur_us: None,
                tid: 0,
                args: Vec::new(),
            });
        }
        assert_eq!(buf.snapshot().len(), 2);
        assert_eq!(buf.dropped(), 3);
    }

    #[test]
    fn nested_spans_record_containment_order() {
        let buf = Arc::new(TraceBuffer::new(16));
        let epoch = Instant::now();
        {
            let _outer = SpanGuard::live(buf.clone(), "outer", epoch);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let mut inner = SpanGuard::live(buf.clone(), "inner", epoch);
                inner.arg("k", 7);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let events = buf.snapshot();
        assert_eq!(events.len(), 2);
        // Inner drops first, so it is recorded first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.args, vec![("k", "7".to_string())]);
        // Containment: outer starts no later and ends no earlier than inner.
        assert!(outer.ts_us <= inner.ts_us);
        assert!(
            outer.ts_us + outer.dur_us.unwrap() >= inner.ts_us + inner.dur_us.unwrap(),
            "outer span must contain inner span"
        );
    }

    #[test]
    fn threads_get_distinct_dense_tids() {
        let buf = Arc::new(TraceBuffer::new(16));
        let main_tid = buf.tid();
        let other = std::thread::scope(|s| s.spawn(|| buf.tid()).join().unwrap());
        assert_ne!(main_tid, other);
        assert!(other < 2);
    }

    #[test]
    fn tid_cache_is_stable_and_scoped_per_buffer() {
        let a = TraceBuffer::new(4);
        let b = TraceBuffer::new(4);
        // Fresh buffers intern the calling thread at index 0, and the
        // thread-local cache must keep the two buffers apart.
        assert_eq!(a.tid(), 0);
        assert_eq!(b.tid(), 0);
        // Repeat calls hit the cache and must agree with the shared map.
        assert_eq!(a.tid(), 0);
        let other = std::thread::scope(|s| s.spawn(|| (a.tid(), a.tid())).join().unwrap());
        assert_eq!(other, (1, 1), "second thread interns index 1, cached");
        assert_eq!(a.tid(), 0, "first thread's cached index is unchanged");
    }
}
