//! Declarative freshness-SLO rules and the `Ok → Warn → Breach` health
//! state machine.
//!
//! Four rule families, all evaluated once per epoch against the same
//! [`EpochSample`] the time-series ring retains:
//!
//! | rule            | fires when                                            |
//! |-----------------|-------------------------------------------------------|
//! | `pf_floor`      | realized PF drops below [`SloConfig::target_pf`]      |
//! | `staleness_p95` | p95 element age exceeds a ceiling                     |
//! | `shed_rate`     | dispatcher shed credit per dispatched poll too high   |
//! | `burn_rate`     | error-budget burn over a short **and** a long window  |
//!
//! Instantaneous violations raise `Warn`; a violation streak of
//! [`SloConfig::breach_after`] epochs — or any burn-rate violation, the
//! multiwindow signal that the budget is being consumed unsustainably —
//! escalates to `Breach`. [`SloConfig::clear_after`] consecutive clean
//! epochs recover to `Ok`. Every transition is appended to a bounded alert
//! journal (overflow counted, never grown).
//!
//! Evaluation reads only deterministic sample fields (never the wall-clock
//! request annotations), so health transitions — like everything else in
//! the engine — replay identically across kill/resume.

use std::collections::VecDeque;

use crate::json::{push_f64, push_str_literal, push_u64};
use crate::timeseries::EpochSample;

/// Health states, ordered by severity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// All rules satisfied (or still inside the grace window).
    #[default]
    Ok = 0,
    /// At least one rule violated this epoch; not yet sustained.
    Warn = 1,
    /// Sustained or burn-rate violation; `/health` answers 503.
    Breach = 2,
}

impl Health {
    /// Lowercase label used in JSON bodies and progress lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Warn => "warn",
            Health::Breach => "breach",
        }
    }

    /// The wire byte stored in samples and snapshots.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode a wire byte; `None` for anything but 0/1/2.
    pub fn from_u8(v: u8) -> Option<Health> {
        match v {
            0 => Some(Health::Ok),
            1 => Some(Health::Warn),
            2 => Some(Health::Breach),
            _ => None,
        }
    }
}

/// SLO rule thresholds. `f64::INFINITY` disables a ceiling rule.
#[derive(Clone, Debug, PartialEq)]
pub struct SloConfig {
    /// Floor on per-epoch realized PF (the error budget is `1 - target_pf`).
    pub target_pf: f64,
    /// Ceiling on p95 element age; `INFINITY` disables the rule.
    pub staleness_p95_max: f64,
    /// Ceiling on shed credit per dispatched poll; `INFINITY` disables.
    pub shed_rate_max: f64,
    /// Short burn-rate window, in epochs.
    pub burn_short: usize,
    /// Long burn-rate window, in epochs (also the PF history retained).
    pub burn_long: usize,
    /// Burn-rate threshold: mean PF shortfall over window ÷ error budget.
    pub burn_factor: f64,
    /// Consecutive violating epochs before `Warn` escalates to `Breach`.
    pub breach_after: u64,
    /// Consecutive clean epochs before recovering to `Ok`.
    pub clear_after: u64,
    /// Epochs at the start of the run exempt from evaluation (warm-up).
    pub grace_epochs: u64,
    /// Alert-journal capacity; older alerts are dropped (and counted).
    pub max_alerts: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_pf: 0.8,
            staleness_p95_max: f64::INFINITY,
            shed_rate_max: f64::INFINITY,
            burn_short: 5,
            burn_long: 20,
            burn_factor: 2.0,
            breach_after: 3,
            clear_after: 3,
            grace_epochs: 0,
            max_alerts: 256,
        }
    }
}

impl SloConfig {
    /// Reject configurations the evaluator cannot interpret.
    pub fn validate(&self) -> Result<(), String> {
        let bad = |what: &str, v: f64| Err(format!("invalid SLO config: {what} = {v}"));
        if !self.target_pf.is_finite() || !(0.0..1.0).contains(&self.target_pf) {
            return bad("target_pf (want 0 ≤ pf < 1)", self.target_pf);
        }
        if self.staleness_p95_max.is_nan() || self.staleness_p95_max <= 0.0 {
            return bad("staleness_p95_max", self.staleness_p95_max);
        }
        if self.shed_rate_max.is_nan() || self.shed_rate_max < 0.0 {
            return bad("shed_rate_max", self.shed_rate_max);
        }
        if self.burn_short == 0 || self.burn_long < self.burn_short {
            return Err(format!(
                "invalid SLO config: burn windows {}/{} (want 1 ≤ short ≤ long)",
                self.burn_short, self.burn_long
            ));
        }
        if !self.burn_factor.is_finite() || self.burn_factor <= 0.0 {
            return bad("burn_factor", self.burn_factor);
        }
        if self.breach_after == 0 {
            return bad("breach_after", 0.0);
        }
        if self.clear_after == 0 {
            return bad("clear_after", 0.0);
        }
        if self.max_alerts == 0 {
            return bad("max_alerts", 0.0);
        }
        Ok(())
    }
}

/// One recorded health transition.
#[derive(Clone, Debug, PartialEq)]
pub struct SloAlert {
    /// Epoch the transition fired.
    pub epoch: u64,
    /// The state entered.
    pub health: Health,
    /// The rule that triggered it (`"recovered"` on return to `Ok`).
    pub rule: String,
    /// Observed value of the triggering rule's signal.
    pub value: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
}

/// Portable evaluator state for checkpoint/restore.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloState {
    /// Current health as a wire byte.
    pub health: u8,
    /// Length of the current violation streak.
    pub consecutive_bad: u64,
    /// Length of the current clean streak.
    pub consecutive_good: u64,
    /// Recent realized-PF history, oldest first (≤ `burn_long`).
    pub pf_window: Vec<f64>,
    /// Retained alerts, oldest first.
    pub alerts: Vec<SloAlert>,
    /// Alerts evicted from the bounded journal.
    pub alerts_dropped: u64,
    /// Total epochs evaluated.
    pub evaluations: u64,
    /// Total transitions into `Warn`.
    pub warns: u64,
    /// Total transitions into `Breach`.
    pub breaches: u64,
    /// Total recoveries to `Ok`.
    pub recoveries: u64,
}

/// The per-epoch SLO evaluator. See the module docs for rule semantics.
#[derive(Clone, Debug)]
pub struct SloEngine {
    config: SloConfig,
    health: Health,
    consecutive_bad: u64,
    consecutive_good: u64,
    pf_window: VecDeque<f64>,
    alerts: Vec<SloAlert>,
    alerts_dropped: u64,
    evaluations: u64,
    warns: u64,
    breaches: u64,
    recoveries: u64,
}

impl SloEngine {
    /// Build an evaluator from a validated config.
    pub fn new(config: SloConfig) -> Result<SloEngine, String> {
        config.validate()?;
        Ok(SloEngine {
            pf_window: VecDeque::with_capacity(config.burn_long),
            config,
            health: Health::Ok,
            consecutive_bad: 0,
            consecutive_good: 0,
            alerts: Vec::new(),
            alerts_dropped: 0,
            evaluations: 0,
            warns: 0,
            breaches: 0,
            recoveries: 0,
        })
    }

    /// Evaluate one epoch. Returns the transition fired this epoch, if any;
    /// the new health is [`SloEngine::health`].
    pub fn evaluate(&mut self, s: &EpochSample) -> Option<SloAlert> {
        self.evaluations += 1;
        self.pf_window.push_back(s.realized_pf);
        while self.pf_window.len() > self.config.burn_long {
            self.pf_window.pop_front();
        }
        if s.epoch < self.config.grace_epochs {
            return None;
        }

        let mut violations: Vec<(&'static str, f64, f64)> = Vec::new();
        if s.realized_pf < self.config.target_pf {
            violations.push(("pf_floor", s.realized_pf, self.config.target_pf));
        }
        if s.age_p95 > self.config.staleness_p95_max {
            violations.push(("staleness_p95", s.age_p95, self.config.staleness_p95_max));
        }
        let shed_rate = s.shed / s.dispatched.max(1) as f64;
        if shed_rate > self.config.shed_rate_max {
            violations.push(("shed_rate", shed_rate, self.config.shed_rate_max));
        }
        let mut burn_violated = false;
        if self.pf_window.len() >= self.config.burn_short {
            let short = self.burn_rate(self.config.burn_short);
            let long = self.burn_rate(self.config.burn_long);
            if short > self.config.burn_factor && long > self.config.burn_factor {
                burn_violated = true;
                violations.push(("burn_rate", short, self.config.burn_factor));
            }
        }

        if violations.is_empty() {
            self.consecutive_bad = 0;
            self.consecutive_good += 1;
            if self.health != Health::Ok && self.consecutive_good >= self.config.clear_after {
                self.recoveries += 1;
                return Some(self.transition(s.epoch, Health::Ok, "recovered", 0.0, 0.0));
            }
            return None;
        }
        self.consecutive_good = 0;
        self.consecutive_bad += 1;
        let target = if burn_violated || self.consecutive_bad >= self.config.breach_after {
            Health::Breach
        } else {
            Health::Warn
        };
        if target <= self.health {
            return None;
        }
        let (rule, value, threshold) = if target == Health::Breach && burn_violated {
            *violations.iter().find(|v| v.0 == "burn_rate").unwrap()
        } else {
            violations[0]
        };
        if target == Health::Warn {
            self.warns += 1;
        } else {
            self.breaches += 1;
        }
        Some(self.transition(s.epoch, target, rule, value, threshold))
    }

    /// Mean PF shortfall over the trailing `window` epochs divided by the
    /// error budget `1 - target_pf` (the burn rate: 1.0 = exactly on
    /// budget, 2.0 = burning twice as fast as sustainable).
    fn burn_rate(&self, window: usize) -> f64 {
        let n = window.min(self.pf_window.len());
        if n == 0 {
            return 0.0;
        }
        let shortfall: f64 = self
            .pf_window
            .iter()
            .rev()
            .take(n)
            .map(|pf| (1.0 - pf).max(0.0))
            .sum();
        (shortfall / n as f64) / (1.0 - self.config.target_pf)
    }

    fn transition(
        &mut self,
        epoch: u64,
        to: Health,
        rule: &str,
        value: f64,
        threshold: f64,
    ) -> SloAlert {
        self.health = to;
        let alert = SloAlert {
            epoch,
            health: to,
            rule: rule.to_string(),
            value,
            threshold,
        };
        if self.alerts.len() >= self.config.max_alerts {
            self.alerts.remove(0);
            self.alerts_dropped += 1;
        }
        self.alerts.push(alert.clone());
        alert
    }

    /// Current health.
    pub fn health(&self) -> Health {
        self.health
    }

    /// The configured thresholds.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Retained alerts, oldest first.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Alerts evicted from the bounded journal.
    pub fn alerts_dropped(&self) -> u64 {
        self.alerts_dropped
    }

    /// Total epochs evaluated.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Total transitions into `Warn`.
    pub fn warns(&self) -> u64 {
        self.warns
    }

    /// Total transitions into `Breach`.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Total recoveries to `Ok`.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Snapshot the evaluator for checkpointing.
    pub fn export(&self) -> SloState {
        SloState {
            health: self.health.as_u8(),
            consecutive_bad: self.consecutive_bad,
            consecutive_good: self.consecutive_good,
            pf_window: self.pf_window.iter().copied().collect(),
            alerts: self.alerts.clone(),
            alerts_dropped: self.alerts_dropped,
            evaluations: self.evaluations,
            warns: self.warns,
            breaches: self.breaches,
            recoveries: self.recoveries,
        }
    }

    /// Rebuild an evaluator from checkpointed state under `config`.
    pub fn from_state(config: SloConfig, state: &SloState) -> Result<SloEngine, String> {
        config.validate()?;
        let health =
            Health::from_u8(state.health).ok_or_else(|| "invalid SLO health byte".to_string())?;
        if state.pf_window.len() > config.burn_long {
            return Err("SLO pf window exceeds burn_long".to_string());
        }
        if state.pf_window.iter().any(|pf| !pf.is_finite()) {
            return Err("SLO pf window holds a non-finite value".to_string());
        }
        if state.alerts.len() > config.max_alerts {
            return Err("SLO alert journal exceeds max_alerts".to_string());
        }
        Ok(SloEngine {
            config,
            health,
            consecutive_bad: state.consecutive_bad,
            consecutive_good: state.consecutive_good,
            pf_window: state.pf_window.iter().copied().collect(),
            alerts: state.alerts.clone(),
            alerts_dropped: state.alerts_dropped,
            evaluations: state.evaluations,
            warns: state.warns,
            breaches: state.breaches,
            recoveries: state.recoveries,
        })
    }

    /// The `/health` response body: current state, rule thresholds,
    /// transition counters, and the most recent alerts.
    pub fn health_json(&self, epoch: u64) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"state\": ");
        push_str_literal(&mut out, self.health.as_str());
        out.push_str(", \"epoch\": ");
        push_u64(&mut out, epoch);
        out.push_str(", \"target_pf\": ");
        push_f64(&mut out, self.config.target_pf);
        for (key, v) in [
            ("evaluations", self.evaluations),
            ("warns", self.warns),
            ("breaches", self.breaches),
            ("recoveries", self.recoveries),
            ("consecutive_bad", self.consecutive_bad),
            ("consecutive_good", self.consecutive_good),
            ("alerts_dropped", self.alerts_dropped),
        ] {
            out.push_str(", \"");
            out.push_str(key);
            out.push_str("\": ");
            push_u64(&mut out, v);
        }
        out.push_str(", \"alerts\": [");
        let recent = self.alerts.len().saturating_sub(8);
        for (i, a) in self.alerts[recent..].iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"epoch\": ");
            push_u64(&mut out, a.epoch);
            out.push_str(", \"state\": ");
            push_str_literal(&mut out, a.health.as_str());
            out.push_str(", \"rule\": ");
            push_str_literal(&mut out, &a.rule);
            out.push_str(", \"value\": ");
            push_f64(&mut out, a.value);
            out.push_str(", \"threshold\": ");
            push_f64(&mut out, a.threshold);
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64, pf: f64) -> EpochSample {
        EpochSample {
            epoch,
            realized_pf: pf,
            dispatched: 10,
            ..EpochSample::default()
        }
    }

    fn engine(config: SloConfig) -> SloEngine {
        SloEngine::new(config).unwrap()
    }

    #[test]
    fn validates_config() {
        assert!(SloConfig::default().validate().is_ok());
        for mutate in [
            (|c: &mut SloConfig| c.target_pf = 1.0) as fn(&mut SloConfig),
            |c| c.target_pf = f64::NAN,
            |c| c.burn_short = 0,
            |c| c.burn_long = 2,
            |c| c.burn_factor = 0.0,
            |c| c.breach_after = 0,
            |c| c.clear_after = 0,
            |c| c.max_alerts = 0,
            |c| c.staleness_p95_max = -1.0,
            |c| c.shed_rate_max = f64::NAN,
        ] {
            let mut c = SloConfig {
                burn_short: 5,
                ..SloConfig::default()
            };
            mutate(&mut c);
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
    }

    #[test]
    fn healthy_run_stays_ok() {
        let mut slo = engine(SloConfig::default());
        for e in 0..50 {
            assert!(slo.evaluate(&sample(e, 0.95)).is_none());
        }
        assert_eq!(slo.health(), Health::Ok);
        assert_eq!(slo.evaluations(), 50);
        assert!(slo.alerts().is_empty());
    }

    #[test]
    fn sustained_pf_violation_walks_ok_warn_breach_then_recovers() {
        let cfg = SloConfig {
            breach_after: 3,
            clear_after: 2,
            // Burn windows long enough that the streak rule fires first.
            burn_factor: 1e9,
            ..SloConfig::default()
        };
        let mut slo = engine(cfg);
        assert!(slo.evaluate(&sample(0, 0.9)).is_none());

        let warn = slo
            .evaluate(&sample(1, 0.4))
            .expect("first violation warns");
        assert_eq!(warn.health, Health::Warn);
        assert_eq!(warn.rule, "pf_floor");
        assert_eq!(slo.health(), Health::Warn);

        assert!(
            slo.evaluate(&sample(2, 0.4)).is_none(),
            "streak of 2 stays Warn"
        );
        let breach = slo.evaluate(&sample(3, 0.4)).expect("streak of 3 breaches");
        assert_eq!(breach.health, Health::Breach);
        assert_eq!(slo.health(), Health::Breach);

        assert!(slo.evaluate(&sample(4, 0.9)).is_none(), "one clean epoch");
        let rec = slo
            .evaluate(&sample(5, 0.9))
            .expect("two clean epochs recover");
        assert_eq!(rec.health, Health::Ok);
        assert_eq!(rec.rule, "recovered");
        assert_eq!(slo.health(), Health::Ok);
        assert_eq!((slo.warns(), slo.breaches(), slo.recoveries()), (1, 1, 1));
    }

    #[test]
    fn burn_rate_escalates_straight_to_breach() {
        let cfg = SloConfig {
            target_pf: 0.9,
            burn_short: 2,
            burn_long: 4,
            burn_factor: 2.0,
            breach_after: 100, // the streak rule must not be the trigger
            ..SloConfig::default()
        };
        let mut slo = engine(cfg);
        // PF 0.6 burns (1-0.6)/(1-0.9) = 4× budget in every window.
        assert!(slo.evaluate(&sample(0, 0.6)).is_some(), "instant Warn");
        let alert = slo.evaluate(&sample(1, 0.6)).expect("short window filled");
        assert_eq!(alert.health, Health::Breach);
        assert_eq!(alert.rule, "burn_rate");
        assert!(alert.value > 2.0);
    }

    #[test]
    fn staleness_and_shed_rules_fire() {
        let cfg = SloConfig {
            target_pf: 0.1,
            staleness_p95_max: 5.0,
            shed_rate_max: 0.5,
            ..SloConfig::default()
        };
        let mut slo = engine(cfg);
        let mut s = sample(0, 0.9);
        s.age_p95 = 9.0;
        let a = slo.evaluate(&s).expect("staleness violation warns");
        assert_eq!(a.rule, "staleness_p95");

        let mut slo = engine(SloConfig {
            target_pf: 0.1,
            shed_rate_max: 0.5,
            ..SloConfig::default()
        });
        let mut s = sample(0, 0.9);
        s.shed = 20.0;
        s.dispatched = 10;
        let a = slo.evaluate(&s).expect("shed violation warns");
        assert_eq!(a.rule, "shed_rate");
        assert_eq!(a.value, 2.0);
    }

    #[test]
    fn grace_epochs_suppress_evaluation() {
        let cfg = SloConfig {
            grace_epochs: 5,
            ..SloConfig::default()
        };
        let mut slo = engine(cfg);
        for e in 0..5 {
            assert!(slo.evaluate(&sample(e, 0.0)).is_none());
        }
        assert_eq!(slo.health(), Health::Ok);
        assert!(slo.evaluate(&sample(5, 0.0)).is_some(), "grace over");
    }

    #[test]
    fn alert_journal_is_bounded_and_counts_drops() {
        let cfg = SloConfig {
            breach_after: 1_000_000,
            clear_after: 1,
            burn_factor: 1e9,
            max_alerts: 4,
            ..SloConfig::default()
        };
        let mut slo = engine(cfg);
        // Alternate violation/clean so every epoch pair fires two
        // transitions (Warn, then recovery).
        for e in 0..32 {
            let pf = if e % 2 == 0 { 0.0 } else { 1.0 };
            slo.evaluate(&sample(e, pf));
        }
        assert_eq!(slo.alerts().len(), 4);
        assert!(slo.alerts_dropped() > 0);
        assert_eq!(
            slo.warns() + slo.recoveries(),
            slo.alerts().len() as u64 + slo.alerts_dropped()
        );
    }

    #[test]
    fn export_restore_roundtrips_and_preserves_behavior() {
        let cfg = SloConfig {
            breach_after: 3,
            ..SloConfig::default()
        };
        let mut a = engine(cfg.clone());
        for e in 0..10 {
            a.evaluate(&sample(e, if e > 6 { 0.2 } else { 0.95 }));
        }
        let state = a.export();
        let mut b = SloEngine::from_state(cfg, &state).unwrap();
        assert_eq!(b.export(), state);
        // Identical future inputs produce identical transitions.
        for e in 10..16 {
            assert_eq!(a.evaluate(&sample(e, 0.2)), b.evaluate(&sample(e, 0.2)));
            assert_eq!(a.health(), b.health());
        }
    }

    #[test]
    fn from_state_rejects_corruption() {
        let cfg = SloConfig::default();
        let good = engine(cfg.clone()).export();
        let mut bad = good.clone();
        bad.health = 9;
        assert!(SloEngine::from_state(cfg.clone(), &bad).is_err());
        let mut bad = good.clone();
        bad.pf_window = vec![0.5; cfg.burn_long + 1];
        assert!(SloEngine::from_state(cfg.clone(), &bad).is_err());
        let mut bad = good;
        bad.pf_window = vec![f64::NAN];
        assert!(SloEngine::from_state(cfg, &bad).is_err());
    }

    #[test]
    fn health_json_is_well_formed_and_labeled() {
        let mut slo = engine(SloConfig::default());
        for e in 0..6 {
            slo.evaluate(&sample(e, 0.1));
        }
        let body = slo.health_json(5);
        assert!(body.contains("\"state\": \"breach\""), "{body}");
        assert!(body.contains("\"rule\": \"pf_floor\""));
        assert!(body.contains("\"breaches\": 1"));
    }
}
