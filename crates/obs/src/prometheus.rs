//! Hand-rolled Prometheus text exposition (format 0.0.4) plus a strict
//! validator for it.
//!
//! The renderer walks the recorder registry and emits one family per
//! metric: `# HELP` / `# TYPE` comment lines followed by samples. Dotted
//! registry names are sanitized to the legal charset
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`). Histograms expose cumulative
//! `_bucket{le="..."}` samples ending at `+Inf`, `_sum`, `_count`, and a
//! companion `<name>_dropped` counter for non-finite samples the histogram
//! rejected; the recorder-wide journal/trace drop counts round out the
//! "telemetry loss is visible" rule (DESIGN.md §13).
//!
//! [`validate_exposition`] is the matching parser: it checks name and
//! label legality, escape sequences, `# TYPE` consistency and placement,
//! family contiguity, and histogram bucket monotonicity. The `promlint`
//! binary wraps it for CI so a live `/metrics?format=prometheus` response
//! can be piped through the same checks the unit tests run.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

use crate::RecorderInner;

/// Content type a Prometheus scraper expects for this exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Map a dotted registry name onto the Prometheus metric-name charset.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if legal {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render a float the way the exposition format expects (`+Inf`, `-Inf`,
/// `NaN`, shortest-roundtrip otherwise).
fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Escape a HELP docstring (`\\` and newline only, per the format).
fn push_help_text(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escape a label value (`\\`, `"`, and newline).
fn push_label_value(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn family_header(out: &mut String, name: &str, source: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    push_help_text(out, &format!("freshen {kind} {source}"));
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Render several recorders into **one** labeled exposition. Each metric
/// family is emitted exactly once (satisfying the TYPE-once and
/// family-contiguity rules) with one sample per group, tagged
/// `<label>="<group value>"`. Histograms contribute a full bucket ladder
/// per group, each bucket carrying both the group label and `le`. This
/// is the fleet renderer: pass `("tenant", [("_fleet", &fleet_rec),
/// ("acme", &tenant_rec), ...])` and the result is a single exposition a
/// Prometheus scraper can ingest with a per-tenant dimension.
///
/// Disabled recorders are skipped. Group order is preserved, so a fixed
/// group list renders byte-identically across calls with frozen metrics.
pub fn render_labeled(label: &str, groups: &[(&str, &crate::Recorder)]) -> String {
    let label = if is_legal_label_name(label) {
        label
    } else {
        "group"
    };
    let live: Vec<(&str, &RecorderInner)> = groups
        .iter()
        .filter_map(|(value, rec)| rec.inner.as_deref().map(|inner| (*value, inner)))
        .collect();
    if live.is_empty() {
        return String::new();
    }

    let mut out = String::with_capacity(4096 * live.len());
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let sample_head = |out: &mut String, name: &str, value: &str| {
        out.push_str(name);
        out.push('{');
        out.push_str(label);
        out.push_str("=\"");
        push_label_value(out, value);
        out.push_str("\"}");
    };

    // Union of counter families across the groups, in registry-name
    // order; each family lists its samples in group order.
    let mut counters: BTreeMap<&'static str, Vec<(&str, u64)>> = BTreeMap::new();
    for (value, inner) in &live {
        for (name, cell) in inner.counters.lock().unwrap().iter() {
            counters
                .entry(name)
                .or_default()
                .push((value, cell.load(std::sync::atomic::Ordering::Relaxed)));
        }
    }
    for (name, samples) in &counters {
        let n = sanitize_metric_name(name);
        if !seen.insert(n.clone()) {
            continue;
        }
        family_header(&mut out, &n, name, "counter");
        for (value, v) in samples {
            sample_head(&mut out, &n, value);
            let _ = writeln!(out, " {v}");
        }
    }

    let mut gauges: BTreeMap<&'static str, Vec<(&str, f64)>> = BTreeMap::new();
    for (value, inner) in &live {
        for (name, cell) in inner.gauges.lock().unwrap().iter() {
            gauges.entry(name).or_default().push((
                value,
                f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed)),
            ));
        }
    }
    for (name, samples) in &gauges {
        let n = sanitize_metric_name(name);
        if !seen.insert(n.clone()) {
            continue;
        }
        family_header(&mut out, &n, name, "gauge");
        for (value, v) in samples {
            sample_head(&mut out, &n, value);
            out.push(' ');
            push_value(&mut out, *v);
            out.push('\n');
        }
    }

    // Histograms: snapshot each group's ladder first so the family can be
    // emitted contiguously.
    struct HistSnap<'a> {
        group: &'a str,
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
        dropped: u64,
    }
    let mut histograms: BTreeMap<&'static str, Vec<HistSnap<'_>>> = BTreeMap::new();
    for (value, inner) in &live {
        for (name, core) in inner.histograms.lock().unwrap().iter() {
            histograms.entry(name).or_default().push(HistSnap {
                group: value,
                buckets: core.cumulative_buckets(),
                sum: core.sum(),
                count: core.count(),
                dropped: core.dropped(),
            });
        }
    }
    let mut histogram_dropped: Vec<(String, Vec<(&str, u64)>)> = Vec::new();
    for (name, snaps) in &histograms {
        let n = sanitize_metric_name(name);
        if !seen.insert(n.clone()) {
            continue;
        }
        family_header(&mut out, &n, name, "histogram");
        for snap in snaps {
            for (le, cum) in &snap.buckets {
                out.push_str(&n);
                out.push_str("_bucket{");
                out.push_str(label);
                out.push_str("=\"");
                push_label_value(&mut out, snap.group);
                out.push_str("\",le=\"");
                let mut le_text = String::new();
                push_value(&mut le_text, *le);
                push_label_value(&mut out, &le_text);
                out.push_str("\"} ");
                let _ = writeln!(out, "{cum}");
            }
            sample_head(&mut out, &format!("{n}_sum"), snap.group);
            out.push(' ');
            push_value(&mut out, snap.sum);
            out.push('\n');
            sample_head(&mut out, &format!("{n}_count"), snap.group);
            let _ = writeln!(out, " {}", snap.count);
        }
        histogram_dropped.push((n, snaps.iter().map(|s| (s.group, s.dropped)).collect()));
    }

    // Telemetry-loss counters, labeled per group like everything else.
    for (n, samples) in histogram_dropped {
        let family = format!("{n}_dropped");
        if !seen.insert(family.clone()) {
            continue;
        }
        family_header(&mut out, &family, &family, "counter");
        for (value, dropped) in samples {
            sample_head(&mut out, &family, value);
            let _ = writeln!(out, " {dropped}");
        }
    }
    for (family, pick) in [
        (
            "freshen_journal_dropped",
            (|inner: &RecorderInner| inner.journal.dropped()) as fn(&RecorderInner) -> u64,
        ),
        ("freshen_trace_dropped", |inner: &RecorderInner| {
            inner.trace.dropped()
        }),
    ] {
        if !seen.insert(family.to_string()) {
            continue;
        }
        family_header(&mut out, family, family, "counter");
        for (value, inner) in &live {
            sample_head(&mut out, family, value);
            let _ = writeln!(out, " {}", pick(inner));
        }
    }
    out
}

pub(crate) fn render(inner: &RecorderInner) -> String {
    let mut out = String::with_capacity(4096);
    // Distinct dotted names could sanitize onto the same family; emitting
    // both would break the TYPE-once rule, so later collisions are skipped.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let fresh = |name: &'static str, seen: &mut BTreeSet<String>| {
        let n = sanitize_metric_name(name);
        seen.insert(n.clone()).then_some(n)
    };

    let counters = inner.counters.lock().unwrap();
    for (name, cell) in counters.iter() {
        let Some(n) = fresh(name, &mut seen) else {
            continue;
        };
        family_header(&mut out, &n, name, "counter");
        out.push_str(&n);
        out.push(' ');
        let _ = write!(out, "{}", cell.load(std::sync::atomic::Ordering::Relaxed));
        out.push('\n');
    }
    drop(counters);

    let gauges = inner.gauges.lock().unwrap();
    for (name, cell) in gauges.iter() {
        let Some(n) = fresh(name, &mut seen) else {
            continue;
        };
        family_header(&mut out, &n, name, "gauge");
        out.push_str(&n);
        out.push(' ');
        push_value(
            &mut out,
            f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed)),
        );
        out.push('\n');
    }
    drop(gauges);

    let histograms = inner.histograms.lock().unwrap();
    let mut histogram_dropped: Vec<(String, u64)> = Vec::new();
    for (name, core) in histograms.iter() {
        let Some(n) = fresh(name, &mut seen) else {
            continue;
        };
        family_header(&mut out, &n, name, "histogram");
        for (le, cum) in core.cumulative_buckets() {
            out.push_str(&n);
            out.push_str("_bucket{le=\"");
            let mut le_text = String::new();
            push_value(&mut le_text, le);
            push_label_value(&mut out, &le_text);
            out.push_str("\"} ");
            let _ = write!(out, "{cum}");
            out.push('\n');
        }
        out.push_str(&n);
        out.push_str("_sum ");
        push_value(&mut out, core.sum());
        out.push('\n');
        out.push_str(&n);
        out.push_str("_count ");
        let _ = write!(out, "{}", core.count());
        out.push('\n');
        histogram_dropped.push((n, core.dropped()));
    }
    drop(histograms);

    // Telemetry-loss counters: per-histogram non-finite drops plus the
    // bounded journal/trace buffer evictions.
    for (n, dropped) in histogram_dropped {
        let family = format!("{n}_dropped");
        if !seen.insert(family.clone()) {
            continue;
        }
        family_header(&mut out, &family, &family, "counter");
        let _ = writeln!(out, "{family} {dropped}");
    }
    for (family, dropped) in [
        ("freshen_journal_dropped", inner.journal.dropped()),
        ("freshen_trace_dropped", inner.trace.dropped()),
    ] {
        if !seen.insert(family.to_string()) {
            continue;
        }
        family_header(&mut out, family, family, "counter");
        let _ = writeln!(out, "{family} {dropped}");
    }
    out
}

/// The types a `# TYPE` line may declare.
const TYPES: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];

fn is_legal_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_legal_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_sample_value(text: &str) -> Option<f64> {
    match text {
        "NaN" | "nan" => Some(f64::NAN),
        "+Inf" | "Inf" | "inf" => Some(f64::INFINITY),
        "-Inf" | "-inf" => Some(f64::NEG_INFINITY),
        t => t.parse::<f64>().ok().filter(|v| v.is_finite()),
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse `name{label="v",...} value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !is_legal_metric_name(name) {
        return Err(format!("illegal metric name {name:?}"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(stripped) = rest.strip_prefix('{') {
        let mut chars = stripped.char_indices().peekable();
        loop {
            // label name
            let start = chars.peek().map(|&(i, _)| i).ok_or("unterminated labels")?;
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c == '=' {
                    end = i;
                    break;
                }
                chars.next();
            }
            let label = &stripped[start..end];
            if !is_legal_label_name(label) {
                return Err(format!("illegal label name {label:?}"));
            }
            chars.next(); // '='
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err("label value must be quoted".into()),
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => {
                            return Err(format!(
                                "illegal escape \\{:?} in label value",
                                other.map(|(_, c)| c)
                            ))
                        }
                    },
                    Some((_, '"')) => break,
                    Some((_, '\n')) | None => return Err("unterminated label value".into()),
                    Some((_, c)) => value.push(c),
                }
            }
            labels.push((label.to_string(), value));
            match chars.next() {
                Some((_, ',')) => continue,
                Some((i, '}')) => {
                    rest = &stripped[i + 1..];
                    break;
                }
                _ => return Err("expected ',' or '}' after label".into()),
            }
        }
    }
    let mut parts = rest.split_ascii_whitespace();
    let value_text = parts.next().ok_or("missing sample value")?;
    let value = parse_sample_value(value_text)
        .ok_or_else(|| format!("unparseable sample value {value_text:?}"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("unparseable timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing tokens after sample".into());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Per-family bookkeeping accumulated while scanning. Histogram
/// components are grouped by label signature (labels minus `le`), so a
/// labeled exposition may carry one bucket ladder per series — e.g. one
/// per `tenant="..."` — each checked independently.
#[derive(Default)]
struct Family {
    kind: Option<String>,
    help_seen: bool,
    samples: u64,
    series: BTreeMap<String, HistSeries>,
}

/// One histogram series (a single label signature) within a family.
#[derive(Default)]
struct HistSeries {
    buckets: Vec<(f64, f64)>,
    sum_seen: bool,
    count: Option<f64>,
}

/// Key histogram components by their labels excluding `le`, sorted by
/// label name so author order doesn't split a series.
fn label_signature(labels: &[(String, String)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect();
    parts.sort();
    parts.join(",")
}

/// Validate a full text exposition. Returns the first violation found,
/// prefixed with its 1-based line number.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut current: Option<String> = None;
    let mut closed: BTreeSet<String> = BTreeSet::new();
    let enter = |name: &str,
                 current: &mut Option<String>,
                 closed: &mut BTreeSet<String>|
     -> Result<(), String> {
        if current.as_deref() == Some(name) {
            return Ok(());
        }
        if let Some(prev) = current.take() {
            closed.insert(prev);
        }
        if closed.contains(name) {
            return Err(format!("family {name:?} is interleaved with others"));
        }
        *current = Some(name.to_string());
        Ok(())
    };

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let at = |msg: String| format!("line {lineno}: {msg}");
        let line = line.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    let name = parts.next().ok_or_else(|| at("HELP without name".into()))?;
                    if !is_legal_metric_name(name) {
                        return Err(at(format!("illegal metric name {name:?} in HELP")));
                    }
                    let doc = parts.next().unwrap_or("");
                    let mut chars = doc.chars();
                    while let Some(c) = chars.next() {
                        if c == '\\' && !matches!(chars.next(), Some('\\' | 'n')) {
                            return Err(at(format!("illegal escape in HELP for {name}")));
                        }
                    }
                    enter(name, &mut current, &mut closed).map_err(&at)?;
                    let fam = families.entry(name.to_string()).or_default();
                    if fam.help_seen {
                        return Err(at(format!("duplicate HELP for {name}")));
                    }
                    fam.help_seen = true;
                }
                Some("TYPE") => {
                    let name = parts.next().ok_or_else(|| at("TYPE without name".into()))?;
                    if !is_legal_metric_name(name) {
                        return Err(at(format!("illegal metric name {name:?} in TYPE")));
                    }
                    let kind = parts.next().unwrap_or("").trim();
                    if !TYPES.contains(&kind) {
                        return Err(at(format!("unknown type {kind:?} for {name}")));
                    }
                    enter(name, &mut current, &mut closed).map_err(&at)?;
                    let fam = families.entry(name.to_string()).or_default();
                    if fam.kind.is_some() {
                        return Err(at(format!("duplicate TYPE for {name}")));
                    }
                    if fam.samples > 0 {
                        return Err(at(format!("TYPE for {name} after its samples")));
                    }
                    fam.kind = Some(kind.to_string());
                }
                _ => {} // free-form comment
            }
            continue;
        }

        let sample = parse_sample(line).map_err(&at)?;
        // Resolve the family: histogram component suffixes fold into their
        // base family when that base was declared a histogram.
        let family_name = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = sample.name.strip_suffix(suffix)?;
                let declared = families.get(base)?.kind.as_deref()? == "histogram";
                declared.then(|| base.to_string())
            })
            .unwrap_or_else(|| sample.name.clone());
        enter(&family_name, &mut current, &mut closed).map_err(&at)?;
        let fam = families
            .get_mut(&family_name)
            .ok_or_else(|| at(format!("sample for undeclared family {family_name:?}")))?;
        let kind = fam
            .kind
            .clone()
            .ok_or_else(|| at(format!("family {family_name:?} has no TYPE")))?;
        fam.samples += 1;
        match kind.as_str() {
            "counter" if !(sample.value.is_finite() && sample.value >= 0.0) => {
                return Err(at(format!(
                    "counter {family_name} has non-monotone-able value {}",
                    sample.value
                )));
            }
            "counter" => {}
            "histogram" => {
                let series = fam
                    .series
                    .entry(label_signature(&sample.labels))
                    .or_default();
                if sample.name.ends_with("_bucket") {
                    let le = sample
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| at(format!("bucket of {family_name} lacks le label")))?;
                    let bound = parse_sample_value(&le.1)
                        .ok_or_else(|| at(format!("unparseable le {:?}", le.1)))?;
                    series.buckets.push((bound, sample.value));
                } else if sample.name.ends_with("_sum") {
                    series.sum_seen = true;
                } else if sample.name.ends_with("_count") {
                    series.count = Some(sample.value);
                } else {
                    return Err(at(format!(
                        "histogram {family_name} has stray sample {}",
                        sample.name
                    )));
                }
            }
            _ => {}
        }
    }

    for (name, fam) in &families {
        if fam.kind.as_deref() != Some("histogram") {
            continue;
        }
        if fam.series.values().all(|s| s.buckets.is_empty()) {
            return Err(format!("histogram {name} has no buckets"));
        }
        for (sig, series) in &fam.series {
            let name = if sig.is_empty() {
                name.clone()
            } else {
                format!("{name}{{{sig}}}")
            };
            if series.buckets.is_empty() {
                return Err(format!("histogram {name} has no buckets"));
            }
            for pair in series.buckets.windows(2) {
                // partial_cmp, not a negated `<`: a NaN le bound must fail.
                if pair[0].0.partial_cmp(&pair[1].0) != Some(std::cmp::Ordering::Less) {
                    return Err(format!("histogram {name} le bounds not increasing"));
                }
                if pair[0].1 > pair[1].1 {
                    return Err(format!("histogram {name} bucket counts decrease"));
                }
            }
            let last = series.buckets.last().unwrap();
            if last.0 != f64::INFINITY {
                return Err(format!("histogram {name} lacks a +Inf bucket"));
            }
            if !series.sum_seen {
                return Err(format!("histogram {name} lacks _sum"));
            }
            match series.count {
                Some(c) if c == last.1 => {}
                Some(c) => {
                    return Err(format!(
                        "histogram {name} _count {c} != +Inf bucket {}",
                        last.1
                    ))
                }
                None => return Err(format!("histogram {name} lacks _count")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count_buckets, Recorder};

    #[test]
    fn sanitizes_names_onto_the_legal_charset() {
        assert_eq!(sanitize_metric_name("serve.requests"), "serve_requests");
        assert_eq!(sanitize_metric_name("obs.slo.warns"), "obs_slo_warns");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert!(is_legal_metric_name(&sanitize_metric_name("漢字")));
    }

    #[test]
    fn rendered_exposition_validates() {
        let rec = Recorder::enabled();
        rec.counter("engine.epochs").add(7);
        rec.counter("obs.slo.breaches").inc();
        rec.gauge("engine.pf").set(0.93);
        rec.gauge("engine.unset"); // NaN gauge
        let h = rec.histogram("dispatch.latency", &count_buckets());
        for i in 0..50 {
            h.observe(i as f64);
        }
        h.observe(f64::NAN); // dropped, must surface
        let text = rec.metrics_prometheus().unwrap();
        validate_exposition(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("# TYPE engine_epochs counter"));
        assert!(text.contains("engine_epochs 7"));
        assert!(text.contains("engine_pf 0.93"));
        assert!(text.contains("engine_unset NaN"));
        assert!(text.contains("dispatch_latency_bucket{le=\"+Inf\"} 50"));
        assert!(text.contains("dispatch_latency_count 50"));
        assert!(text.contains("# TYPE dispatch_latency_dropped counter"));
        assert!(text.contains("dispatch_latency_dropped 1"));
        assert!(text.contains("freshen_journal_dropped 0"));
        assert!(text.contains("freshen_trace_dropped 0"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn empty_recorder_renders_a_valid_exposition() {
        let rec = Recorder::enabled();
        let text = rec.metrics_prometheus().unwrap();
        validate_exposition(&text).unwrap();
        assert!(rec.is_enabled());
        assert!(Recorder::disabled().metrics_prometheus().is_none());
    }

    #[test]
    fn validator_accepts_labels_escapes_and_timestamps() {
        let text = concat!(
            "# HELP rpc_count calls with \\\\ and \\n escapes\n",
            "# TYPE rpc_count counter\n",
            "rpc_count{method=\"get \\\"x\\\"\",path=\"/a\\\\b\"} 3 1700000000\n",
        );
        validate_exposition(text).unwrap();
    }

    #[test]
    fn validator_rejects_structural_violations() {
        for (why, text) in [
            ("illegal metric name", "# TYPE 1bad counter\n1bad 1\n"),
            ("illegal label name", "# TYPE m counter\nm{1l=\"x\"} 1\n"),
            ("bad escape", "# TYPE m counter\nm{l=\"\\q\"} 1\n"),
            ("unquoted label", "# TYPE m counter\nm{l=x} 1\n"),
            ("missing TYPE", "m 1\n"),
            ("duplicate TYPE", "# TYPE m counter\n# TYPE m counter\nm 1\n"),
            ("TYPE after samples", "# TYPE m counter\nm 1\n# TYPE n counter\n# TYPE m gauge\n"),
            ("unknown type", "# TYPE m sparkline\nm 1\n"),
            ("negative counter", "# TYPE m counter\nm -1\n"),
            ("NaN counter", "# TYPE m counter\nm NaN\n"),
            ("bad value", "# TYPE m gauge\nm one\n"),
            (
                "interleaved families",
                "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
            ),
            (
                "non-monotone le",
                "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
            ),
            (
                "decreasing bucket counts",
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n",
            ),
            (
                "missing +Inf bucket",
                "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
            ),
            (
                "count mismatch",
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
            ),
            (
                "missing sum",
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
            ),
        ] {
            assert!(validate_exposition(text).is_err(), "accepted {why}: {text}");
        }
    }

    #[test]
    fn labeled_render_round_trips_through_the_validator() {
        let fleet = Recorder::enabled();
        fleet.counter("fleet.rounds").add(3);
        let a = Recorder::enabled();
        a.counter("engine.epochs").add(7);
        a.gauge("engine.pf").set(0.5);
        let ha = a.histogram("dispatch.latency", &count_buckets());
        for i in 0..10 {
            ha.observe(i as f64);
        }
        let b = Recorder::enabled();
        b.counter("engine.epochs").add(9);
        let hb = b.histogram("dispatch.latency", &count_buckets());
        hb.observe(2.0);
        hb.observe(f64::NAN); // per-group dropped counter must surface

        let text = render_labeled("tenant", &[("_fleet", &fleet), ("acme", &a), ("bo\"b", &b)]);
        validate_exposition(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("fleet_rounds{tenant=\"_fleet\"} 3"));
        assert!(text.contains("engine_epochs{tenant=\"acme\"} 7"));
        assert!(text.contains("engine_epochs{tenant=\"bo\\\"b\"} 9"));
        assert!(text.contains("engine_pf{tenant=\"acme\"} 0.5"));
        assert!(text.contains("dispatch_latency_bucket{tenant=\"acme\",le=\"+Inf\"} 10"));
        assert!(text.contains("dispatch_latency_count{tenant=\"acme\"} 10"));
        assert!(text.contains("dispatch_latency_count{tenant=\"bo\\\"b\"} 1"));
        assert!(text.contains("dispatch_latency_dropped{tenant=\"bo\\\"b\"} 1"));
        assert!(text.contains("freshen_journal_dropped{tenant=\"_fleet\"} 0"));
        // TYPE-once even though two groups carry the family.
        assert_eq!(text.matches("# TYPE engine_epochs counter").count(), 1);
        assert_eq!(text.matches("# TYPE dispatch_latency histogram").count(), 1);
    }

    #[test]
    fn labeled_render_skips_disabled_groups_and_bad_label_names() {
        let a = Recorder::enabled();
        a.counter("engine.epochs").inc();
        let off = Recorder::disabled();
        let text = render_labeled("9bad", &[("a", &a), ("off", &off)]);
        validate_exposition(&text).unwrap();
        assert!(text.contains("engine_epochs{group=\"a\"} 1"));
        assert!(!text.contains("off"));
        assert_eq!(render_labeled("tenant", &[("off", &off)]), "");
    }

    #[test]
    fn validator_groups_histogram_series_by_label_signature() {
        // Two tenants' ladders in one family: the second ladder restarts
        // at a smaller le, which must NOT read as a monotonicity break.
        let ok = concat!(
            "# TYPE h histogram\n",
            "h_bucket{tenant=\"a\",le=\"1\"} 1\n",
            "h_bucket{tenant=\"a\",le=\"+Inf\"} 2\n",
            "h_sum{tenant=\"a\"} 3\n",
            "h_count{tenant=\"a\"} 2\n",
            "h_bucket{tenant=\"b\",le=\"1\"} 4\n",
            "h_bucket{tenant=\"b\",le=\"+Inf\"} 9\n",
            "h_sum{tenant=\"b\"} 5\n",
            "h_count{tenant=\"b\"} 9\n",
        );
        validate_exposition(ok).unwrap();
        // But a broken ladder inside one series is still caught.
        let bad = concat!(
            "# TYPE h histogram\n",
            "h_bucket{tenant=\"a\",le=\"2\"} 1\n",
            "h_bucket{tenant=\"a\",le=\"1\"} 2\n",
            "h_bucket{tenant=\"a\",le=\"+Inf\"} 2\n",
            "h_sum{tenant=\"a\"} 3\n",
            "h_count{tenant=\"a\"} 2\n",
        );
        assert!(validate_exposition(bad).is_err());
        // And a series missing its _count is caught per-series.
        let missing = concat!(
            "# TYPE h histogram\n",
            "h_bucket{tenant=\"a\",le=\"+Inf\"} 2\n",
            "h_sum{tenant=\"a\"} 3\n",
            "h_count{tenant=\"a\"} 2\n",
            "h_bucket{tenant=\"b\",le=\"+Inf\"} 1\n",
            "h_sum{tenant=\"b\"} 1\n",
        );
        assert!(validate_exposition(missing).is_err());
    }

    #[test]
    fn slo_counter_family_round_trips_through_the_validator() {
        let rec = Recorder::enabled();
        for name in [
            "obs.slo.evaluations",
            "obs.slo.warns",
            "obs.slo.breaches",
            "obs.slo.recoveries",
        ] {
            rec.counter(name).inc();
        }
        let text = rec.metrics_prometheus().unwrap();
        validate_exposition(&text).unwrap();
        assert!(text.contains("obs_slo_evaluations 1"));
    }
}
