//! The declarative fleet spec: which tenants exist, what each one
//! mirrors, and how the fleet checkpoints.
//!
//! A spec is a JSON document (parsed by the zero-dependency reader in
//! [`crate::json`], so it works under the offline serde stub):
//!
//! ```json
//! {
//!   "checkpoint_every": 2,
//!   "tenants": [
//!     {"id": "acme", "objects": 12, "seed": 7, "epochs": 16,
//!      "scenario": "flash-crowd", "access_rate": 150.0}
//!   ]
//! }
//! ```
//!
//! Unknown keys are rejected (typo safety, like the CLI's flag parsing),
//! tenant ids must be unique `[A-Za-z0-9_-]` names not starting with `_`
//! (the `_fleet` label value is reserved for the fleet's own recorder in
//! the labeled Prometheus exposition), and every numeric knob is
//! validated here so the runtime never sees a malformed tenant.

use std::path::PathBuf;

use freshen_core::error::{CoreError, Result};
use freshen_core::problem::Problem;
use freshen_engine::EngineConfig;
use freshen_obs::SloConfig;
use freshen_serve::{ServeConfig, ServeWorkload};
use freshen_workload::{Scenario, StressScenario};

use crate::json::Json;

/// One tenant: an independent engine with its own problem, budget,
/// seed, and SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name; also the snapshot file stem and the `tenant`
    /// label value in the fleet's Prometheus exposition.
    pub id: String,
    /// Number of mirrored objects.
    pub objects: usize,
    /// Workload generator: `baseline`, `flash-crowd`, or `diurnal`.
    pub scenario: String,
    /// Engine seed (also salts the tenant's access/poll streams).
    pub seed: u64,
    /// Epochs the tenant runs.
    pub epochs: usize,
    /// Warm-up epochs before adaptive machinery engages.
    pub warmup_epochs: usize,
    /// Poisson access-arrival rate (events per period).
    pub access_rate: f64,
    /// Total source updates per period (defaults to `2 × objects`).
    pub updates_per_period: f64,
    /// Sync bandwidth per period — the tenant's budget (defaults to
    /// `objects / 2`).
    pub syncs_per_period: f64,
    /// Zipf skew of the baseline interest distribution.
    pub zipf_theta: f64,
    /// Poll failure probability.
    pub failure_rate: f64,
    /// Optional freshness-SLO floor on per-epoch realized PF.
    pub slo_target_pf: Option<f64>,
}

impl TenantSpec {
    /// A valid starting point: callers set `id`, `objects`, `seed`, and
    /// whatever else differs from the defaults.
    pub fn new(id: &str, objects: usize) -> TenantSpec {
        TenantSpec {
            id: id.to_string(),
            objects,
            scenario: "baseline".to_string(),
            seed: 0,
            epochs: 16,
            warmup_epochs: 2,
            access_rate: 100.0,
            updates_per_period: 2.0 * objects as f64,
            syncs_per_period: (objects as f64 / 2.0).max(1.0),
            zipf_theta: 0.8,
            failure_rate: 0.0,
            slo_target_pf: None,
        }
    }

    /// The engine configuration this tenant runs — shared verbatim with
    /// the solo `freshen serve` run the parity invariant compares
    /// against.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            epochs: self.epochs,
            warmup_epochs: self.warmup_epochs,
            seed: self.seed,
            failure_rate: self.failure_rate,
            slo: self.slo_target_pf.map(|target_pf| SloConfig {
                target_pf,
                ..SloConfig::default()
            }),
            ..EngineConfig::default()
        }
    }

    /// Materialize the tenant's ground-truth problem (deterministic in
    /// the spec, including the seed).
    pub fn problem(&self) -> Result<Problem> {
        match self.scenario.as_str() {
            "baseline" => Scenario::builder()
                .num_objects(self.objects)
                .updates_per_period(self.updates_per_period)
                .syncs_per_period(self.syncs_per_period)
                .zipf_theta(self.zipf_theta)
                .seed(self.seed)
                .build()?
                .problem(),
            name => StressScenario::from_name(name)
                .ok_or_else(|| {
                    CoreError::InvalidConfig(format!(
                        "fleet spec: tenant `{}` has unknown scenario `{name}` \
                         (want baseline, flash-crowd, or diurnal)",
                        self.id
                    ))
                })?
                .problem(
                    self.objects,
                    self.updates_per_period,
                    self.syncs_per_period,
                    self.seed,
                ),
        }
    }

    /// The live serve workload for this tenant.
    pub fn workload(&self) -> Result<ServeWorkload> {
        Ok(ServeWorkload::Live {
            problem: self.problem()?,
            access_rate: self.access_rate,
        })
    }

    /// The solo `freshen serve` configuration equivalent to this
    /// tenant's slot in the fleet — what the byte-parity tests run.
    pub fn serve_config(&self, checkpoint_path: PathBuf) -> ServeConfig {
        ServeConfig {
            engine: self.engine_config(),
            checkpoint_path,
            ..ServeConfig::default()
        }
    }

    /// The tenant's snapshot file name inside a fleet snapshot dir.
    pub fn snapshot_file(&self) -> String {
        format!("{}.snapshot", self.id)
    }

    fn validate(&self) -> Result<()> {
        let id_ok = !self.id.is_empty()
            && self.id.len() <= 64
            && !self.id.starts_with('_')
            && self
                .id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
        if !id_ok {
            return Err(CoreError::InvalidConfig(format!(
                "fleet spec: tenant id `{}` must be 1-64 chars of [A-Za-z0-9_-] \
                 and must not start with `_`",
                self.id
            )));
        }
        if self.objects == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "fleet spec: tenant `{}` has zero objects",
                self.id
            )));
        }
        for (what, v) in [
            ("access_rate", self.access_rate),
            ("updates_per_period", self.updates_per_period),
            ("syncs_per_period", self.syncs_per_period),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(CoreError::InvalidConfig(format!(
                    "fleet spec: tenant `{}` has invalid {what} ({v})",
                    self.id
                )));
            }
        }
        self.engine_config().validate()?;
        // Fail scenario-name typos at spec load, not mid-run.
        if self.scenario != "baseline" && StressScenario::from_name(&self.scenario).is_none() {
            return Err(CoreError::InvalidConfig(format!(
                "fleet spec: tenant `{}` has unknown scenario `{}`",
                self.id, self.scenario
            )));
        }
        Ok(())
    }
}

/// The whole fleet: tenants plus fleet-wide checkpoint cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Tenants, in declaration order (which is also step order).
    pub tenants: Vec<TenantSpec>,
    /// Checkpoint every N rounds; `0` checkpoints only on demand and at
    /// drain.
    pub checkpoint_every: usize,
}

impl FleetSpec {
    /// Build from a tenant list (programmatic construction for tests
    /// and benches); validated like a parsed spec.
    pub fn new(tenants: Vec<TenantSpec>) -> Result<FleetSpec> {
        let spec = FleetSpec {
            tenants,
            checkpoint_every: 0,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parse and validate a JSON spec document.
    pub fn parse(text: &str) -> Result<FleetSpec> {
        let doc = Json::parse(text)?;
        let mut checkpoint_every = 0usize;
        let mut tenants = Vec::new();
        for (key, value) in doc.as_obj("spec root")? {
            match key.as_str() {
                "checkpoint_every" => checkpoint_every = value.as_usize("checkpoint_every")?,
                "tenants" => {
                    for (i, t) in value.as_arr("tenants")?.iter().enumerate() {
                        tenants.push(parse_tenant(t, i)?);
                    }
                }
                other => {
                    return Err(CoreError::InvalidConfig(format!(
                        "fleet spec: unknown key `{other}` (want checkpoint_every, tenants)"
                    )))
                }
            }
        }
        let spec = FleetSpec {
            tenants,
            checkpoint_every,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validate every tenant and fleet-level invariants.
    pub fn validate(&self) -> Result<()> {
        if self.tenants.is_empty() {
            return Err(CoreError::InvalidConfig(
                "fleet spec: at least one tenant is required".into(),
            ));
        }
        for tenant in &self.tenants {
            tenant.validate()?;
        }
        for (i, a) in self.tenants.iter().enumerate() {
            if self.tenants[i + 1..].iter().any(|b| b.id == a.id) {
                return Err(CoreError::InvalidConfig(format!(
                    "fleet spec: duplicate tenant id `{}`",
                    a.id
                )));
            }
        }
        Ok(())
    }

    /// Render the spec back to canonical JSON (handy for tests and for
    /// generated specs in benches).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"checkpoint_every\": {},\n  \"tenants\": [\n",
            self.checkpoint_every
        ));
        for (i, t) in self.tenants.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"objects\": {}, \"scenario\": \"{}\", \"seed\": {}, \
                 \"epochs\": {}, \"warmup_epochs\": {}, \"access_rate\": {}, \
                 \"updates_per_period\": {}, \"syncs_per_period\": {}, \"zipf_theta\": {}, \
                 \"failure_rate\": {}",
                t.id,
                t.objects,
                t.scenario,
                t.seed,
                t.epochs,
                t.warmup_epochs,
                t.access_rate,
                t.updates_per_period,
                t.syncs_per_period,
                t.zipf_theta,
                t.failure_rate,
            ));
            if let Some(target) = t.slo_target_pf {
                out.push_str(&format!(", \"slo_target_pf\": {target}"));
            }
            out.push('}');
            if i + 1 < self.tenants.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn parse_tenant(value: &Json, index: usize) -> Result<TenantSpec> {
    let what = format!("tenants[{index}]");
    let members = value.as_obj(&what)?;
    let id = value
        .get("id")
        .ok_or_else(|| CoreError::InvalidConfig(format!("fleet spec: {what} lacks an id")))?
        .as_str("id")?
        .to_string();
    let objects = value
        .get("objects")
        .ok_or_else(|| {
            CoreError::InvalidConfig(format!("fleet spec: tenant `{id}` lacks objects"))
        })?
        .as_usize("objects")?;
    let mut tenant = TenantSpec::new(&id, objects);
    let mut explicit_updates = false;
    let mut explicit_syncs = false;
    for (key, v) in members {
        match key.as_str() {
            "id" | "objects" => {}
            "scenario" => tenant.scenario = v.as_str("scenario")?.to_string(),
            "seed" => tenant.seed = v.as_u64("seed")?,
            "epochs" => tenant.epochs = v.as_usize("epochs")?,
            "warmup_epochs" => tenant.warmup_epochs = v.as_usize("warmup_epochs")?,
            "access_rate" => tenant.access_rate = v.as_f64("access_rate")?,
            "updates_per_period" => {
                tenant.updates_per_period = v.as_f64("updates_per_period")?;
                explicit_updates = true;
            }
            "syncs_per_period" => {
                tenant.syncs_per_period = v.as_f64("syncs_per_period")?;
                explicit_syncs = true;
            }
            "zipf_theta" => tenant.zipf_theta = v.as_f64("zipf_theta")?,
            "failure_rate" => tenant.failure_rate = v.as_f64("failure_rate")?,
            "slo_target_pf" => tenant.slo_target_pf = Some(v.as_f64("slo_target_pf")?),
            other => {
                return Err(CoreError::InvalidConfig(format!(
                    "fleet spec: tenant `{id}` has unknown key `{other}`"
                )))
            }
        }
    }
    // Defaults derived from `objects` only apply when not set explicitly.
    if !explicit_updates {
        tenant.updates_per_period = 2.0 * objects as f64;
    }
    if !explicit_syncs {
        tenant.syncs_per_period = (objects as f64 / 2.0).max(1.0);
    }
    Ok(tenant)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> &'static str {
        r#"{
          "checkpoint_every": 2,
          "tenants": [
            {"id": "acme", "objects": 8, "seed": 7, "epochs": 12},
            {"id": "bolt-2", "objects": 6, "scenario": "flash-crowd",
             "access_rate": 150.0, "slo_target_pf": 0.4}
          ]
        }"#
    }

    #[test]
    fn parses_a_spec_with_defaults() {
        let spec = FleetSpec::parse(sample()).unwrap();
        assert_eq!(spec.checkpoint_every, 2);
        assert_eq!(spec.tenants.len(), 2);
        let acme = &spec.tenants[0];
        assert_eq!(acme.id, "acme");
        assert_eq!(acme.seed, 7);
        assert_eq!(acme.epochs, 12);
        assert_eq!(acme.scenario, "baseline");
        assert_eq!(acme.updates_per_period, 16.0);
        assert_eq!(acme.syncs_per_period, 4.0);
        let bolt = &spec.tenants[1];
        assert_eq!(bolt.scenario, "flash-crowd");
        assert_eq!(bolt.slo_target_pf, Some(0.4));
        assert!(bolt.engine_config().slo.is_some());
    }

    #[test]
    fn spec_round_trips_through_to_json() {
        let spec = FleetSpec::parse(sample()).unwrap();
        let again = FleetSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn tenant_problems_are_deterministic_and_scenario_specific() {
        let spec = FleetSpec::parse(sample()).unwrap();
        for t in &spec.tenants {
            assert_eq!(t.problem().unwrap(), t.problem().unwrap());
        }
        let a = spec.tenants[0].problem().unwrap();
        let b = spec.tenants[1].problem().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_bad_specs() {
        for (why, doc) in [
            ("no tenants", r#"{"tenants": []}"#),
            ("unknown root key", r#"{"tenantz": []}"#),
            (
                "unknown tenant key",
                r#"{"tenants": [{"id": "a", "objects": 4, "sede": 1}]}"#,
            ),
            (
                "duplicate id",
                r#"{"tenants": [{"id": "a", "objects": 4}, {"id": "a", "objects": 4}]}"#,
            ),
            (
                "reserved id",
                r#"{"tenants": [{"id": "_fleet", "objects": 4}]}"#,
            ),
            (
                "illegal id chars",
                r#"{"tenants": [{"id": "a b", "objects": 4}]}"#,
            ),
            (
                "zero objects",
                r#"{"tenants": [{"id": "a", "objects": 0}]}"#,
            ),
            (
                "bad scenario",
                r#"{"tenants": [{"id": "a", "objects": 4, "scenario": "tsunami"}]}"#,
            ),
            (
                "bad rate",
                r#"{"tenants": [{"id": "a", "objects": 4, "access_rate": -1}]}"#,
            ),
        ] {
            assert!(FleetSpec::parse(doc).is_err(), "accepted {why}: {doc}");
        }
    }

    #[test]
    fn serve_config_mirrors_the_tenant_engine_config() {
        let t = TenantSpec {
            seed: 9,
            failure_rate: 0.05,
            ..TenantSpec::new("t", 5)
        };
        let cfg = t.serve_config(PathBuf::from("/tmp/t.snapshot"));
        assert_eq!(cfg.engine, t.engine_config());
        assert_eq!(t.snapshot_file(), "t.snapshot");
    }
}
