//! The fleet snapshot manifest: one small CRC-framed binary file
//! (`fleet.manifest`) naming every tenant snapshot in the directory.
//!
//! Framing follows the v2 snapshot codec's rules: magic, version,
//! little-endian integers, length-prefixed strings bounded by `MAX_LEN`,
//! and a trailing CRC-32 over everything before it. Decoding is
//! validation-first — truncated, bit-flipped, or mis-versioned manifests
//! are [`CoreError::InvalidConfig`] before any entry is trusted.
//!
//! Each entry records the CRC of the tenant's snapshot *file bytes*, so
//! resume can detect a corrupted or swapped per-tenant snapshot without
//! decoding it — the quarantine path's first line of defense.

use std::path::Path;

use freshen_core::error::{CoreError, Result};
use freshen_serve::snapshot::crc32;

/// Magic bytes for the manifest file.
pub const MAGIC: [u8; 4] = *b"FRSM";
/// Manifest format version.
pub const VERSION: u32 = 1;
/// Bound on any length field, matching the snapshot codec.
const MAX_LEN: usize = 1 << 24;

/// One tenant's snapshot as recorded at the last fleet checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Tenant id.
    pub id: String,
    /// Snapshot file name, relative to the manifest's directory.
    pub file: String,
    /// CRC-32 of the snapshot file's bytes.
    pub crc: u32,
    /// Engine epoch the snapshot was taken at.
    pub epoch: u64,
}

/// The fleet checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Fleet rounds completed when this manifest was written.
    pub round: u64,
    /// Per-tenant snapshot records, in fleet (spec) order.
    pub entries: Vec<ManifestEntry>,
}

fn corrupt(what: &str) -> CoreError {
    CoreError::InvalidConfig(format!("fleet manifest: {what}"))
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u64()? as usize;
        if len > MAX_LEN {
            return Err(corrupt("string length out of bounds"));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }
}

impl Manifest {
    /// Serialize: header, round, entries, trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for entry in &self.entries {
            for s in [&entry.id, &entry.file] {
                out.extend_from_slice(&(s.len() as u64).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            out.extend_from_slice(&entry.crc.to_le_bytes());
            out.extend_from_slice(&entry.epoch.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Validate and decode.
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < MAGIC.len() + 4 + 4 {
            return Err(corrupt("truncated"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt("CRC mismatch"));
        }
        let mut dec = Dec {
            bytes: body,
            pos: 0,
        };
        if dec.take(4)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = dec.u32()?;
        if version != VERSION {
            return Err(corrupt(&format!(
                "unsupported version {version} (want {VERSION})"
            )));
        }
        let round = dec.u64()?;
        let count = dec.u64()? as usize;
        if count > MAX_LEN {
            return Err(corrupt("entry count out of bounds"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let id = dec.str()?;
            let file = dec.str()?;
            let crc = dec.u32()?;
            let epoch = dec.u64()?;
            entries.push(ManifestEntry {
                id,
                file,
                crc,
                epoch,
            });
        }
        if dec.pos != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Manifest { round, entries })
    }

    /// Look up a tenant's entry by id.
    pub fn entry(&self, id: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Write atomically: temp file + fsync + rename, like the snapshot
    /// codec.
    pub fn write_atomic(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.encode())
    }

    /// Read and decode a manifest file.
    pub fn read(path: &Path) -> Result<Manifest> {
        let bytes = std::fs::read(path).map_err(|e| {
            CoreError::InvalidConfig(format!(
                "cannot read fleet manifest {}: {e}",
                path.display()
            ))
        })?;
        Manifest::decode(&bytes)
    }
}

/// Atomic file write shared by the manifest and the fleet's per-tenant
/// snapshot writes (which reuse already-encoded bytes to CRC them).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| {
        CoreError::InvalidConfig(format!("cannot write {}: {e}", path.display()))
    };
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            round: 5,
            entries: vec![
                ManifestEntry {
                    id: "acme".into(),
                    file: "acme.snapshot".into(),
                    crc: 0xDEADBEEF,
                    epoch: 10,
                },
                ManifestEntry {
                    id: "bolt".into(),
                    file: "bolt.snapshot".into(),
                    crc: 7,
                    epoch: 3,
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(m, decoded);
        assert_eq!(decoded.entry("bolt").unwrap().epoch, 3);
        assert!(decoded.entry("nope").is_none());
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                Manifest::decode(&bad).is_err(),
                "bit flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_and_version_skew_are_clean_errors() {
        let bytes = sample().encode();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..cut]).is_err());
        }
        let mut wrong_version = sample().encode();
        wrong_version[4] = 9;
        let body_len = wrong_version.len() - 4;
        let crc = crc32(&wrong_version[..body_len]);
        wrong_version[body_len..].copy_from_slice(&crc.to_le_bytes());
        let err = Manifest::decode(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn writes_atomically_and_reads_back() {
        let dir = std::env::temp_dir().join("freshen-fleet-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.manifest");
        let m = sample();
        m.write_atomic(&path).unwrap();
        assert_eq!(Manifest::read(&path).unwrap(), m);
        assert!(!path.with_extension("tmp").exists());
    }
}
