//! The fleet runtime: N independent tenant engines stepped in
//! deterministic round-robin rounds behind one control plane.
//!
//! Each tenant is a private [`Engine`] with its own problem, budget,
//! seed, SLO rules, recorder, and snapshot file — exactly the state a
//! solo `freshen serve` run would hold. One fleet *round* steps every
//! unfinished tenant one epoch, in spec order; because each engine is a
//! deterministic pure function of its own inputs (regardless of the
//! shared executor's worker count), interleaving tenants cannot change
//! any tenant's trajectory, and every tenant's final report is
//! byte-identical to its same-seed solo run.
//!
//! Checkpoints happen only at round boundaries: every non-quarantined
//! tenant's v2 snapshot is written, then the CRC-checked
//! [`Manifest`] is written atomically last, so
//! a fleet killed at any boundary resumes to byte-identical reports. On
//! resume, a tenant whose snapshot fails the manifest CRC or snapshot
//! validation is *quarantined* — counted on `fleet.quarantined`,
//! journaled as a `fleet.quarantine` alert, and left unstepped — while
//! healthy tenants resume normally.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::Executor;
use freshen_core::problem::Problem;
use freshen_engine::stream::BoxedAccessStream;
use freshen_engine::{Engine, EngineReport, LiveAccessStream, LivePollSource};
use freshen_obs::{duration_us_buckets, prometheus, Health, Recorder};
use freshen_serve::snapshot::{crc32, SourceState};
use freshen_serve::{
    metrics_response, publish_engine_views, register_control_routes, ControlPlane, ControlShared,
    ExitReason, Request, Response, Router, Snapshot, SnapshotShape, ACCESS_SEED_SALT,
    POLL_SEED_SALT,
};

use crate::manifest::{self, Manifest, ManifestEntry};
use crate::spec::{FleetSpec, TenantSpec};

/// File name of the manifest inside a fleet snapshot directory.
pub const MANIFEST_FILE: &str = "fleet.manifest";
/// Reserved `tenant` label value for the fleet's own recorder in the
/// labeled Prometheus exposition (tenant ids may not start with `_`).
pub const FLEET_LABEL: &str = "_fleet";

/// Runtime knobs the spec does not carry (paths, listener, drain caps).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Control-plane bind address; `None` runs headless.
    pub listen: Option<String>,
    /// Directory for per-tenant snapshots and the manifest.
    pub snapshot_dir: PathBuf,
    /// Resume every tenant from this fleet snapshot directory.
    pub resume_dir: Option<PathBuf>,
    /// Stop (drain + checkpoint) after this many rounds in this process.
    pub drain_after: Option<usize>,
    /// Optional pause between rounds so control-plane probes can land
    /// mid-run in tests and demos.
    pub round_throttle: Option<Duration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            listen: None,
            snapshot_dir: PathBuf::from("fleet-snapshots"),
            resume_dir: None,
            drain_after: None,
            round_throttle: None,
        }
    }
}

/// One tenant's slice of a [`FleetOutcome`].
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant id.
    pub id: String,
    /// The final engine report — present only when the tenant completed
    /// all its epochs.
    pub report: Option<EngineReport>,
    /// True when the tenant was quarantined on resume.
    pub quarantined: bool,
    /// The tenant's engine epoch when the fleet returned.
    pub epoch: usize,
}

/// Outcome of a fleet run.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-tenant results, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Why the fleet loop returned.
    pub exit: ExitReason,
    /// Rounds stepped by this process (excludes restored rounds).
    pub rounds_run: usize,
    /// Tenant snapshot files written by this process.
    pub checkpoints: usize,
    /// Control-plane address, when one was bound.
    pub bound_addr: Option<SocketAddr>,
}

impl FleetOutcome {
    /// Per-tenant final reports as one JSON object keyed by id
    /// (quarantined or unfinished tenants map to `null`).
    pub fn reports_json(&self) -> String {
        let mut out = String::from("{");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": ", t.id));
            match &t.report {
                Some(report) => out.push_str(&report.to_json()),
                None => out.push_str("null"),
            }
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TenantState {
    Running,
    Completed,
    Quarantined,
}

struct Tenant {
    spec: TenantSpec,
    problem: Problem,
    engine: Engine,
    accesses: std::iter::Peekable<BoxedAccessStream>,
    source: LivePollSource,
    consumed: u64,
    recorder: Recorder,
    shared: Arc<ControlShared>,
    state: TenantState,
    checkpoints: usize,
    manifest_entry: Option<ManifestEntry>,
}

impl Tenant {
    fn state_str(&self) -> &'static str {
        match self.state {
            TenantState::Quarantined => "quarantined",
            TenantState::Completed => "completed",
            TenantState::Running => {
                if self.engine.epoch() >= self.spec.epochs {
                    "completed"
                } else {
                    "running"
                }
            }
        }
    }
}

/// A configured, bound (but not yet running) fleet.
pub struct Fleet {
    spec: FleetSpec,
    config: FleetConfig,
    recorder: Recorder,
    executor: Executor,
    listener: Option<TcpListener>,
    shared: Arc<ControlShared>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("tenants", &self.spec.tenants.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Validate the spec, create the snapshot directory, and bind the
    /// control-plane listener (if configured).
    pub fn new(spec: FleetSpec, config: FleetConfig) -> Result<Fleet> {
        spec.validate()?;
        std::fs::create_dir_all(&config.snapshot_dir).map_err(|e| {
            CoreError::InvalidConfig(format!(
                "cannot create snapshot dir {}: {e}",
                config.snapshot_dir.display()
            ))
        })?;
        let listener = match &config.listen {
            Some(addr) => Some(TcpListener::bind(addr).map_err(|e| {
                CoreError::InvalidConfig(format!("cannot bind control plane on `{addr}`: {e}"))
            })?),
            None => None,
        };
        Ok(Fleet {
            spec,
            config,
            recorder: Recorder::disabled(),
            executor: Executor::serial(),
            listener,
            shared: Arc::new(ControlShared::default()),
        })
    }

    /// Attach the fleet-level obs recorder. When enabled, every tenant
    /// also gets its own enabled recorder (the per-tenant label groups
    /// of the `/metrics` exposition).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach the shared executor pool the tenant engines step across.
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The bound control-plane address, when `listen` was configured.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Handle to the fleet-level control state (checkpoint/shutdown
    /// flags) for in-process callers.
    pub fn control(&self) -> Arc<ControlShared> {
        Arc::clone(&self.shared)
    }

    fn build_tenant(&self, spec: &TenantSpec) -> Result<Tenant> {
        let cfg = spec.engine_config();
        let problem = spec.problem()?;
        let horizon = cfg.horizon();
        let accesses: BoxedAccessStream = Box::new(LiveAccessStream::new(
            problem.access_probs(),
            spec.access_rate,
            cfg.seed ^ ACCESS_SEED_SALT,
            horizon,
        ));
        let source =
            LivePollSource::new(problem.change_rates(), cfg.seed ^ POLL_SEED_SALT, horizon)?;
        let recorder = if self.recorder.is_enabled() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
        let engine = Engine::new(&problem, cfg)?
            .with_recorder(recorder.clone())
            .with_executor(self.executor.clone());
        Ok(Tenant {
            spec: spec.clone(),
            problem,
            engine,
            accesses: accesses.peekable(),
            source,
            consumed: 0,
            recorder,
            shared: Arc::new(ControlShared::default()),
            state: TenantState::Running,
            checkpoints: 0,
            manifest_entry: None,
        })
    }

    /// Resume one tenant from the manifest + its snapshot file, or
    /// return the reason it cannot be trusted.
    fn resume_tenant(
        dir: &std::path::Path,
        manifest: &Manifest,
        tenant: &mut Tenant,
    ) -> Result<()> {
        let id = &tenant.spec.id;
        let entry = manifest.entry(id).ok_or_else(|| {
            CoreError::InvalidConfig(format!("tenant `{id}` missing from manifest"))
        })?;
        let expected_file = tenant.spec.snapshot_file();
        if entry.file != expected_file {
            return Err(CoreError::InvalidConfig(format!(
                "manifest names `{}` for tenant `{id}` (want `{expected_file}`)",
                entry.file
            )));
        }
        let path = dir.join(&entry.file);
        let bytes = std::fs::read(&path).map_err(|e| {
            CoreError::InvalidConfig(format!("cannot read snapshot {}: {e}", path.display()))
        })?;
        if crc32(&bytes) != entry.crc {
            return Err(CoreError::InvalidConfig(format!(
                "snapshot {} does not match the manifest CRC",
                path.display()
            )));
        }
        let snapshot = Snapshot::decode(&bytes)?;
        let cfg = tenant.spec.engine_config();
        snapshot.shape.matches(&cfg, tenant.problem.len())?;
        tenant.engine.restore_state(snapshot.engine)?;
        let SourceState::Live(state) = snapshot.source else {
            return Err(CoreError::InvalidConfig(
                "fleet tenants are live workloads but the snapshot holds a replay source".into(),
            ));
        };
        tenant.source = LivePollSource::restore(
            tenant.problem.change_rates(),
            cfg.seed ^ POLL_SEED_SALT,
            cfg.horizon(),
            &state,
        )?;
        for _ in 0..snapshot.accesses_consumed {
            match tenant.accesses.next() {
                Some(Ok(_)) => {}
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(CoreError::Inconsistent {
                        routine: "fleet-resume",
                        invariant: "snapshot consumed more accesses than the stream holds",
                    })
                }
            }
        }
        tenant.consumed = snapshot.accesses_consumed;
        tenant.manifest_entry = Some(entry.clone());
        tenant.recorder.counter("serve.resumes").inc();
        Ok(())
    }

    /// Run to completion or graceful drain. Consumes the fleet; the
    /// control plane (if any) is stopped before returning.
    pub fn run(mut self) -> Result<FleetOutcome> {
        let mut tenants: Vec<Tenant> = Vec::with_capacity(self.spec.tenants.len());
        for spec in &self.spec.tenants {
            tenants.push(self.build_tenant(spec)?);
        }

        let quarantine_counter = self.recorder.counter("fleet.quarantined");
        let mut round: u64 = 0;
        if let Some(dir) = self.config.resume_dir.clone() {
            let manifest = Manifest::read(&dir.join(MANIFEST_FILE))?;
            round = manifest.round;
            for tenant in &mut tenants {
                if let Err(err) = Fleet::resume_tenant(&dir, &manifest, tenant) {
                    tenant.state = TenantState::Quarantined;
                    quarantine_counter.inc();
                    let reason = err.to_string();
                    self.recorder.event(
                        "fleet.quarantine",
                        &[("tenant", &tenant.spec.id), ("reason", &reason)],
                    );
                }
            }
        }

        // Views + router before the first step so probes that land early
        // see coherent state.
        let summaries: Arc<Mutex<std::collections::BTreeMap<String, String>>> =
            Arc::new(Mutex::new(Default::default()));
        let tenants_view: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
        self.update_views(&tenants, round, 0, "running", &summaries, &tenants_view);

        let plane = match self.listener.take() {
            Some(listener) => {
                let router = self.build_router(&tenants, &summaries, &tenants_view);
                Some(
                    ControlPlane::start_router(listener, router, self.recorder.clone())
                        .map_err(|e| CoreError::InvalidConfig(format!("control plane: {e}")))?,
                )
            }
            None => None,
        };
        let bound_addr = plane.as_ref().map(ControlPlane::local_addr);

        let result = self.drive(&mut tenants, &mut round, &summaries, &tenants_view);
        if let Some(plane) = plane {
            plane.stop();
        }
        let (exit, rounds_run, checkpoints) = result?;

        let reports = tenants
            .iter()
            .map(|t| TenantReport {
                id: t.spec.id.clone(),
                report: (t.state != TenantState::Quarantined && t.engine.epoch() >= t.spec.epochs)
                    .then(|| t.engine.report()),
                quarantined: t.state == TenantState::Quarantined,
                epoch: t.engine.epoch(),
            })
            .collect();
        Ok(FleetOutcome {
            tenants: reports,
            exit,
            rounds_run,
            checkpoints,
            bound_addr,
        })
    }

    /// The round loop proper. Returns `(exit, rounds stepped here,
    /// snapshot files written)`.
    fn drive(
        &self,
        tenants: &mut [Tenant],
        round: &mut u64,
        summaries: &Arc<Mutex<std::collections::BTreeMap<String, String>>>,
        tenants_view: &Arc<Mutex<String>>,
    ) -> Result<(ExitReason, usize, usize)> {
        let rounds_counter = self.recorder.counter("fleet.rounds");
        let checkpoint_counter = self.recorder.counter("fleet.checkpoints");
        let mut rounds_run = 0usize;
        let mut checkpoints = 0usize;

        let exit = loop {
            let all_done = tenants
                .iter()
                .all(|t| t.state != TenantState::Running || t.engine.epoch() >= t.spec.epochs);
            if all_done {
                break ExitReason::Completed;
            }
            if self.shared.shutdown_requested.load(Ordering::SeqCst) {
                break ExitReason::Drained;
            }
            if self.config.drain_after.is_some_and(|cap| rounds_run >= cap) {
                break ExitReason::Drained;
            }

            for tenant in tenants.iter_mut() {
                if tenant.state != TenantState::Running
                    || tenant.engine.epoch() >= tenant.spec.epochs
                {
                    continue;
                }
                let stats = tenant
                    .engine
                    .step(&mut tenant.accesses, &mut tenant.source)?;
                tenant.consumed += stats.accesses;
                // Stamp control-plane load onto the finished epoch's
                // telemetry sample — wall-clock observations that never
                // feed back into scheduling (reports stay byte-identical
                // to solo runs).
                let requests = self.recorder.counter_value("serve.requests").unwrap_or(0);
                let p95 = self
                    .recorder
                    .histogram("serve.request_latency_us", &duration_us_buckets())
                    .quantile(0.95)
                    .unwrap_or(0.0);
                tenant
                    .engine
                    .annotate_requests(stats.index as u64, requests, p95);
                if tenant.engine.epoch() >= tenant.spec.epochs {
                    tenant.state = TenantState::Completed;
                }
            }
            rounds_run += 1;
            *round += 1;
            rounds_counter.inc();

            let on_cadence =
                self.spec.checkpoint_every > 0 && *round % self.spec.checkpoint_every as u64 == 0;
            let fleet_demand = self
                .shared
                .checkpoint_requested
                .swap(false, Ordering::SeqCst);
            let mut wrote = 0usize;
            for tenant in tenants.iter_mut() {
                let tenant_demand = tenant
                    .shared
                    .checkpoint_requested
                    .swap(false, Ordering::SeqCst);
                if tenant.state == TenantState::Quarantined {
                    continue;
                }
                if on_cadence || fleet_demand || tenant_demand {
                    self.write_tenant_snapshot(tenant)?;
                    wrote += 1;
                }
            }
            if wrote > 0 {
                self.write_manifest(tenants, *round)?;
                checkpoints += wrote;
                checkpoint_counter.add(wrote as u64);
            }
            self.update_views(
                tenants,
                *round,
                checkpoints,
                "running",
                summaries,
                tenants_view,
            );
            if let Some(pause) = self.config.round_throttle {
                std::thread::sleep(pause);
            }
        };

        if exit == ExitReason::Drained {
            // Drain contract: the in-flight round has finished, so the
            // final fleet checkpoint resumes at exactly this boundary.
            let mut wrote = 0usize;
            for tenant in tenants.iter_mut() {
                if tenant.state != TenantState::Quarantined {
                    self.write_tenant_snapshot(tenant)?;
                    wrote += 1;
                }
            }
            if wrote > 0 {
                self.write_manifest(tenants, *round)?;
                checkpoints += wrote;
                checkpoint_counter.add(wrote as u64);
            }
        }
        let state = match exit {
            ExitReason::Completed => "completed",
            ExitReason::Drained => "drained",
        };
        self.update_views(tenants, *round, checkpoints, state, summaries, tenants_view);
        Ok((exit, rounds_run, checkpoints))
    }

    fn write_tenant_snapshot(&self, tenant: &mut Tenant) -> Result<()> {
        let snapshot = Snapshot {
            shape: SnapshotShape::of(&tenant.spec.engine_config(), tenant.problem.len()),
            engine: tenant.engine.export_state(),
            source: SourceState::Live(tenant.source.state()),
            accesses_consumed: tenant.consumed,
        };
        let bytes = snapshot.encode();
        let file = tenant.spec.snapshot_file();
        manifest::write_atomic(&self.config.snapshot_dir.join(&file), &bytes)?;
        tenant.checkpoints += 1;
        tenant.recorder.counter("serve.checkpoints").inc();
        tenant.manifest_entry = Some(ManifestEntry {
            id: tenant.spec.id.clone(),
            file,
            crc: crc32(&bytes),
            epoch: tenant.engine.epoch() as u64,
        });
        Ok(())
    }

    /// Write the manifest covering every tenant that has a snapshot on
    /// disk — atomically, and last, so a kill between snapshot and
    /// manifest writes leaves the previous consistent checkpoint intact.
    fn write_manifest(&self, tenants: &[Tenant], round: u64) -> Result<()> {
        let manifest = Manifest {
            round,
            entries: tenants
                .iter()
                .filter_map(|t| t.manifest_entry.clone())
                .collect(),
        };
        manifest.write_atomic(&self.config.snapshot_dir.join(MANIFEST_FILE))
    }

    fn update_views(
        &self,
        tenants: &[Tenant],
        round: u64,
        checkpoints: usize,
        fleet_state: &str,
        summaries: &Arc<Mutex<std::collections::BTreeMap<String, String>>>,
        tenants_view: &Arc<Mutex<String>>,
    ) {
        let mut completed = 0usize;
        let mut quarantined = 0usize;
        let mut breached = 0usize;
        let mut rows = Vec::with_capacity(tenants.len());
        for tenant in tenants {
            let state = tenant.state_str();
            if state == "completed" {
                completed += 1;
            }
            if state == "quarantined" {
                quarantined += 1;
            } else {
                publish_engine_views(
                    &tenant.shared,
                    &tenant.engine,
                    tenant.spec.epochs,
                    tenant.problem.len(),
                    tenant.checkpoints,
                    state,
                );
            }
            if tenant.engine.health() == Health::Breach {
                breached += 1;
            }
            rows.push(format!(
                "{{\"id\": \"{}\", \"state\": \"{state}\", \"epoch\": {}, \"epochs\": {}, \"elements\": {}}}",
                tenant.spec.id,
                tenant.engine.epoch(),
                tenant.spec.epochs,
                tenant.problem.len(),
            ));
        }
        if let Ok(mut map) = summaries.lock() {
            map.clear();
            for (tenant, row) in tenants.iter().zip(&rows) {
                map.insert(tenant.spec.id.clone(), row.clone());
            }
        }
        if let Ok(mut view) = tenants_view.lock() {
            *view = format!("{{\"tenants\": [{}]}}", rows.join(", "));
        }
        let status = format!(
            "{{\"state\": \"{fleet_state}\", \"round\": {round}, \"tenants\": {}, \"completed\": {completed}, \"quarantined\": {quarantined}, \"checkpoints\": {checkpoints}}}",
            tenants.len(),
        );
        if let Ok(mut view) = self.shared.status.lock() {
            *view = status;
        }
        let health = format!(
            "{{\"state\": \"{}\", \"tenants\": {}, \"breached\": {breached}, \"quarantined\": {quarantined}}}\n",
            if breached > 0 { "breach" } else { "ok" },
            tenants.len(),
        );
        if let Ok(mut view) = self.shared.health.lock() {
            *view = health;
        }
        self.shared
            .health_breach
            .store(breached > 0, Ordering::SeqCst);
    }

    /// The fleet route table: fleet-level aggregates plus the full
    /// standard route set per tenant under `/tenants/<id>/...`.
    fn build_router(
        &self,
        tenants: &[Tenant],
        summaries: &Arc<Mutex<std::collections::BTreeMap<String, String>>>,
        tenants_view: &Arc<Mutex<String>>,
    ) -> Router {
        let mut router = Router::new();
        for tenant in tenants {
            register_control_routes(
                &mut router,
                &format!("/tenants/{}", tenant.spec.id),
                Arc::clone(&tenant.shared),
                tenant.recorder.clone(),
            );
        }
        {
            let view = Arc::clone(tenants_view);
            router.route("GET", "/tenants", move |_, _| {
                Response::json(200, view.lock().map(|v| v.clone()).unwrap_or_default())
            });
        }
        {
            let summaries = Arc::clone(summaries);
            router.route("GET", "/tenants/{id}", move |_, params| {
                let id = params.get("id").unwrap_or("");
                match summaries.lock().ok().and_then(|m| m.get(id).cloned()) {
                    Some(row) => Response::json(200, row),
                    None => Response::json(404, "{\"error\":\"no such tenant\"}"),
                }
            });
        }
        {
            let shared = Arc::clone(&self.shared);
            router.route("GET", "/status", move |_, _| {
                Response::json(
                    200,
                    shared.status.lock().map(|v| v.clone()).unwrap_or_default(),
                )
            });
        }
        {
            let shared = Arc::clone(&self.shared);
            router.route("GET", "/health", move |_, _| {
                let body = shared.health.lock().map(|v| v.clone()).unwrap_or_default();
                let status = if shared.health_breach.load(Ordering::SeqCst) {
                    503
                } else {
                    200
                };
                Response::json(status, body)
            });
        }
        {
            let fleet = self.recorder.clone();
            let groups: Vec<(String, Recorder)> = tenants
                .iter()
                .map(|t| (t.spec.id.clone(), t.recorder.clone()))
                .collect();
            router.route("GET", "/metrics", move |req: &Request, _| {
                match req.query_param("format") {
                    Some("prometheus") => {
                        let mut labeled: Vec<(&str, &Recorder)> =
                            Vec::with_capacity(groups.len() + 1);
                        labeled.push((FLEET_LABEL, &fleet));
                        for (id, rec) in &groups {
                            labeled.push((id.as_str(), rec));
                        }
                        Response::text(
                            200,
                            prometheus::CONTENT_TYPE,
                            prometheus::render_labeled("tenant", &labeled),
                        )
                    }
                    None | Some("json") => {
                        let empty =
                            || "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}".to_string();
                        let mut body = String::from("{\"fleet\": ");
                        body.push_str(&fleet.metrics_json().unwrap_or_else(empty));
                        body.push_str(", \"tenants\": {");
                        for (i, (id, rec)) in groups.iter().enumerate() {
                            if i > 0 {
                                body.push_str(", ");
                            }
                            body.push_str(&format!("\"{id}\": "));
                            body.push_str(&rec.metrics_json().unwrap_or_else(empty));
                        }
                        body.push_str("}}");
                        Response::json(200, body)
                    }
                    Some(_) => metrics_response(req, &fleet),
                }
            });
        }
        {
            let shared = Arc::clone(&self.shared);
            router.route("POST", "/checkpoint", move |_, _| {
                shared.checkpoint_requested.store(true, Ordering::SeqCst);
                Response::json(200, "{\"ok\": true, \"action\": \"checkpoint\"}")
            });
        }
        {
            let shared = Arc::clone(&self.shared);
            router.route("POST", "/shutdown", move |_, _| {
                shared.shutdown_requested.store(true, Ordering::SeqCst);
                Response::json(200, "{\"ok\": true, \"action\": \"shutdown\"}")
            });
        }
        router
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshen_serve::{request, request_full, ServeOutcome, Server};

    fn spec() -> FleetSpec {
        FleetSpec::new(vec![
            TenantSpec {
                seed: 7,
                epochs: 6,
                ..TenantSpec::new("acme", 6)
            },
            TenantSpec {
                seed: 11,
                epochs: 8,
                scenario: "flash-crowd".into(),
                ..TenantSpec::new("bolt", 5)
            },
        ])
        .unwrap()
    }

    fn config(dir: &str) -> FleetConfig {
        let root = std::env::temp_dir()
            .join("freshen-fleet-runtime-test")
            .join(dir);
        let _ = std::fs::remove_dir_all(&root);
        FleetConfig {
            snapshot_dir: root,
            ..FleetConfig::default()
        }
    }

    fn solo_report(tenant: &TenantSpec, dir: &std::path::Path) -> String {
        let path = dir.join(format!("solo-{}", tenant.snapshot_file()));
        let outcome: ServeOutcome =
            Server::new(tenant.workload().unwrap(), tenant.serve_config(path))
                .unwrap()
                .run()
                .unwrap();
        outcome.report.unwrap().to_json()
    }

    #[test]
    fn tenant_reports_are_byte_identical_to_solo_runs() {
        let spec = spec();
        let config = config("parity");
        let dir = config.snapshot_dir.clone();
        let outcome = Fleet::new(spec.clone(), config).unwrap().run().unwrap();
        assert_eq!(outcome.exit, ExitReason::Completed);
        for (tenant, result) in spec.tenants.iter().zip(&outcome.tenants) {
            assert_eq!(
                result.report.as_ref().unwrap().to_json(),
                solo_report(tenant, &dir),
                "tenant `{}` diverged from its solo run",
                tenant.id
            );
        }
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        let spec = spec();
        let reference: Vec<String> = {
            let outcome = Fleet::new(spec.clone(), config("resume-ref"))
                .unwrap()
                .run()
                .unwrap();
            outcome
                .tenants
                .iter()
                .map(|t| t.report.as_ref().unwrap().to_json())
                .collect()
        };

        let config_a = config("resume");
        let dir = config_a.snapshot_dir.clone();
        let first = Fleet::new(
            spec.clone(),
            FleetConfig {
                drain_after: Some(3),
                ..config_a.clone()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(first.exit, ExitReason::Drained);
        assert_eq!(first.rounds_run, 3);
        assert!(dir.join(MANIFEST_FILE).exists());

        let resumed = Fleet::new(
            spec,
            FleetConfig {
                resume_dir: Some(dir),
                ..config_a
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(resumed.exit, ExitReason::Completed);
        let got: Vec<String> = resumed
            .tenants
            .iter()
            .map(|t| t.report.as_ref().unwrap().to_json())
            .collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn corrupt_tenant_is_quarantined_while_the_rest_resume() {
        let spec = spec();
        let config_a = config("quarantine");
        let dir = config_a.snapshot_dir.clone();
        Fleet::new(
            spec.clone(),
            FleetConfig {
                drain_after: Some(2),
                ..config_a.clone()
            },
        )
        .unwrap()
        .run()
        .unwrap();

        // Flip a byte mid-snapshot: the manifest CRC must catch it.
        let victim = dir.join(spec.tenants[0].snapshot_file());
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();

        let recorder = Recorder::enabled();
        let outcome = Fleet::new(
            spec.clone(),
            FleetConfig {
                resume_dir: Some(dir),
                ..config_a
            },
        )
        .unwrap()
        .with_recorder(recorder.clone())
        .run()
        .unwrap();
        assert_eq!(outcome.exit, ExitReason::Completed);
        assert!(outcome.tenants[0].quarantined);
        assert!(outcome.tenants[0].report.is_none());
        assert!(!outcome.tenants[1].quarantined);
        assert!(outcome.tenants[1].report.is_some());
        assert_eq!(recorder.counter_value("fleet.quarantined"), Some(1));
        let trace = recorder.chrome_trace_json().unwrap();
        assert!(trace.contains("fleet.quarantine"), "{trace}");
        assert!(trace.contains("acme"), "{trace}");
    }

    #[test]
    fn control_plane_serves_fleet_and_tenant_routes() {
        let mut spec = spec();
        for tenant in &mut spec.tenants {
            tenant.epochs = 300;
        }
        let fleet = Fleet::new(
            spec,
            FleetConfig {
                listen: Some("127.0.0.1:0".into()),
                round_throttle: Some(Duration::from_millis(2)),
                ..config("http")
            },
        )
        .unwrap()
        .with_recorder(Recorder::enabled());
        let addr = fleet.local_addr().unwrap();
        let runner = std::thread::spawn(move || fleet.run().unwrap());

        let (status, body) = request(addr, "GET", "/tenants").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"acme\"") && body.contains("\"bolt\""),
            "{body}"
        );

        let (status, body) = request(addr, "GET", "/tenants/acme/status").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"epochs\": 300"), "{body}");
        let (status, body) = request(addr, "GET", "/tenants/bolt").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"bolt\""), "{body}");
        let (status, _) = request(addr, "GET", "/tenants/nope").unwrap();
        assert_eq!(status, 404);

        let (status, headers, _) = request_full(addr, "DELETE", "/status").unwrap();
        assert_eq!(status, 405);
        assert!(headers.contains("Allow: GET"), "{headers}");

        let (status, body) = request(addr, "GET", "/metrics?format=prometheus").unwrap();
        assert_eq!(status, 200);
        prometheus::validate_exposition(&body).unwrap();
        assert!(body.contains("tenant=\"_fleet\""), "{body}");
        assert!(body.contains("tenant=\"acme\""), "{body}");

        let (status, body) = request(addr, "GET", "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"fleet\": "), "{body}");
        assert!(body.contains("\"tenants\": {"), "{body}");

        let (status, _) = request(addr, "POST", "/shutdown").unwrap();
        assert_eq!(status, 200);
        let outcome = runner.join().unwrap();
        assert_eq!(outcome.exit, ExitReason::Drained);
        assert!(outcome.checkpoints >= 2, "drain snapshots every tenant");
    }
}
