//! `freshen-fleet`: multi-tenant fleet serving behind one control plane.
//!
//! A fleet drives N independent tenants — each its own
//! [`freshen-engine`](freshen_engine) with a private problem, budget,
//! seed, SLO rules, and snapshot file — in deterministic round-robin
//! rounds across one shared [`Executor`](freshen_core::exec::Executor)
//! pool, behind a single extended HTTP control plane:
//!
//! | route                          | effect                             |
//! |--------------------------------|------------------------------------|
//! | `GET /tenants`                 | the tenant roster with states      |
//! | `GET /tenants/{id}`            | one tenant's summary row           |
//! | `GET /tenants/{id}/status`     | the standard single-engine route   |
//! |   (`/schedule`, `/metrics`, `/health`, `/timeseries`,              |
//! |   `POST .../checkpoint`)       |   set, per tenant                  |
//! | `GET /status`                  | fleet aggregate (round, counts)    |
//! | `GET /metrics`                 | nested JSON; `?format=prometheus`  |
//! |                                | is one labeled exposition with a   |
//! |                                | `tenant="<id>"` dimension          |
//! | `GET /health`                  | 503 if any tenant's SLO breaches   |
//! | `POST /checkpoint`, `/shutdown`| fleet-wide flag latches            |
//!
//! Three pieces:
//!
//! 1. **The spec** ([`spec`], on a hand-rolled [`json`] reader so it
//!    parses under the offline serde stub) — declares tenants, workload
//!    generators (baseline Zipf or the named stress scenarios),
//!    budgets, seeds, and the checkpoint cadence.
//! 2. **Fleet snapshots** ([`manifest`]) — a directory of per-tenant v2
//!    snapshots plus a CRC-checked manifest, written atomically and
//!    last, so a fleet killed at any round boundary resumes cleanly.
//! 3. **The runtime** ([`runtime`]) — the round loop, the quarantine
//!    path for tenants whose snapshots fail validation on resume, and
//!    the route table.
//!
//! The determinism-per-tenant invariant holds fleet-wide: each engine
//! is a pure function of its own seeded inputs, so interleaving tenants
//! (or probing the control plane) cannot change any tenant's
//! trajectory, and every tenant's final report is **byte-identical** to
//! a same-seed solo `freshen serve` run — killed and resumed or not.
//!
//! ```
//! use freshen_fleet::{Fleet, FleetConfig, FleetSpec, TenantSpec};
//!
//! let spec = FleetSpec::new(vec![
//!     TenantSpec::new("acme", 8),
//!     TenantSpec::new("bolt", 6),
//! ])
//! .unwrap();
//! let dir = std::env::temp_dir().join("freshen-fleet-doc");
//! let config = FleetConfig { snapshot_dir: dir, ..FleetConfig::default() };
//! let outcome = Fleet::new(spec, config).unwrap().run().unwrap();
//! assert_eq!(outcome.tenants.len(), 2);
//! assert!(outcome.tenants.iter().all(|t| t.report.is_some()));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod manifest;
pub mod runtime;
pub mod spec;

pub use freshen_core::json;
pub use freshen_core::json::Json;
pub use manifest::{Manifest, ManifestEntry};
pub use runtime::{Fleet, FleetConfig, FleetOutcome, TenantReport, FLEET_LABEL, MANIFEST_FILE};
pub use spec::{FleetSpec, TenantSpec};
