//! Source and mirror state: versioned copies.
//!
//! Versions are monotone counters: the source bumps an element's version on
//! every update; the mirror records the version it copied at its last sync.
//! An element is *fresh* at the mirror exactly when the two match
//! (Definition 1 of the paper — freshness is binary).

use serde::{Deserialize, Serialize};

/// The authoritative data source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Source {
    versions: Vec<u64>,
    total_updates: u64,
}

impl Source {
    /// A source with `n` elements, all at version 0.
    pub fn new(n: usize) -> Self {
        Source {
            versions: vec![0; n],
            total_updates: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True for a zero-element source.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Apply one update to `element` (bumps its version).
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn update(&mut self, element: usize) {
        self.versions[element] += 1;
        self.total_updates += 1;
    }

    /// The element's current version.
    pub fn version(&self, element: usize) -> u64 {
        self.versions[element]
    }

    /// Total updates applied so far.
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }
}

/// The mirror: local copies identified by the source version they reflect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mirror {
    synced_versions: Vec<u64>,
    total_syncs: u64,
}

impl Mirror {
    /// A mirror of `n` elements, initially in sync with a fresh source
    /// (both at version 0).
    pub fn new(n: usize) -> Self {
        Mirror {
            synced_versions: vec![0; n],
            total_syncs: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.synced_versions.len()
    }

    /// True for a zero-element mirror.
    pub fn is_empty(&self) -> bool {
        self.synced_versions.is_empty()
    }

    /// Poll the source for `element`: copy its current version.
    /// Returns `true` when the local copy actually changed (the poll found
    /// new content) — the signal a change-rate estimator consumes.
    ///
    /// # Panics
    /// Panics when `element` is out of range or mirrors a different source
    /// size.
    pub fn sync(&mut self, element: usize, source: &Source) -> bool {
        assert_eq!(self.len(), source.len(), "mirror/source size mismatch");
        self.total_syncs += 1;
        let new = source.version(element);
        let changed = self.synced_versions[element] != new;
        self.synced_versions[element] = new;
        changed
    }

    /// Install a specific version snapshot for `element` — used by the
    /// link-transfer model, where the content read at transfer *start* is
    /// what arrives at transfer *completion* (and may already be stale by
    /// then). Returns `true` when the local copy actually changed.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn apply_version(&mut self, element: usize, version: u64) -> bool {
        self.total_syncs += 1;
        let changed = self.synced_versions[element] != version;
        self.synced_versions[element] = version;
        changed
    }

    /// Is the local copy up to date (Definition 1)?
    pub fn is_fresh(&self, element: usize, source: &Source) -> bool {
        self.synced_versions[element] == source.version(element)
    }

    /// Fraction of copies currently fresh (Definition 2 at an instant).
    pub fn database_freshness(&self, source: &Source) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let fresh = (0..self.len())
            .filter(|&i| self.is_fresh(i, source))
            .count();
        fresh as f64 / self.len() as f64
    }

    /// Total sync operations performed.
    pub fn total_syncs(&self) -> u64 {
        self.total_syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fresh() {
        let s = Source::new(3);
        let m = Mirror::new(3);
        assert!((0..3).all(|i| m.is_fresh(i, &s)));
        assert_eq!(m.database_freshness(&s), 1.0);
    }

    #[test]
    fn update_stales_copy() {
        let mut s = Source::new(2);
        let m = Mirror::new(2);
        s.update(0);
        assert!(!m.is_fresh(0, &s));
        assert!(m.is_fresh(1, &s));
        assert_eq!(m.database_freshness(&s), 0.5);
    }

    #[test]
    fn sync_restores_freshness_and_reports_change() {
        let mut s = Source::new(1);
        let mut m = Mirror::new(1);
        s.update(0);
        assert!(m.sync(0, &s), "poll detects the change");
        assert!(m.is_fresh(0, &s));
        assert!(!m.sync(0, &s), "second poll finds nothing new");
    }

    #[test]
    fn multiple_updates_between_syncs_count_once() {
        let mut s = Source::new(1);
        let mut m = Mirror::new(1);
        s.update(0);
        s.update(0);
        s.update(0);
        assert!(m.sync(0, &s));
        assert!(m.is_fresh(0, &s));
        assert_eq!(s.total_updates(), 3);
        assert_eq!(m.total_syncs(), 1);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let s = Source::new(2);
        let mut m = Mirror::new(3);
        m.sync(0, &s);
    }
}
