//! The simulation event model: a time-ordered queue of typed events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at a simulation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The source copy of the element changes.
    Update,
    /// The mirror polls the element (a scheduled refresh).
    Sync,
    /// A user reads the element from the mirror.
    Access,
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time (periods).
    pub time: f64,
    /// Event type.
    pub kind: EventKind,
    /// Target element.
    pub element: usize,
}

/// Min-heap event queue with deterministic tie-breaking.
///
/// Ties in time are broken by insertion sequence, so a simulation's event
/// order is a pure function of the pushed events — replaying a seed yields
/// byte-identical traces.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    event: Event,
    seq: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.event.time == other.event.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; tie-break on sequence (FIFO).
        other
            .event
            .time
            .partial_cmp(&self.event.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event.
    ///
    /// # Panics
    /// Panics on a non-finite time.
    pub fn push(&mut self, event: Event) {
        assert!(event.time.is_finite(), "event time must be finite");
        self.heap.push(Entry {
            event,
            seq: self.seq,
        });
        self.seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|e| e.event)
    }

    /// Peek at the earliest event's time.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.event.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 3.0,
            kind: EventKind::Update,
            element: 0,
        });
        q.push(Event {
            time: 1.0,
            kind: EventKind::Sync,
            element: 1,
        });
        q.push(Event {
            time: 2.0,
            kind: EventKind::Access,
            element: 2,
        });
        assert_eq!(q.pop().unwrap().time, 1.0);
        assert_eq!(q.pop().unwrap().time, 2.0);
        assert_eq!(q.pop().unwrap().time, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 1.0,
            kind: EventKind::Update,
            element: 10,
        });
        q.push(Event {
            time: 1.0,
            kind: EventKind::Sync,
            element: 20,
        });
        q.push(Event {
            time: 1.0,
            kind: EventKind::Access,
            element: 30,
        });
        assert_eq!(q.pop().unwrap().element, 10);
        assert_eq!(q.pop().unwrap().element, 20);
        assert_eq!(q.pop().unwrap().element, 30);
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(Event {
            time: 5.0,
            kind: EventKind::Update,
            element: 0,
        });
        assert_eq!(q.next_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: f64::NAN,
            kind: EventKind::Update,
            element: 0,
        });
    }
}
