//! The simulation driver: wires generators, schedule, state, and evaluator
//! into one deterministic event loop.

use serde::{Deserialize, Serialize};

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::Executor;
use freshen_core::policy::SyncPolicy;
use freshen_core::problem::Problem;
use freshen_core::schedule::ScheduleStream;
use freshen_obs::Recorder;

use crate::evaluator::FreshnessEvaluator;
use crate::generators::{AccessGenerator, UpdateGenerator};
use crate::state::{Mirror, Source};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Measured simulation length, in periods.
    pub periods: f64,
    /// Warm-up length, in periods, excluded from all metrics (lets the
    /// all-fresh initial state decay to steady state).
    pub warmup_periods: f64,
    /// Total user requests per period (drives the access-scored metric's
    /// sample count).
    pub accesses_per_period: f64,
    /// Seed; the whole simulation is a pure function of problem,
    /// frequencies, config, and this value.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            periods: 20.0,
            warmup_periods: 2.0,
            accesses_per_period: 1000.0,
            seed: 0,
        }
    }
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Closed-form expectation `Σ pᵢ·F̄(λᵢ, fᵢ)` (the analytic evaluator
    /// mode).
    pub analytic_pf: f64,
    /// Time-integrated perceived freshness over the measured window.
    pub time_averaged_pf: f64,
    /// Access-scored perceived freshness (Definition 3); `None` when no
    /// access landed in the measured window.
    pub access_pf: Option<f64>,
    /// Updates applied during the whole run (including warm-up).
    pub updates: u64,
    /// Sync operations performed.
    pub syncs: u64,
    /// Accesses scored (measured window only).
    pub accesses: u64,
    /// Per-element polls performed (for change-rate estimation studies).
    pub polls: Vec<u64>,
    /// Per-element polls that found changed content.
    pub polls_changed: Vec<u64>,
    /// Per-element accesses in the measured window (the raw material for
    /// profile learning from the request log, §7).
    pub access_counts: Vec<u64>,
    /// Fraction of the run the mirror–source link spent transferring
    /// (`None` when transfers are modeled as instantaneous).
    pub link_utilization: Option<f64>,
    /// Closed-form perceived age `Σ pᵢ·Ā(λᵢ, fᵢ)` under the configured
    /// policy (infinite when a weighted element gets zero bandwidth).
    pub analytic_age: f64,
    /// Time-integrated perceived age over the measured window.
    pub time_averaged_age: f64,
}

/// A configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation {
    problem: Problem,
    frequencies: Vec<f64>,
    config: SimConfig,
    sync_policy: SyncPolicy,
    link_capacity: Option<f64>,
    recorder: Recorder,
    executor: Executor,
}

/// Which stream owns the earliest pending event.
///
/// Ties follow the original dispatch priority: updates before link events
/// before syncs before accesses, so an access at time t sees the state
/// *after* a coincident refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextEvent {
    Update,
    Link,
    Sync,
    Access,
}

impl NextEvent {
    /// Pick the stream owning the earliest event, or `None` when every
    /// stream is exhausted (all times infinite).
    fn select(tu: f64, ta: f64, ts: f64, tl: f64) -> Option<(f64, NextEvent)> {
        let t = tu.min(ta).min(ts).min(tl);
        if !t.is_finite() {
            return None;
        }
        let kind = if tu <= ta && tu <= ts && tu <= tl {
            NextEvent::Update
        } else if tl <= ts && tl <= ta {
            NextEvent::Link
        } else if ts <= ta {
            NextEvent::Sync
        } else {
            NextEvent::Access
        };
        Some((t, kind))
    }

    fn name(self) -> &'static str {
        match self {
            NextEvent::Update => "update",
            NextEvent::Link => "link",
            NextEvent::Sync => "sync",
            NextEvent::Access => "access",
        }
    }
}

/// A pending link transfer event (FIFO single-link model).
#[derive(Debug, PartialEq)]
enum LinkEvent {
    /// Transfer begins: snapshot the source content.
    Start { element: usize },
    /// Transfer ends: install the snapshot at the mirror.
    Complete { element: usize, snapshot: u64 },
}

#[derive(Debug, PartialEq)]
struct TimedLinkEvent {
    time: f64,
    seq: u64,
    event: LinkEvent,
}
impl Eq for TimedLinkEvent {}
impl Ord for TimedLinkEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for TimedLinkEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The sync-request stream under either policy.
///
/// Boxed: a single stream lives per simulation run, and boxing keeps the
/// variant sizes (and the enum) small.
enum SyncStream {
    /// Evenly spaced per-element refreshes (the paper's Fixed Order).
    Fixed(Box<ScheduleStream>),
    /// Memoryless refreshes at the same rates (the ablation policy).
    Poisson(Box<UpdateGenerator>),
}

impl SyncStream {
    fn next_event(&mut self, horizon: f64) -> Option<(f64, usize)> {
        match self {
            SyncStream::Fixed(s) => s.next().map(|op| (op.time, op.element)),
            SyncStream::Poisson(g) => g.next_event(horizon),
        }
    }
}

impl Simulation {
    /// Validate inputs and build a simulation.
    pub fn new(problem: &Problem, frequencies: &[f64], config: SimConfig) -> Result<Self> {
        if frequencies.len() != problem.len() {
            return Err(CoreError::LengthMismatch {
                what: "frequencies",
                expected: problem.len(),
                actual: frequencies.len(),
            });
        }
        for (i, &f) in frequencies.iter().enumerate() {
            if !f.is_finite() || f < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "frequencies",
                    index: Some(i),
                    value: f,
                });
            }
        }
        for (what, v) in [
            ("periods", config.periods),
            ("accesses_per_period", config.accesses_per_period),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what,
                    index: None,
                    value: v,
                });
            }
        }
        if !config.warmup_periods.is_finite() || config.warmup_periods < 0.0 {
            return Err(CoreError::InvalidValue {
                what: "warmup_periods",
                index: None,
                value: config.warmup_periods,
            });
        }
        Ok(Simulation {
            problem: problem.clone(),
            frequencies: frequencies.to_vec(),
            config,
            sync_policy: SyncPolicy::FixedOrder,
            link_capacity: None,
            recorder: Recorder::disabled(),
            executor: Executor::serial(),
        })
    }

    /// Model the mirror–source link explicitly: transfers are serialized
    /// FIFO through a single link of `capacity` size-units per period, a
    /// refresh of object `i` occupies it for `sizeᵢ/capacity` periods, and
    /// the content *read at transfer start* is what arrives at completion
    /// (so it can already be stale on arrival).
    ///
    /// Without this, refreshes are instantaneous — the paper's
    /// abstraction, which this mode exists to stress-test: a schedule
    /// whose planned load `Σ sᵢfᵢ` fits well inside `capacity` behaves
    /// almost identically, while an overloaded link queues transfers and
    /// freshness collapses.
    ///
    /// # Panics
    /// Panics when `capacity` is not positive and finite.
    pub fn with_link_capacity(mut self, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive"
        );
        self.link_capacity = Some(capacity);
        self
    }

    /// Use a different synchronization policy (default: Fixed Order).
    ///
    /// Under [`SyncPolicy::Poisson`] the same per-element frequencies
    /// drive a memoryless refresh process instead of an even timetable —
    /// the ablation showing *why* the paper adopts Fixed Order.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Attach an observability recorder. The default is the disabled
    /// recorder, whose per-event cost in the loop is a single branch.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Run the O(N) setup and closed-form scoring passes (evaluator
    /// profile mass, access CDF build, analytic PF/age in the report) on
    /// `executor`. The event loop itself is inherently sequential — events
    /// must dispatch in time order — and is untouched, so results are
    /// identical at any worker count.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Execute the event loop and report the measurements.
    ///
    /// Returns [`CoreError::Inconsistent`] when event selection disagrees
    /// with stream state — an internal invariant violation that earlier
    /// revisions turned into a panic. Surfacing it as an error lets batch
    /// sweeps fail one scenario and continue.
    pub fn run(&self) -> Result<SimReport> {
        let n = self.problem.len();
        // Structure-of-arrays view of the problem: the event loop reads
        // `cols.s[element]` per link event and the generators sweep the
        // `p`/`λ` columns linearly, so everything below iterates
        // contiguous column slices rather than re-borrowing the problem.
        let cols = self.problem.columns();
        let horizon = self.config.warmup_periods + self.config.periods;

        // Instrumentation handles: registered once here, each a no-op when
        // the recorder is disabled. Names referenced by the CLI exporters
        // and the bench telemetry aggregator.
        let rec = &self.recorder;
        let mut run_span = rec.span("sim.run");
        run_span.arg("n", n);
        run_span.arg("horizon", horizon);
        let c_total = rec.counter("events_total");
        let c_update = rec.counter("sim.events.update");
        let c_sync = rec.counter("sim.events.sync");
        let c_access = rec.counter("sim.events.access");
        let c_link = rec.counter("sim.events.link");
        let h_queue = rec.histogram("sim.link_queue_depth", &freshen_obs::count_buckets());
        let wall_start = std::time::Instant::now();
        let inconsistent = |invariant: &'static str| {
            rec.event("sim.inconsistent", &[("invariant", &invariant)]);
            CoreError::Inconsistent {
                routine: "simulation",
                invariant,
            }
        };
        /// Journal one of every `JOURNAL_SAMPLE` dispatches so the bounded
        /// journal sketches the event interleaving without flooding.
        const JOURNAL_SAMPLE: u64 = 4096;

        let mut source = Source::new(n);
        let mut mirror = Mirror::new(n);
        let mut evaluator = FreshnessEvaluator::with_executor(cols.p, &self.executor);

        // Independent streams with decorrelated seeds.
        let mut updates = UpdateGenerator::new(cols.lambda, self.config.seed ^ 0x5eed_0001);
        let mut accesses = AccessGenerator::new_with_executor(
            cols.p,
            self.config.accesses_per_period,
            self.config.seed ^ 0x5eed_0002,
            &self.executor,
        );
        let mut syncs = match self.sync_policy {
            SyncPolicy::FixedOrder => {
                SyncStream::Fixed(Box::new(ScheduleStream::new(&self.frequencies, horizon)))
            }
            SyncPolicy::Poisson => SyncStream::Poisson(Box::new(UpdateGenerator::new(
                &self.frequencies,
                self.config.seed ^ 0x5eed_0003,
            ))),
        };

        let mut polls = vec![0u64; n];
        let mut polls_changed = vec![0u64; n];
        let mut access_counts = vec![0u64; n];
        let mut measured_accesses = 0u64;
        let mut measuring = self.config.warmup_periods == 0.0;
        if measuring {
            evaluator.start_measurement(0.0);
        }

        // Link-transfer model state (None ⇒ instantaneous refreshes).
        let mut link_events: std::collections::BinaryHeap<TimedLinkEvent> =
            std::collections::BinaryHeap::new();
        let mut link_seq = 0u64;
        let mut link_free_at = 0.0f64;
        let mut link_busy_time = 0.0f64;

        // Pull-merge the event streams in time order.
        let mut next_update = updates.next_event(horizon);
        let mut next_access = accesses.next_event(horizon);
        let mut next_sync = syncs.next_event(horizon);

        loop {
            // Earliest pending event across the streams.
            let tu = next_update.map(|(t, _)| t).unwrap_or(f64::INFINITY);
            let ta = next_access.map(|(t, _)| t).unwrap_or(f64::INFINITY);
            let ts = next_sync.map(|(t, _)| t).unwrap_or(f64::INFINITY);
            let tl = link_events.peek().map(|e| e.time).unwrap_or(f64::INFINITY);
            let Some((t, kind)) = NextEvent::select(tu, ta, ts, tl) else {
                break;
            };
            if t >= horizon {
                break;
            }
            if !measuring && t >= self.config.warmup_periods {
                evaluator.start_measurement(self.config.warmup_periods);
                measuring = true;
                rec.event("sim.measurement_start", &[("t", &t)]);
            }
            c_total.inc();
            if c_total.get() % JOURNAL_SAMPLE == 1 && rec.is_enabled() {
                rec.event("sim.dispatch", &[("kind", &kind.name()), ("t", &t)]);
            }
            match kind {
                NextEvent::Update => {
                    let (time, element) = next_update
                        .ok_or_else(|| inconsistent("tu finite implies update pending"))?;
                    c_update.inc();
                    source.update(element);
                    evaluator.on_update(time, element);
                    next_update = updates.next_event(horizon);
                }
                NextEvent::Link => {
                    let TimedLinkEvent { time, event, .. } = link_events
                        .pop()
                        .ok_or_else(|| inconsistent("tl finite implies link event pending"))?;
                    c_link.inc();
                    h_queue.observe(link_events.len() as f64);
                    match event {
                        LinkEvent::Start { element } => {
                            // Content is read at transfer start; it arrives
                            // (and may already be stale) at completion.
                            let capacity = self
                                .link_capacity
                                .ok_or_else(|| inconsistent("link events imply a link"))?;
                            let duration = cols.s[element] / capacity;
                            link_events.push(TimedLinkEvent {
                                time: time + duration,
                                seq: link_seq,
                                event: LinkEvent::Complete {
                                    element,
                                    snapshot: source.version(element),
                                },
                            });
                            link_seq += 1;
                        }
                        LinkEvent::Complete { element, snapshot } => {
                            let changed = mirror.apply_version(element, snapshot);
                            polls[element] += 1;
                            if changed {
                                polls_changed[element] += 1;
                            }
                            let up_to_date = snapshot == source.version(element);
                            evaluator.on_sync_applied(time, element, up_to_date);
                        }
                    }
                }
                NextEvent::Sync => {
                    let (time, element) =
                        next_sync.ok_or_else(|| inconsistent("ts finite implies sync pending"))?;
                    c_sync.inc();
                    match self.link_capacity {
                        None => {
                            // Instantaneous refresh (the paper's abstraction).
                            let changed = mirror.sync(element, &source);
                            polls[element] += 1;
                            if changed {
                                polls_changed[element] += 1;
                            }
                            evaluator.on_sync(time, element);
                        }
                        Some(capacity) => {
                            // Enqueue the transfer on the FIFO link.
                            let start = time.max(link_free_at);
                            let duration = cols.s[element] / capacity;
                            link_free_at = start + duration;
                            // Busy-time accounting clips at the horizon so a
                            // backlogged queue cannot report utilization > 1.
                            link_busy_time += link_free_at.min(horizon) - start.min(horizon);
                            link_events.push(TimedLinkEvent {
                                time: start,
                                seq: link_seq,
                                event: LinkEvent::Start { element },
                            });
                            link_seq += 1;
                            h_queue.observe(link_events.len() as f64);
                        }
                    }
                    next_sync = syncs.next_event(horizon);
                }
                NextEvent::Access => {
                    let (time, element) = next_access
                        .ok_or_else(|| inconsistent("ta finite implies access pending"))?;
                    c_access.inc();
                    evaluator.on_access(time, element);
                    if evaluator.is_measuring() {
                        measured_accesses += 1;
                        access_counts[element] += 1;
                    }
                    next_access = accesses.next_event(horizon);
                }
            }
        }
        if !measuring {
            evaluator.start_measurement(self.config.warmup_periods.min(horizon));
        }
        evaluator.finish(horizon);

        let report = SimReport {
            analytic_pf: self.problem.perceived_freshness_with_exec(
                self.sync_policy,
                &self.frequencies,
                &self.executor,
            ),
            time_averaged_pf: evaluator.time_averaged_pf().unwrap_or(0.0),
            access_pf: evaluator.access_pf(),
            updates: source.total_updates(),
            syncs: mirror.total_syncs(),
            accesses: measured_accesses,
            polls,
            polls_changed,
            access_counts,
            link_utilization: self.link_capacity.map(|_| link_busy_time / horizon),
            analytic_age: self.sync_policy.perceived_age_exec(
                cols.p,
                cols.lambda,
                &self.frequencies,
                &self.executor,
            ),
            time_averaged_age: evaluator.time_averaged_age().unwrap_or(0.0),
        };

        // Headline gauges for the metrics snapshot / bench telemetry.
        rec.gauge("pf").set(report.time_averaged_pf);
        rec.gauge("sim.analytic_pf").set(report.analytic_pf);
        let wall = wall_start.elapsed().as_secs_f64();
        if wall > 0.0 {
            rec.gauge("events_per_sec").set(c_total.get() as f64 / wall);
        }
        if let Some(util) = report.link_utilization {
            rec.gauge("sim.link_utilization").set(util);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> Problem {
        Problem::builder()
            .change_rates(vec![1.0, 2.0, 4.0, 0.5])
            .access_probs(vec![0.4, 0.3, 0.2, 0.1])
            .bandwidth(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn simulation_matches_analytic_pf() {
        let p = toy_problem();
        let freqs = vec![1.5, 1.5, 0.5, 0.5];
        let config = SimConfig {
            periods: 400.0,
            warmup_periods: 5.0,
            accesses_per_period: 200.0,
            seed: 1,
        };
        let report = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        assert!(
            (report.time_averaged_pf - report.analytic_pf).abs() < 0.02,
            "time-avg {} vs analytic {}",
            report.time_averaged_pf,
            report.analytic_pf
        );
        let access = report.access_pf.unwrap();
        assert!(
            (access - report.analytic_pf).abs() < 0.02,
            "access {} vs analytic {}",
            access,
            report.analytic_pf
        );
    }

    #[test]
    fn two_monitoring_modes_agree() {
        let p = toy_problem();
        let freqs = vec![1.0; 4];
        let config = SimConfig {
            periods: 300.0,
            warmup_periods: 3.0,
            accesses_per_period: 500.0,
            seed: 9,
        };
        let report = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        assert!(
            (report.time_averaged_pf - report.access_pf.unwrap()).abs() < 0.02,
            "monitoring modes must agree"
        );
    }

    #[test]
    fn zero_frequencies_drive_pf_to_zero() {
        let p = toy_problem();
        let config = SimConfig {
            periods: 100.0,
            warmup_periods: 20.0,
            accesses_per_period: 100.0,
            seed: 2,
        };
        let report = Simulation::new(&p, &[0.0; 4], config)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.syncs, 0);
        assert!(
            report.time_averaged_pf < 0.01,
            "never-refreshed mirror decays to stale: {}",
            report.time_averaged_pf
        );
    }

    #[test]
    fn huge_frequencies_keep_everything_fresh() {
        let p = toy_problem();
        let config = SimConfig {
            periods: 50.0,
            warmup_periods: 1.0,
            accesses_per_period: 100.0,
            seed: 3,
        };
        let report = Simulation::new(&p, &[200.0; 4], config)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            report.time_averaged_pf > 0.97,
            "{}",
            report.time_averaged_pf
        );
        assert!(report.access_pf.unwrap() > 0.95);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = toy_problem();
        let freqs = vec![1.0, 2.0, 0.5, 0.5];
        let config = SimConfig {
            periods: 30.0,
            warmup_periods: 1.0,
            accesses_per_period: 50.0,
            seed: 77,
        };
        let a = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        let b = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn event_counts_match_rates() {
        let p = toy_problem();
        let freqs = vec![2.0, 1.0, 1.0, 0.0];
        let config = SimConfig {
            periods: 200.0,
            warmup_periods: 0.0,
            accesses_per_period: 50.0,
            seed: 4,
        };
        let report = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        // Updates: Σλ = 7.5/period over 200 periods.
        let update_rate = report.updates as f64 / 200.0;
        assert!((update_rate - 7.5).abs() < 0.5, "update rate {update_rate}");
        // Syncs: Σf = 4/period.
        let sync_rate = report.syncs as f64 / 200.0;
        assert!((sync_rate - 4.0).abs() < 0.1, "sync rate {sync_rate}");
        assert_eq!(report.polls[3], 0);
        // Accesses ≈ 50/period.
        let access_rate = report.accesses as f64 / 200.0;
        assert!(
            (access_rate - 50.0).abs() < 2.0,
            "access rate {access_rate}"
        );
    }

    #[test]
    fn poll_change_ratio_supports_estimation() {
        // Element polled at frequency f with change rate λ: the fraction
        // of polls detecting a change tends to 1 − e^{−λ/f}.
        let p = Problem::builder()
            .change_rates(vec![2.0])
            .access_probs(vec![1.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let config = SimConfig {
            periods: 2000.0,
            warmup_periods: 0.0,
            accesses_per_period: 1.0,
            seed: 5,
        };
        let report = Simulation::new(&p, &[2.0], config).unwrap().run().unwrap();
        let ratio = report.polls_changed[0] as f64 / report.polls[0] as f64;
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (ratio - expected).abs() < 0.03,
            "ratio {ratio} vs {expected}"
        );
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let p = toy_problem();
        assert!(Simulation::new(&p, &[1.0; 3], SimConfig::default()).is_err());
        assert!(Simulation::new(&p, &[-1.0, 0.0, 0.0, 0.0], SimConfig::default()).is_err());
        let bad = SimConfig {
            periods: 0.0,
            ..Default::default()
        };
        assert!(Simulation::new(&p, &[1.0; 4], bad).is_err());
        let bad = SimConfig {
            warmup_periods: -1.0,
            ..Default::default()
        };
        assert!(Simulation::new(&p, &[1.0; 4], bad).is_err());
    }

    #[test]
    fn simulated_age_matches_analytic_both_policies() {
        let p = toy_problem();
        let freqs = vec![1.5, 1.5, 0.5, 0.5];
        let config = SimConfig {
            periods: 600.0,
            warmup_periods: 10.0,
            accesses_per_period: 10.0,
            seed: 41,
        };
        for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
            let report = Simulation::new(&p, &freqs, config)
                .unwrap()
                .with_sync_policy(policy)
                .run()
                .unwrap();
            assert!(
                (report.time_averaged_age - report.analytic_age).abs() < report.analytic_age * 0.1,
                "{policy:?}: simulated age {} vs analytic {}",
                report.time_averaged_age,
                report.analytic_age
            );
        }
    }

    #[test]
    fn age_and_freshness_move_oppositely_with_bandwidth() {
        let p = toy_problem();
        let config = SimConfig {
            periods: 200.0,
            warmup_periods: 10.0,
            accesses_per_period: 10.0,
            seed: 42,
        };
        let slow = Simulation::new(&p, &[0.5; 4], config)
            .unwrap()
            .run()
            .unwrap();
        let fast = Simulation::new(&p, &[4.0; 4], config)
            .unwrap()
            .run()
            .unwrap();
        assert!(fast.time_averaged_pf > slow.time_averaged_pf);
        assert!(fast.time_averaged_age < slow.time_averaged_age);
    }

    #[test]
    fn fast_link_matches_instantaneous_model() {
        // With a link far faster than the sync load, transfer delays are
        // negligible and the two models agree.
        let p = toy_problem();
        let freqs = vec![1.0; 4];
        let config = SimConfig {
            periods: 200.0,
            warmup_periods: 5.0,
            accesses_per_period: 200.0,
            seed: 31,
        };
        let instant = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        let fast_link = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_link_capacity(1000.0) // planned load: Σs·f = 4/period
            .run()
            .unwrap();
        assert!(
            (instant.time_averaged_pf - fast_link.time_averaged_pf).abs() < 0.02,
            "instant {} vs fast link {}",
            instant.time_averaged_pf,
            fast_link.time_averaged_pf
        );
        let util = fast_link.link_utilization.unwrap();
        assert!(util < 0.01, "fast link barely utilized: {util}");
        assert_eq!(instant.link_utilization, None);
    }

    #[test]
    fn saturated_link_degrades_freshness() {
        // Planned load Σs·f = 4/period against capacity 2/period: the FIFO
        // queue grows without bound and copies rot waiting.
        let p = toy_problem();
        let freqs = vec![1.0; 4];
        let config = SimConfig {
            periods: 100.0,
            warmup_periods: 5.0,
            accesses_per_period: 100.0,
            seed: 32,
        };
        let healthy = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_link_capacity(40.0)
            .run()
            .unwrap();
        let saturated = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_link_capacity(2.0)
            .run()
            .unwrap();
        assert!(
            saturated.time_averaged_pf < healthy.time_averaged_pf - 0.05,
            "saturation must hurt: {} vs {}",
            saturated.time_averaged_pf,
            healthy.time_averaged_pf
        );
        assert!(
            saturated.link_utilization.unwrap() > 0.95,
            "saturated link is busy nearly always"
        );
    }

    #[test]
    fn adequate_link_validates_papers_abstraction() {
        // The paper plans with Σ sᵢfᵢ = B and assumes instantaneous
        // refreshes. That abstraction is sound when the per-transfer time
        // is small relative to both the refresh intervals (little
        // queueing) and the change intervals (content doesn't rot in
        // flight): at capacity 40 each transfer takes 0.025 periods
        // against λ ≤ 4, and the measured PF tracks the plan.
        let p = toy_problem();
        let freqs = vec![1.0; 4]; // planned load 4/period
        let config = SimConfig {
            periods: 200.0,
            warmup_periods: 10.0,
            accesses_per_period: 200.0,
            seed: 33,
        };
        let report = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_link_capacity(40.0)
            .run()
            .unwrap();
        assert!(
            (report.time_averaged_pf - report.analytic_pf).abs() < 0.05,
            "with ample capacity the plan holds: measured {} vs planned {}",
            report.time_averaged_pf,
            report.analytic_pf
        );
        // And the latency penalty is visible at 2x headroom: in-flight
        // staleness makes measured PF fall short of the plan.
        let tight = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_link_capacity(8.0)
            .run()
            .unwrap();
        assert!(
            tight.time_averaged_pf < tight.analytic_pf - 0.02,
            "transfer latency must show up: measured {} vs planned {}",
            tight.time_averaged_pf,
            tight.analytic_pf
        );
    }

    #[test]
    #[should_panic(expected = "link capacity must be positive")]
    fn link_capacity_validated() {
        let p = toy_problem();
        let _ = Simulation::new(&p, &[1.0; 4], SimConfig::default())
            .unwrap()
            .with_link_capacity(0.0);
    }

    #[test]
    fn poisson_policy_matches_its_own_analytic_law() {
        // Under memoryless syncing the simulator must track f/(λ+f), not
        // the Fixed-Order law — a strong cross-check that both the event
        // engine and the closed forms are right.
        let p = toy_problem();
        let freqs = vec![1.5, 1.5, 0.5, 0.5];
        let config = SimConfig {
            periods: 400.0,
            warmup_periods: 5.0,
            accesses_per_period: 200.0,
            seed: 21,
        };
        let report = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_sync_policy(SyncPolicy::Poisson)
            .run()
            .unwrap();
        let expected = p.perceived_freshness_with(SyncPolicy::Poisson, &freqs);
        assert!((report.analytic_pf - expected).abs() < 1e-12);
        assert!(
            (report.time_averaged_pf - expected).abs() < 0.02,
            "poisson sim {} vs analytic {}",
            report.time_averaged_pf,
            expected
        );
    }

    #[test]
    fn fixed_order_beats_poisson_in_simulation() {
        // The claim the paper inherits from Cho & Garcia-Molina: at equal
        // frequencies, evenly spaced refreshes yield strictly better
        // freshness than memoryless ones.
        let p = toy_problem();
        let freqs = vec![1.0; 4];
        let config = SimConfig {
            periods: 300.0,
            warmup_periods: 5.0,
            accesses_per_period: 100.0,
            seed: 22,
        };
        let fixed = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        let poisson = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_sync_policy(SyncPolicy::Poisson)
            .run()
            .unwrap();
        assert!(
            fixed.time_averaged_pf > poisson.time_averaged_pf + 0.02,
            "fixed-order {} must beat poisson {}",
            fixed.time_averaged_pf,
            poisson.time_averaged_pf
        );
    }

    #[test]
    fn hot_stale_object_tanks_perceived_freshness() {
        // 90% of interest on a volatile object that never gets refreshed:
        // users see staleness even though 3 of 4 copies stay fresh.
        let p = Problem::builder()
            .change_rates(vec![5.0, 0.01, 0.01, 0.01])
            .access_probs(vec![0.9, 0.04, 0.03, 0.03])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let config = SimConfig {
            periods: 100.0,
            warmup_periods: 10.0,
            accesses_per_period: 200.0,
            seed: 6,
        };
        let report = Simulation::new(&p, &[0.0, 1.0, 1.0, 1.0], config)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            report.time_averaged_pf < 0.2,
            "perceived freshness collapses: {}",
            report.time_averaged_pf
        );
    }

    #[test]
    fn next_event_selection_priority_and_exhaustion() {
        let inf = f64::INFINITY;
        // All streams exhausted.
        assert_eq!(NextEvent::select(inf, inf, inf, inf), None);
        // Ties resolve update > link > sync > access.
        assert_eq!(
            NextEvent::select(1.0, 1.0, 1.0, 1.0),
            Some((1.0, NextEvent::Update))
        );
        assert_eq!(
            NextEvent::select(inf, 1.0, 1.0, 1.0),
            Some((1.0, NextEvent::Link))
        );
        assert_eq!(
            NextEvent::select(inf, 1.0, 1.0, inf),
            Some((1.0, NextEvent::Sync))
        );
        assert_eq!(
            NextEvent::select(inf, 1.0, inf, inf),
            Some((1.0, NextEvent::Access))
        );
        // Strict minimum wins regardless of priority.
        assert_eq!(
            NextEvent::select(3.0, 0.5, 2.0, 1.0),
            Some((0.5, NextEvent::Access))
        );
    }

    #[test]
    fn recorder_captures_event_counts_and_pf() {
        let p = toy_problem();
        let freqs = vec![1.0; 4];
        let config = SimConfig {
            periods: 50.0,
            warmup_periods: 1.0,
            accesses_per_period: 20.0,
            seed: 11,
        };
        let rec = Recorder::enabled();
        let report = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_link_capacity(40.0)
            .with_recorder(rec.clone())
            .run()
            .unwrap();
        let updates = rec.counter_value("sim.events.update").unwrap();
        let syncs = rec.counter_value("sim.events.sync").unwrap();
        let links = rec.counter_value("sim.events.link").unwrap();
        let accesses = rec.counter_value("sim.events.access").unwrap();
        assert_eq!(updates, report.updates);
        // Each sync enqueues a Start and later a Complete on the link.
        assert!(links >= syncs, "links {links} syncs {syncs}");
        assert!(accesses >= report.accesses);
        let total = rec.counter_value("events_total").unwrap();
        assert_eq!(total, updates + syncs + links + accesses);
        let pf = rec.gauge_value("pf").unwrap();
        assert!((pf - report.time_averaged_pf).abs() < 1e-12);
        assert!(rec.gauge_value("events_per_sec").unwrap() > 0.0);
        assert!(rec.gauge_value("sim.link_utilization").is_some());
        // The run span made it into the trace.
        assert!(rec.chrome_trace_json().unwrap().contains("sim.run"));
    }

    #[test]
    fn pool_executor_run_is_byte_identical_to_serial() {
        let p = toy_problem();
        let freqs = vec![1.0, 2.0, 0.5, 0.5];
        let config = SimConfig {
            periods: 30.0,
            warmup_periods: 1.0,
            accesses_per_period: 50.0,
            seed: 77,
        };
        let serial = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        for workers in [2, 4] {
            let pooled = Simulation::new(&p, &freqs, config)
                .unwrap()
                .with_executor(Executor::thread_pool(workers))
                .run()
                .unwrap();
            assert_eq!(serial, pooled, "{workers} workers must not perturb the run");
        }
    }

    #[test]
    fn disabled_recorder_changes_nothing() {
        let p = toy_problem();
        let freqs = vec![1.0; 4];
        let config = SimConfig {
            periods: 30.0,
            warmup_periods: 1.0,
            accesses_per_period: 50.0,
            seed: 77,
        };
        let plain = Simulation::new(&p, &freqs, config).unwrap().run().unwrap();
        let instrumented = Simulation::new(&p, &freqs, config)
            .unwrap()
            .with_recorder(Recorder::enabled())
            .run()
            .unwrap();
        assert_eq!(
            plain, instrumented,
            "instrumentation must not perturb results"
        );
    }
}
