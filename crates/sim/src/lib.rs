//! # freshen-sim
//!
//! Discrete-event simulator for mirror synchronization — the paper's
//! Figure 4 architecture, built from scratch:
//!
//! ```text
//!                ┌───────────────────────┐
//!   Update ───▶  │  Source (versions)    │
//!   Generator    └──────────┬────────────┘
//!                           │ sync request/response
//!                ┌──────────▼────────────┐     ┌──────────────────────┐
//!   Sync     ──▶ │  Mirror (local copies)│ ◀── │ User Request Generator│
//!   Scheduler    └──────────┬────────────┘     └──────────────────────┘
//!                           │ observations
//!                ┌──────────▼────────────┐
//!                │  Freshness Evaluator  │  (analytic + monitoring modes)
//!                └───────────────────────┘
//! ```
//!
//! * the **Update Generator** drives each element's source copy with an
//!   independent Poisson process at its change rate `λᵢ`;
//! * the **Synchronization Scheduler** replays a Fixed-Order schedule
//!   derived from the refresh frequencies under test
//!   ([`freshen_core::schedule::ScheduleStream`]);
//! * the **User Request Generator** issues accesses as a Poisson process
//!   whose element choice follows the master profile;
//! * the **Freshness Evaluator** runs in the paper's two modes at once:
//!   *analytic* (closed-form `Σ pᵢ·F̄(λᵢ, fᵢ)`) and *monitoring* (score
//!   each simulated access; integrate per-element fresh time). The paper
//!   verified its results in both modes; our integration tests require the
//!   two modes to agree within statistical tolerance.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod evaluator;
pub mod events;
pub mod generators;
pub mod simulation;
pub mod state;
pub mod tiered;

pub use simulation::{SimConfig, SimReport, Simulation};
pub use tiered::{simulate_tiered, TieredSimConfig, TieredSimReport};
