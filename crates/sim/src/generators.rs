//! Stochastic event generators: source updates and user requests.
//!
//! Both are Poisson processes realized as exponential inter-arrival
//! streams. Each generator owns its RNG so update, access, and any future
//! noise streams are statistically independent given distinct seeds.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::{chunk_ranges, Executor, DEFAULT_CHUNK};
use freshen_workload::dist::Exponential;

/// Per-element Poisson update stream (the paper's Update Generator).
///
/// Maintains the next update instant for every element with a positive
/// change rate; [`UpdateGenerator::next_event`] yields `(time, element)`
/// pairs in time order via an internal binary heap.
#[derive(Debug)]
pub struct UpdateGenerator {
    heap: std::collections::BinaryHeap<NextUpdate>,
    rates: Vec<f64>,
    rng: StdRng,
}

#[derive(Debug, PartialEq)]
struct NextUpdate {
    time: f64,
    element: usize,
}
impl Eq for NextUpdate {}
impl Ord for NextUpdate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.element.cmp(&self.element))
    }
}
impl PartialOrd for NextUpdate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl UpdateGenerator {
    /// Create a generator for the given per-period change rates.
    ///
    /// # Panics
    /// Panics on negative or non-finite rates.
    pub fn new(change_rates: &[f64], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap = std::collections::BinaryHeap::new();
        for (i, &rate) in change_rates.iter().enumerate() {
            assert!(rate.is_finite() && rate >= 0.0, "change rate {i} invalid");
            if rate > 0.0 {
                let t = Exponential::new(rate).sample(&mut rng);
                heap.push(NextUpdate {
                    time: t,
                    element: i,
                });
            }
        }
        UpdateGenerator {
            heap,
            rates: change_rates.to_vec(),
            rng,
        }
    }

    /// The next `(time, element)` update at or before `horizon`, advancing
    /// the stream. `None` once every next update lies beyond the horizon.
    pub fn next_event(&mut self, horizon: f64) -> Option<(f64, usize)> {
        let top = self.heap.peek()?;
        if top.time >= horizon {
            return None;
        }
        let NextUpdate { time, element } = self.heap.pop().expect("peeked entry exists");
        let next = time + Exponential::new(self.rates[element]).sample(&mut self.rng);
        self.heap.push(NextUpdate {
            time: next,
            element,
        });
        Some((time, element))
    }

    /// Peek at the next update time without consuming it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

/// Poisson user-request stream (the paper's User Request Generator).
///
/// Requests arrive at `total_rate` per period; each request targets an
/// element drawn from the master-profile probabilities.
#[derive(Debug)]
pub struct AccessGenerator {
    cdf: Vec<f64>,
    inter_arrival: Exponential,
    next_time: f64,
    rng: StdRng,
}

impl AccessGenerator {
    /// Create from access probabilities (must sum to ~1) and a total
    /// request rate per period.
    ///
    /// # Panics
    /// Panics when [`try_new`](Self::try_new) would return an error.
    pub fn new(access_probs: &[f64], total_rate: f64, seed: u64) -> Self {
        Self::try_new(access_probs, total_rate, seed)
            .unwrap_or_else(|e| panic!("invalid access profile: {e}"))
    }

    /// Fallible [`new`](Self::new): a degenerate profile (NaN, negative
    /// entries, bad sum) comes back as a [`CoreError`] instead of a panic.
    pub fn try_new(access_probs: &[f64], total_rate: f64, seed: u64) -> Result<Self> {
        Self::try_new_with_executor(access_probs, total_rate, seed, &Executor::serial())
    }

    /// [`new`](Self::new) with the CDF built as a chunked parallel scan on
    /// `executor`: per-chunk local prefix sums run concurrently, chunk
    /// offsets are folded serially in fixed chunk order, so the CDF is
    /// identical at any worker count.
    ///
    /// # Panics
    /// Panics when [`try_new_with_executor`](Self::try_new_with_executor)
    /// would return an error.
    pub fn new_with_executor(
        access_probs: &[f64],
        total_rate: f64,
        seed: u64,
        executor: &Executor,
    ) -> Self {
        Self::try_new_with_executor(access_probs, total_rate, seed, executor)
            .unwrap_or_else(|e| panic!("invalid access profile: {e}"))
    }

    /// Fallible [`new_with_executor`](Self::new_with_executor). The built
    /// CDF is validated to be finite and non-decreasing before the sum
    /// check, so a poisoned profile (a NaN or negative probability) yields
    /// [`CoreError::Inconsistent`] rather than a NaN CDF that would
    /// otherwise panic element selection at sample time.
    pub fn try_new_with_executor(
        access_probs: &[f64],
        total_rate: f64,
        seed: u64,
        executor: &Executor,
    ) -> Result<Self> {
        if access_probs.is_empty() {
            return Err(CoreError::Empty);
        }
        if !total_rate.is_finite() || total_rate <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "total access rate",
                index: None,
                value: total_rate,
            });
        }
        let chunks = chunk_ranges(access_probs.len(), DEFAULT_CHUNK);
        let parts = executor.map_ranges(&chunks, |range| {
            let mut local = Vec::with_capacity(range.len());
            let mut acc = 0.0;
            for i in range {
                acc += access_probs[i];
                local.push(acc);
            }
            local
        });
        let mut cdf = Vec::with_capacity(access_probs.len());
        let mut acc = 0.0;
        for local in parts {
            let chunk_total = local.last().copied().unwrap_or(0.0);
            cdf.extend(local.into_iter().map(|v| acc + v));
            acc += chunk_total;
        }
        let mut prev = 0.0;
        for &c in &cdf {
            if !c.is_finite() || c < prev {
                return Err(CoreError::Inconsistent {
                    routine: "access-generator",
                    invariant: "cdf must be finite and non-decreasing",
                });
            }
            prev = c;
        }
        if (acc - 1.0).abs() >= 1e-6 {
            return Err(CoreError::ProbabilityNotNormalized { sum: acc });
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let inter_arrival = Exponential::new(total_rate);
        let first = inter_arrival.sample(&mut rng);
        Ok(AccessGenerator {
            cdf,
            inter_arrival,
            next_time: first,
            rng,
        })
    }

    /// The next `(time, element)` access at or before `horizon`, advancing
    /// the stream.
    pub fn next_event(&mut self, horizon: f64) -> Option<(f64, usize)> {
        if self.next_time >= horizon {
            return None;
        }
        let t = self.next_time;
        self.next_time += self.inter_arrival.sample(&mut self.rng);
        let u: f64 = self.rng.gen();
        // total_cmp: the CDF is validated finite at construction, but the
        // selection path must stay panic-free regardless.
        let element = match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        };
        Some((t, element))
    }

    /// Peek at the next access time.
    pub fn peek_time(&self) -> f64 {
        self.next_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_counts_match_rates() {
        let rates = [5.0, 1.0, 0.0];
        let mut generator = UpdateGenerator::new(&rates, 1);
        let horizon = 2000.0;
        let mut counts = [0usize; 3];
        while let Some((t, e)) = generator.next_event(horizon) {
            assert!(t < horizon);
            counts[e] += 1;
        }
        let r0 = counts[0] as f64 / horizon;
        let r1 = counts[1] as f64 / horizon;
        assert!((r0 - 5.0).abs() < 0.2, "element 0 rate {r0}");
        assert!((r1 - 1.0).abs() < 0.1, "element 1 rate {r1}");
        assert_eq!(counts[2], 0, "zero-rate element never updates");
    }

    #[test]
    fn update_times_are_ordered() {
        let mut generator = UpdateGenerator::new(&[3.0, 2.0, 7.0], 2);
        let mut last = 0.0;
        for _ in 0..1000 {
            let (t, _) = generator.next_event(f64::MAX).unwrap();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn update_deterministic_per_seed() {
        let mut a = UpdateGenerator::new(&[1.0, 2.0], 42);
        let mut b = UpdateGenerator::new(&[1.0, 2.0], 42);
        for _ in 0..100 {
            assert_eq!(a.next_event(1e9), b.next_event(1e9));
        }
    }

    #[test]
    fn access_rate_and_mix() {
        let probs = [0.7, 0.2, 0.1];
        let mut generator = AccessGenerator::new(&probs, 50.0, 3);
        let horizon = 500.0;
        let mut counts = [0usize; 3];
        let mut total = 0usize;
        while let Some((_, e)) = generator.next_event(horizon) {
            counts[e] += 1;
            total += 1;
        }
        let rate = total as f64 / horizon;
        assert!((rate - 50.0).abs() < 1.5, "arrival rate {rate}");
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / total as f64;
            assert!((frac - probs[i]).abs() < 0.02, "element {i} mix {frac}");
        }
    }

    #[test]
    fn access_none_beyond_horizon() {
        let mut generator = AccessGenerator::new(&[1.0], 1.0, 4);
        // Drain a short horizon, then confirm exhaustion is sticky for it.
        while generator.next_event(1.0).is_some() {}
        assert!(generator.peek_time() >= 1.0);
        assert!(generator.next_event(1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn access_rejects_unnormalized() {
        AccessGenerator::new(&[0.5, 0.1], 1.0, 0);
    }

    /// Regression: a poisoned profile (NaN or negative entry) used to pass
    /// construction and panic later inside `binary_search_by` when the NaN
    /// CDF entry hit `partial_cmp().expect()`. It must now fail cleanly at
    /// construction with `CoreError::Inconsistent`.
    #[test]
    fn poisoned_profile_is_a_clean_error() {
        for probs in [
            vec![0.5, f64::NAN, 0.5],
            vec![0.5, f64::INFINITY],
            vec![1.5, -0.5],
        ] {
            match AccessGenerator::try_new(&probs, 1.0, 0) {
                Err(CoreError::Inconsistent { routine, .. }) => {
                    assert_eq!(routine, "access-generator");
                }
                other => panic!("expected Inconsistent for {probs:?}, got {other:?}"),
            }
        }
        assert!(matches!(
            AccessGenerator::try_new(&[], 1.0, 0),
            Err(CoreError::Empty)
        ));
        assert!(matches!(
            AccessGenerator::try_new(&[1.0], f64::NAN, 0),
            Err(CoreError::InvalidValue { .. })
        ));
        assert!(matches!(
            AccessGenerator::try_new(&[0.5, 0.1], 1.0, 0),
            Err(CoreError::ProbabilityNotNormalized { .. })
        ));
    }
}
