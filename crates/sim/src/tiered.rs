//! Monte-Carlo validation of the composed-freshness recursion: simulate
//! version propagation through a relay [`Topology`] event by event and
//! measure edge freshness directly, so a tiered schedule can be scored
//! against the analytic prediction of
//! [`Topology::node_freshness`].
//!
//! Each element evolves independently (changes and polls are
//! independent processes), so the simulator runs one element at a time:
//! the source's copy changes at Poisson times with rate `λᵢ`; every
//! link polls its upstream node — at Poisson times with rate `f` under
//! [`SyncPolicy::Poisson`], at period `1/f` with an independent uniform
//! phase under [`SyncPolicy::FixedOrder`] — and a poll adopts the
//! upstream copy's version when it is newer (version-aware merging: a
//! stale parent never overwrites a fresher copy). A node is *fresh*
//! when its version matches the source's current one; the simulator
//! integrates the exact fresh-time fraction between events (no
//! sampling grid) over the post-warmup window.
//!
//! For chains and trees the recursion is exact, so measured and
//! analytic edge PF converge at the Monte-Carlo `1/√T` rate; for
//! re-merging DAGs the recursion's independence approximation is
//! slightly optimistic and the measured value sits below it — the gap
//! this simulator exists to quantify.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use freshen_core::error::Result;
use freshen_core::numeric::NeumaierSum;
use freshen_core::policy::SyncPolicy;
use freshen_core::problem::Problem;
use freshen_core::topology::{TieredSchedule, Topology};

/// Configuration for [`simulate_tiered`].
#[derive(Debug, Clone, Copy)]
pub struct TieredSimConfig {
    /// Measured window length (after warm-up).
    pub horizon: f64,
    /// Warm-up time discarded so the stationary distribution is
    /// measured rather than the all-fresh initial condition.
    pub warmup: f64,
    /// Master seed; per-element streams derive from it deterministically.
    pub seed: u64,
    /// Independent replications averaged per element. Matters for
    /// [`SyncPolicy::FixedOrder`]: rationally-related periodic poll
    /// frequencies phase-lock, so one phase draw never ergodically
    /// covers the phase torus no matter the horizon — the analytic
    /// recursion is the phase-*ensemble* expectation, and fresh phase
    /// draws per replication are what converge to it.
    pub replications: u32,
}

impl Default for TieredSimConfig {
    fn default() -> Self {
        TieredSimConfig {
            horizon: 2_000.0,
            warmup: 50.0,
            seed: 7,
            replications: 4,
        }
    }
}

/// Measured-vs-analytic freshness of one tiered schedule.
#[derive(Debug, Clone)]
pub struct TieredSimReport {
    /// Edge PF measured by the event simulation.
    pub measured_edge_pf: f64,
    /// Edge PF predicted by the composed recursion.
    pub analytic_edge_pf: f64,
    /// Per-node measured PF.
    pub measured_node_pf: Vec<f64>,
    /// Per-node analytic PF.
    pub analytic_node_pf: Vec<f64>,
    /// Total events processed (changes + polls).
    pub events: u64,
}

impl TieredSimReport {
    /// Absolute measured-vs-analytic gap at the edge.
    pub fn edge_gap(&self) -> f64 {
        (self.measured_edge_pf - self.analytic_edge_pf).abs()
    }
}

/// One pending event stream: the next firing time plus how to draw the
/// one after it.
enum Stream {
    /// Source change process (Poisson, rate).
    Change(f64),
    /// Poll process on a link (link index, policy, frequency).
    Poll(usize, SyncPolicy, f64),
}

/// Simulate `schedule` over `topology` and measure per-node freshness.
///
/// Deterministic for a fixed config: per-element RNG streams derive
/// from `cfg.seed` and the element index only.
pub fn simulate_tiered(
    topology: &Topology,
    problem: &Problem,
    schedule: &TieredSchedule,
    policy: SyncPolicy,
    cfg: &TieredSimConfig,
) -> Result<TieredSimReport> {
    let analytic = topology.node_freshness(problem, schedule, policy)?;
    schedule.validate(topology)?;
    let reps = cfg.replications.max(1);
    let n = problem.len();
    let node_count = topology.node_count();
    let lam = problem.change_rates();
    let p = problem.access_probs();
    let t_end = cfg.warmup + cfg.horizon;

    let mut fresh_frac = vec![vec![0.0f64; n]; node_count];
    let mut events = 0u64;

    for (i, rep) in (0..n).flat_map(|i| (0..reps).map(move |r| (i, r))) {
        let stream_id = (i as u64) << 32 | rep as u64;
        let mut rng =
            StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream_id);
        let exp = |rng: &mut StdRng, rate: f64| -> f64 {
            let u: f64 = rng.gen::<f64>();
            -(1.0 - u).ln() / rate
        };

        // Build the element's event streams: one change stream (if the
        // element ever changes) and one poll stream per carrying link
        // with a positive frequency.
        let mut streams: Vec<(f64, Stream)> = Vec::new();
        if lam[i] > 0.0 {
            let first = exp(&mut rng, lam[i]);
            streams.push((first, Stream::Change(lam[i])));
        }
        for (l, link) in topology.links().iter().enumerate() {
            let f = schedule.link_freqs[l][i];
            if !link.carries(i) || f <= 0.0 {
                continue;
            }
            let first = match policy {
                SyncPolicy::Poisson => exp(&mut rng, f),
                // Fixed-Order: periodic with an independent uniform
                // phase — the stationary version of the timetable.
                SyncPolicy::FixedOrder => rng.gen::<f64>() / f,
            };
            streams.push((first, Stream::Poll(l, policy, f)));
        }

        // version[node] = change-time of the source version it holds;
        // everyone starts aligned at version 0 (warm-up absorbs this).
        let mut version = vec![0.0f64; node_count];
        let mut source_version = 0.0f64;
        let mut now = 0.0f64;
        let mut fresh_time = vec![0.0f64; node_count];
        // Elements never delivered to a node are permanently stale
        // there only once the source has changed; the loop below
        // handles that naturally through version comparison.

        while let Some((slot, _)) = streams
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        {
            let t = streams[slot].0;
            if t >= t_end {
                break;
            }
            // Integrate the fresh indicators over [now, t] ∩ [warmup, t_end].
            let seg = (t.min(t_end) - now.max(cfg.warmup)).max(0.0);
            if seg > 0.0 {
                for node in 0..node_count {
                    if version[node] >= source_version {
                        fresh_time[node] += seg;
                    }
                }
            }
            now = t;
            events += 1;
            match streams[slot].1 {
                Stream::Change(rate) => {
                    source_version = now;
                    version[0] = now;
                    streams[slot].0 = now + exp(&mut rng, rate);
                }
                Stream::Poll(l, policy, f) => {
                    let link = &topology.links()[l];
                    if version[link.from] > version[link.to] {
                        version[link.to] = version[link.from];
                    }
                    streams[slot].0 = now
                        + match policy {
                            SyncPolicy::Poisson => exp(&mut rng, f),
                            SyncPolicy::FixedOrder => 1.0 / f,
                        };
                }
            }
        }
        // Tail segment to the horizon.
        let seg = (t_end - now.max(cfg.warmup)).max(0.0);
        if seg > 0.0 {
            for node in 0..node_count {
                if version[node] >= source_version {
                    fresh_time[node] += seg;
                }
            }
        }
        for node in 0..node_count {
            fresh_frac[node][i] += fresh_time[node] / (cfg.horizon * reps as f64);
        }
    }

    let weigh = |rows: &[Vec<f64>]| -> Vec<f64> {
        rows.iter()
            .map(|row| {
                let mut acc = NeumaierSum::new();
                for (w, f) in p.iter().zip(row) {
                    if *w != 0.0 {
                        acc.add(w * f);
                    }
                }
                acc.total()
            })
            .collect()
    };
    let measured_node_pf = weigh(&fresh_frac);
    let analytic_node_pf = weigh(&analytic);
    let mean_over_sinks = |pf: &[f64]| -> f64 {
        let mut acc = NeumaierSum::new();
        for &s in topology.sinks() {
            acc.add(pf[s]);
        }
        acc.total() / topology.sinks().len() as f64
    };
    Ok(TieredSimReport {
        measured_edge_pf: mean_over_sinks(&measured_node_pf),
        analytic_edge_pf: mean_over_sinks(&analytic_node_pf),
        measured_node_pf,
        analytic_node_pf,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_setup(n: usize) -> (Topology, Problem, TieredSchedule) {
        let topo = Topology::builder()
            .source("origin")
            .tier("relay", 10.0)
            .tier("edge", 8.0)
            .link("origin", "relay")
            .link("relay", "edge")
            .build(n)
            .unwrap();
        let problem = Problem::builder()
            .change_rates((0..n).map(|i| 0.4 + (i % 5) as f64 * 0.5).collect())
            .access_weights((0..n).map(|i| 1.0 / (i + 1) as f64).collect())
            .bandwidth(10.0)
            .build()
            .unwrap();
        let mut schedule = TieredSchedule::zero(&topo);
        for i in 0..n {
            schedule.link_freqs[0][i] = 1.0 + (i % 3) as f64;
            schedule.link_freqs[1][i] = 0.5 + (i % 2) as f64;
        }
        (topo, problem, schedule)
    }

    #[test]
    fn chain_measurement_matches_the_analytic_product() {
        // The recursion is exact on chains, so the only gap is the
        // Monte-Carlo error — O(1/√horizon) with a fixed seed.
        let (topo, problem, schedule) = chain_setup(8);
        for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
            let report = simulate_tiered(
                &topo,
                &problem,
                &schedule,
                policy,
                &TieredSimConfig {
                    horizon: 1_000.0,
                    warmup: 50.0,
                    seed: 11,
                    replications: 12,
                },
            )
            .unwrap();
            assert!(
                report.edge_gap() < 0.02,
                "{policy:?}: measured {} analytic {}",
                report.measured_edge_pf,
                report.analytic_edge_pf
            );
            assert!(report.measured_edge_pf > 0.0 && report.measured_edge_pf < 1.0);
            assert!(report.events > 10_000);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (topo, problem, schedule) = chain_setup(4);
        let cfg = TieredSimConfig {
            horizon: 200.0,
            warmup: 10.0,
            seed: 3,
            replications: 2,
        };
        let a = simulate_tiered(&topo, &problem, &schedule, SyncPolicy::FixedOrder, &cfg).unwrap();
        let b = simulate_tiered(&topo, &problem, &schedule, SyncPolicy::FixedOrder, &cfg).unwrap();
        assert_eq!(a.measured_edge_pf.to_bits(), b.measured_edge_pf.to_bits());
        assert_eq!(a.events, b.events);
        let c = simulate_tiered(
            &topo,
            &problem,
            &schedule,
            SyncPolicy::FixedOrder,
            &TieredSimConfig { seed: 4, ..cfg },
        )
        .unwrap();
        assert_ne!(a.measured_edge_pf.to_bits(), c.measured_edge_pf.to_bits());
    }

    #[test]
    fn unscheduled_element_is_stale_everywhere_downstream() {
        let (topo, problem, mut schedule) = chain_setup(4);
        schedule.link_freqs[0][2] = 0.0;
        schedule.link_freqs[1][2] = 0.0;
        let report = simulate_tiered(
            &topo,
            &problem,
            &schedule,
            SyncPolicy::FixedOrder,
            &TieredSimConfig {
                horizon: 500.0,
                warmup: 20.0,
                seed: 5,
                replications: 2,
            },
        )
        .unwrap();
        // Element 2 changes but is never propagated: its relay/edge
        // fresh fraction decays toward 0 (a sliver survives from the
        // pre-first-change window).
        assert!(report.measured_node_pf[2] < report.analytic_node_pf[1] + 0.05);
    }
}
