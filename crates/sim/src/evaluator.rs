//! The Freshness Evaluator (paper Figure 4), monitoring mode.
//!
//! Tracks two empirical views of perceived freshness while the simulation
//! runs:
//!
//! * **access scoring** — Definition 3's "keep score at each access":
//!   the fraction of simulated user requests that found a fresh copy;
//! * **time integration** — the time average of
//!   `Σᵢ pᵢ·freshᵢ(t)`, accumulated by watching freshness flips, which
//!   estimates the same expectation without access-sampling noise.
//!
//! Both start accumulating only after a configurable warm-up so the
//! all-fresh initial state does not bias the estimates. The analytic mode
//! (`Σ pᵢ·F̄(λᵢ, fᵢ)`) lives in `freshen_core::freshness` and is compared
//! against these in the integration tests.

use freshen_core::access::PerElementScore;
use freshen_core::exec::{Executor, DEFAULT_CHUNK};
use freshen_core::numeric::NeumaierSum;

/// Monitoring-mode evaluator state.
#[derive(Debug, Clone)]
pub struct FreshnessEvaluator {
    weights: Vec<f64>,
    /// Total profile weight (constant; `Σ weights`).
    total_weight: f64,
    /// Current freshness flag per element.
    fresh: Vec<bool>,
    /// Σ of weights of currently-fresh elements (kept incrementally).
    fresh_weight: f64,
    /// Integral of `fresh_weight` over measured time.
    weighted_fresh_time: f64,
    /// Per stale element: the time of the first source change the mirror
    /// has not yet seen — the instant its age started growing.
    stale_since: Vec<f64>,
    /// Σ over stale elements of `weight·stale_since` (kept incrementally,
    /// so the age integral advances in O(1) per event).
    weighted_stale_since: f64,
    /// Integral of `Σ_{stale i} wᵢ·(t − stale_sinceᵢ)` over measured time.
    weighted_age_time: f64,
    /// When measurement started (warm-up end).
    measure_start: f64,
    /// Last time the integral was advanced to.
    last_time: f64,
    /// Whether measurement has begun.
    measuring: bool,
    /// Per-access scoring.
    scores: PerElementScore,
}

impl FreshnessEvaluator {
    /// Create an evaluator; `weights` are the access probabilities, all
    /// elements start fresh.
    pub fn new(weights: &[f64]) -> Self {
        Self::with_executor(weights, &Executor::serial())
    }

    /// [`new`](Self::new) with the initial profile-mass reduction run as a
    /// chunked parallel (compensated) sum on `executor`. Identical at any
    /// worker count; the per-event scoring path is O(1) and stays serial.
    pub fn with_executor(weights: &[f64], executor: &Executor) -> Self {
        let total = executor
            .par_chunks_reduce(
                weights.len(),
                DEFAULT_CHUNK,
                |range| {
                    let mut acc = NeumaierSum::new();
                    for i in range {
                        acc.add(weights[i]);
                    }
                    acc
                },
                |mut a, b| {
                    a.merge(b);
                    a
                },
            )
            .map_or(0.0, |acc| acc.total());
        FreshnessEvaluator {
            weights: weights.to_vec(),
            total_weight: total,
            fresh: vec![true; weights.len()],
            fresh_weight: total,
            weighted_fresh_time: 0.0,
            stale_since: vec![0.0; weights.len()],
            weighted_stale_since: 0.0,
            weighted_age_time: 0.0,
            measure_start: 0.0,
            last_time: 0.0,
            measuring: false,
            scores: PerElementScore::new(weights.len()),
        }
    }

    /// Begin measuring at `time` (end of warm-up). Accesses and freshness
    /// time before this call are ignored.
    pub fn start_measurement(&mut self, time: f64) {
        self.measure_start = time;
        self.last_time = time;
        self.measuring = true;
    }

    /// Whether measurement has begun.
    pub fn is_measuring(&self) -> bool {
        self.measuring
    }

    /// Advance the time integrals to `time`.
    fn advance(&mut self, time: f64) {
        if self.measuring && time > self.last_time {
            let dt = time - self.last_time;
            self.weighted_fresh_time += self.fresh_weight * dt;
            // Age of stale element i grows as (t − stale_sinceᵢ); the
            // weighted sum integrates in closed form between events.
            let stale_weight = self.total_weight - self.fresh_weight;
            self.weighted_age_time +=
                stale_weight * (time * time - self.last_time * self.last_time) / 2.0
                    - self.weighted_stale_since * dt;
            self.last_time = time;
        }
    }

    /// Record that `element`'s source copy changed at `time`.
    pub fn on_update(&mut self, time: f64, element: usize) {
        self.advance(time);
        if self.fresh[element] {
            self.fresh[element] = false;
            self.fresh_weight -= self.weights[element];
            self.stale_since[element] = time;
            self.weighted_stale_since += self.weights[element] * time;
        }
    }

    /// Record that the mirror refreshed `element` at `time`.
    pub fn on_sync(&mut self, time: f64, element: usize) {
        self.on_sync_applied(time, element, true);
    }

    /// Record a refresh whose arriving content may itself already be stale
    /// (link-transfer model: the snapshot was taken at transfer start).
    ///
    /// A still-stale arrival leaves the element's age clock running from
    /// its original first-unseen-change instant — a conservative (upper
    /// bound) accounting, since the arriving snapshot may have absorbed
    /// some of the backlog.
    pub fn on_sync_applied(&mut self, time: f64, element: usize, up_to_date: bool) {
        self.advance(time);
        if self.fresh[element] != up_to_date {
            self.fresh[element] = up_to_date;
            if up_to_date {
                self.fresh_weight += self.weights[element];
                self.weighted_stale_since -= self.weights[element] * self.stale_since[element];
            } else {
                self.fresh_weight -= self.weights[element];
                self.stale_since[element] = time;
                self.weighted_stale_since += self.weights[element] * time;
            }
        }
    }

    /// Record a user access at `time`; scores it when measuring.
    pub fn on_access(&mut self, time: f64, element: usize) {
        self.advance(time);
        if self.measuring {
            self.scores.record(element, self.fresh[element]);
        }
    }

    /// Close the integral at the simulation end time.
    pub fn finish(&mut self, time: f64) {
        self.advance(time);
    }

    /// Time-averaged perceived freshness over the measured window, or
    /// `None` when no time was measured.
    pub fn time_averaged_pf(&self) -> Option<f64> {
        let span = self.last_time - self.measure_start;
        if !self.measuring || span <= 0.0 {
            return None;
        }
        Some(self.weighted_fresh_time / span)
    }

    /// Time-averaged perceived **age** over the measured window — the
    /// profile-weighted mean time since each copy's first unseen change
    /// (0 while fresh). `None` when no time was measured.
    pub fn time_averaged_age(&self) -> Option<f64> {
        let span = self.last_time - self.measure_start;
        if !self.measuring || span <= 0.0 {
            return None;
        }
        Some(self.weighted_age_time / span)
    }

    /// Access-scored perceived freshness (Definition 3), or `None` before
    /// any measured access.
    pub fn access_pf(&self) -> Option<f64> {
        self.scores.overall().perceived_freshness()
    }

    /// Per-element access scores.
    pub fn scores(&self) -> &PerElementScore {
        &self.scores
    }

    /// Instantaneous weighted freshness `Σ pᵢ·freshᵢ` right now.
    pub fn instantaneous_pf(&self) -> f64 {
        self.fresh_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_weighted_fresh_time() {
        let mut ev = FreshnessEvaluator::new(&[0.75, 0.25]);
        ev.start_measurement(0.0);
        // Element 0 stale during [1, 3): weight drops to 0.25 for 2 units.
        ev.on_update(1.0, 0);
        ev.on_sync(3.0, 0);
        ev.finish(4.0);
        // Integral: 1·1 + 2·0.25 + 1·1 = 2.5 over 4 units.
        assert!((ev.time_averaged_pf().unwrap() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn warmup_excluded() {
        let mut ev = FreshnessEvaluator::new(&[1.0]);
        // Stale for the whole warm-up, refreshed exactly at measurement start.
        ev.on_update(0.5, 0);
        ev.start_measurement(10.0);
        ev.on_sync(10.0, 0);
        ev.finish(20.0);
        // Only the measured window counts — and it was fully fresh.
        assert!((ev.time_averaged_pf().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn access_scores_only_when_measuring() {
        let mut ev = FreshnessEvaluator::new(&[1.0]);
        ev.on_access(0.1, 0); // warm-up access: ignored
        assert_eq!(ev.access_pf(), None);
        ev.start_measurement(1.0);
        ev.on_access(1.5, 0);
        ev.on_update(2.0, 0);
        ev.on_access(2.5, 0);
        assert_eq!(ev.access_pf(), Some(0.5));
    }

    #[test]
    fn duplicate_updates_and_syncs_idempotent() {
        let mut ev = FreshnessEvaluator::new(&[0.5, 0.5]);
        ev.start_measurement(0.0);
        ev.on_update(1.0, 0);
        ev.on_update(1.5, 0); // already stale
        ev.on_sync(2.0, 0);
        ev.on_sync(2.5, 0); // already fresh
        ev.finish(3.0);
        // Stale weight 0.5 during [1,2): integral = 3 − 0.5 = 2.5.
        assert!((ev.time_averaged_pf().unwrap() - 2.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_measurement_yields_none() {
        let mut ev = FreshnessEvaluator::new(&[1.0]);
        ev.on_update(1.0, 0);
        ev.finish(2.0);
        assert_eq!(ev.time_averaged_pf(), None);
        assert_eq!(ev.access_pf(), None);
    }

    #[test]
    fn age_integrates_linearly_while_stale() {
        let mut ev = FreshnessEvaluator::new(&[1.0]);
        ev.start_measurement(0.0);
        ev.on_update(1.0, 0); // age starts growing at t=1
        ev.on_sync(3.0, 0); // age resets after 2 time units
        ev.finish(4.0);
        // ∫ age = ∫₁³ (t−1) dt = 2; averaged over 4 units = 0.5.
        assert!((ev.time_averaged_age().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn age_weighted_across_elements() {
        let mut ev = FreshnessEvaluator::new(&[0.75, 0.25]);
        ev.start_measurement(0.0);
        ev.on_update(0.0, 0); // heavy element stale the whole time
        ev.finish(2.0);
        // ∫ 0.75·t dt over [0,2] = 1.5; /2 = 0.75.
        assert!((ev.time_averaged_age().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn age_second_update_does_not_reset_clock() {
        // Age counts from the FIRST unseen change.
        let mut ev = FreshnessEvaluator::new(&[1.0]);
        ev.start_measurement(0.0);
        ev.on_update(1.0, 0);
        ev.on_update(2.0, 0); // later change: clock keeps running from t=1
        ev.finish(3.0);
        // ∫₁³ (t−1) dt = 2; /3.
        assert!((ev.time_averaged_age().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn age_spanning_warmup_counts_preexisting_staleness() {
        let mut ev = FreshnessEvaluator::new(&[1.0]);
        ev.on_update(1.0, 0); // goes stale during warm-up
        ev.start_measurement(2.0);
        ev.finish(4.0);
        // Age at t ∈ [2,4] is (t−1): ∫ = (3+1)·2/2... ∫₂⁴(t−1)dt = 4; /2 = 2.
        assert!((ev.time_averaged_age().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stale_arrival_keeps_age_clock() {
        let mut ev = FreshnessEvaluator::new(&[1.0]);
        ev.start_measurement(0.0);
        ev.on_update(1.0, 0);
        // A transfer completes with still-stale content: clock keeps running.
        ev.on_sync_applied(2.0, 0, false);
        ev.on_sync(3.0, 0);
        ev.finish(3.0);
        // ∫₁³ (t−1) dt = 2; /3.
        assert!((ev.time_averaged_age().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_tracks_state() {
        let mut ev = FreshnessEvaluator::new(&[0.6, 0.4]);
        assert!((ev.instantaneous_pf() - 1.0).abs() < 1e-12);
        ev.on_update(1.0, 1);
        assert!((ev.instantaneous_pf() - 0.6).abs() < 1e-12);
        ev.on_sync(2.0, 1);
        assert!((ev.instantaneous_pf() - 1.0).abs() < 1e-12);
    }
}
