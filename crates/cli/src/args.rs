//! Minimal `--key value` argument parsing with typed accessors.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parse a flat `--key value --key2 value2 …` list. Flags without
    /// values and positional arguments are rejected — every option of this
    /// CLI takes a value, so anything else is a typo worth surfacing.
    pub fn parse(argv: &[String]) -> Result<ParsedArgs, String> {
        let mut values = BTreeMap::new();
        let mut iter = argv.iter();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option starting with `--`, got `{arg}`"))?;
            if key.is_empty() {
                return Err("empty option name `--`".into());
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("option `--{key}` is missing its value"))?;
            if values.insert(key.to_string(), value.clone()).is_some() {
                return Err(format!("option `--{key}` given twice"));
            }
        }
        Ok(ParsedArgs { values })
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option `--{key}`"))
    }

    /// Required parsed value.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| format!("option `--{key}`: cannot parse `{raw}`"))
    }

    /// Optional parsed value with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("option `--{key}`: cannot parse `{raw}`")),
        }
    }

    /// All keys seen (for unknown-option checks).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Reject any option not in `allowed` — catches typos loudly instead
    /// of silently ignoring them.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.keys() {
            if !allowed.contains(&key) {
                return Err(format!(
                    "unknown option `--{key}` (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, String> {
        ParsedArgs::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs() {
        let p = parse(&["--objects", "500", "--theta", "1.2"]).unwrap();
        assert_eq!(p.get("objects"), Some("500"));
        assert_eq!(p.require_parsed::<f64>("theta").unwrap(), 1.2);
    }

    #[test]
    fn rejects_positional() {
        assert!(parse(&["objects"]).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        let err = parse(&["--objects"]).unwrap_err();
        assert!(err.contains("missing its value"));
    }

    #[test]
    fn rejects_duplicates() {
        let err = parse(&["--a", "1", "--a", "2"]).unwrap_err();
        assert!(err.contains("twice"));
    }

    #[test]
    fn rejects_empty_option() {
        assert!(parse(&["--", "x"]).is_err());
    }

    #[test]
    fn required_missing_reports_key() {
        let p = parse(&[]).unwrap();
        let err = p.require("input").unwrap_err();
        assert!(err.contains("--input"));
    }

    #[test]
    fn parse_error_reports_value() {
        let p = parse(&["--n", "abc"]).unwrap();
        let err = p.require_parsed::<usize>("n").unwrap_err();
        assert!(err.contains("abc"));
    }

    #[test]
    fn default_used_when_absent() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.parsed_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn expect_only_catches_typos() {
        let p = parse(&["--partitons", "5"]).unwrap();
        let err = p.expect_only(&["partitions"]).unwrap_err();
        assert!(err.contains("partitons"));
    }
}
