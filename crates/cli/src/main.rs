//! `freshen` — the command-line entry point. All logic lives in the
//! library so it can be tested; this binary only wires stdin/stdout and
//! the exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match freshen_cli::run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
