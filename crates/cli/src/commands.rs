//! The subcommands: scenario, solve, heuristic, simulate, timetable,
//! estimate, engine, audit.

use std::io::Write;

use freshen_core::audit::SolutionAudit;
use freshen_core::exec::Executor;
use freshen_core::policy::SyncPolicy;
use freshen_core::problem::{Problem, Solution};
use freshen_core::schedule::FixedOrderSchedule;
use freshen_engine::{
    Engine, EngineConfig, EstimatorKind, LiveAccessStream, LivePollSource, PollSource,
    ReplayPollSource, ResolvePolicy,
};
use freshen_fleet::{Fleet, FleetConfig, FleetSpec};
use freshen_heuristics::{
    AllocationPolicy, HeuristicConfig, HeuristicScheduler, PartitionCriterion,
};
use freshen_obs::{Recorder, SloConfig};
use freshen_serve::{ServeConfig, ServeWorkload, Server, ACCESS_SEED_SALT, POLL_SEED_SALT};
use freshen_sim::{SimConfig, Simulation};
use freshen_solver::{LagrangeSolver, ProjectedGradientSolver};
use freshen_workload::scenario::{Alignment, Scenario, SizeAlignment, SizeDist};

fn read_problem(path: &str) -> Result<Problem, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read problem file `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse problem `{path}`: {e}"))
}

fn read_schedule(path: &str, expected_len: usize) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read schedule file `{path}`: {e}"))?;
    let sol: Solution =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse schedule `{path}`: {e}"))?;
    if sol.frequencies.len() != expected_len {
        return Err(format!(
            "schedule covers {} elements but the problem has {expected_len}",
            sol.frequencies.len()
        ));
    }
    Ok(sol.frequencies)
}

fn parse_policy(raw: Option<&str>) -> Result<SyncPolicy, String> {
    match raw {
        None | Some("fixed") => Ok(SyncPolicy::FixedOrder),
        Some("poisson") => Ok(SyncPolicy::Poisson),
        Some(other) => Err(format!("unknown policy `{other}` (fixed|poisson)")),
    }
}

fn write_json<T: serde::Serialize>(value: &T, out: &mut dyn Write) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    writeln!(out, "{text}").map_err(|e| e.to_string())
}

/// Build the observability recorder for a command from its
/// `--metrics-out` / `--trace-out` flags: enabled only when at least one
/// output is requested, so un-instrumented invocations pay nothing.
fn obs_recorder(args: &crate::ParsedArgs) -> (Recorder, Option<&str>, Option<&str>) {
    let metrics = args.get("metrics-out");
    let trace = args.get("trace-out");
    let recorder = if metrics.is_some() || trace.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    (recorder, metrics, trace)
}

/// Build the executor for a command from its `--threads` flag: an
/// explicit positive value wins, `0` or absence falls back to the
/// `FRESHEN_THREADS` environment variable, and an unset environment means
/// serial execution.
fn exec_from_args(args: &crate::ParsedArgs, recorder: &Recorder) -> Result<Executor, String> {
    let threads: usize = args.parsed_or("threads", 0usize)?;
    let threads = if threads == 0 { None } else { Some(threads) };
    Ok(Executor::from_threads(threads).with_recorder(recorder.clone()))
}

/// Flush the requested observability outputs after a command finishes.
fn write_obs_outputs(
    recorder: &Recorder,
    metrics: Option<&str>,
    trace: Option<&str>,
) -> Result<(), String> {
    if let (Some(path), Some(json)) = (metrics, recorder.metrics_json()) {
        std::fs::write(path, json)
            .map_err(|e| format!("cannot write metrics file `{path}`: {e}"))?;
    }
    if let (Some(path), Some(json)) = (trace, recorder.chrome_trace_json()) {
        std::fs::write(path, json).map_err(|e| format!("cannot write trace file `{path}`: {e}"))?;
    }
    Ok(())
}

/// `freshen scenario` — generate a synthetic problem as JSON.
pub fn cmd_scenario(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "objects",
        "updates",
        "syncs",
        "theta",
        "alignment",
        "std-dev",
        "pareto-sizes",
        "size-alignment",
        "seed",
    ])?;
    let mut builder = Scenario::builder()
        .num_objects(args.require_parsed("objects")?)
        .updates_per_period(args.require_parsed("updates")?)
        .syncs_per_period(args.require_parsed("syncs")?)
        .zipf_theta(args.parsed_or("theta", 0.0)?)
        .update_std_dev(args.parsed_or("std-dev", 1.0)?)
        .seed(args.parsed_or("seed", 0u64)?);
    builder = builder.alignment(match args.get("alignment") {
        None | Some("shuffled") => Alignment::ShuffledChange,
        Some("aligned") => Alignment::Aligned,
        Some("reverse") => Alignment::Reverse,
        Some(other) => return Err(format!("unknown alignment `{other}`")),
    });
    if let Some(shape) = args.get("pareto-sizes") {
        let shape: f64 = shape
            .parse()
            .map_err(|_| format!("--pareto-sizes: cannot parse `{shape}`"))?;
        builder = builder.size_dist(SizeDist::Pareto { shape });
        builder = builder.size_alignment(match args.get("size-alignment") {
            None | Some("aligned") => SizeAlignment::AlignedWithChange,
            Some("reverse") => SizeAlignment::ReverseOfChange,
            Some("shuffled") => SizeAlignment::Shuffled,
            Some(other) => return Err(format!("unknown size-alignment `{other}`")),
        });
    } else if args.get("size-alignment").is_some() {
        return Err("--size-alignment requires --pareto-sizes".into());
    }
    let problem = builder
        .build()
        .map_err(|e| e.to_string())?
        .problem()
        .map_err(|e| e.to_string())?;
    write_json(&problem, out)
}

/// `freshen solve` — exact Lagrange solve, or a tiered relay solve when
/// `--topology` names a spec file.
pub fn cmd_solve(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "input",
        "policy",
        "threads",
        "metrics-out",
        "trace-out",
        "topology",
        "split-budget",
        "shards",
    ])?;
    if let Some(spec_path) = args.get("topology") {
        return cmd_solve_topology(args, spec_path, out);
    }
    for flag in ["split-budget", "shards"] {
        if args.get(flag).is_some() {
            return Err(format!("--{flag} requires --topology"));
        }
    }
    let (recorder, metrics, trace) = obs_recorder(args);
    let executor = exec_from_args(args, &recorder)?;
    let problem = read_problem(args.require("input")?)?;
    let solver = LagrangeSolver {
        policy: parse_policy(args.get("policy"))?,
        recorder: recorder.clone(),
        executor,
        ..Default::default()
    };
    let solution = solver.solve(&problem).map_err(|e| e.to_string())?;
    write_obs_outputs(&recorder, metrics, trace)?;
    write_json(&solution, out)
}

/// The `--topology` arm of `freshen solve`: load a relay spec, solve the
/// tiered program (optionally re-splitting one total budget across
/// tiers), certify every tier, and emit the per-link schedule.
///
/// The spec file is `{"topology": {nodes, links}, "problem": {...}}`;
/// an external `--input problem.json` may replace the inline block. The
/// spec and the report both go through the hand-rolled `freshen_core::json`
/// path so the mode works without serde.
fn cmd_solve_topology(
    args: &crate::ParsedArgs,
    spec_path: &str,
    out: &mut dyn Write,
) -> Result<(), String> {
    use freshen_core::json::Json;
    use freshen_core::topology::{problem_from_json, Topology};
    use freshen_solver::TieredSolver;

    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read topology spec `{spec_path}`: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| e.to_string())?;
    let problem = match doc.get("problem") {
        Some(block) => problem_from_json(block).map_err(|e| e.to_string())?,
        None => read_problem(args.require("input").map_err(|_| {
            format!("spec `{spec_path}` has no inline \"problem\" block; pass --input")
        })?)?,
    };
    let topo_doc = doc.get("topology").unwrap_or(&doc);
    let topology = Topology::from_spec(topo_doc, problem.len()).map_err(|e| e.to_string())?;

    let solver = TieredSolver {
        base: LagrangeSolver {
            policy: parse_policy(args.get("policy"))?,
            ..Default::default()
        },
        shards: args.parsed_or("shards", 0usize)?,
        ..Default::default()
    };
    let solution = match args.get("split-budget") {
        Some(raw) => {
            let total: f64 = raw
                .parse()
                .map_err(|_| format!("--split-budget: cannot parse `{raw}`"))?;
            solver
                .solve_split(&topology, &problem, total)
                .map_err(|e| e.to_string())?
        }
        None => solver
            .solve(&topology, &problem)
            .map_err(|e| e.to_string())?,
    };
    let reports = solver
        .certify(&topology, &problem, &solution)
        .map_err(|e| e.to_string())?;
    let certified = reports.iter().filter(|r| r.is_clean()).count();

    let list = |xs: &[f64]| -> String {
        let parts: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
        format!("[{}]", parts.join(","))
    };
    let mut links = Vec::new();
    for (l, link) in topology.links().iter().enumerate() {
        links.push(format!(
            "{{\"from\":\"{}\",\"to\":\"{}\",\"frequencies\":{}}}",
            topology.names()[link.from],
            topology.names()[link.to],
            list(&solution.schedule.link_freqs[l])
        ));
    }
    writeln!(
        out,
        "{{\n  \"edge_pf\": {},\n  \"rounds\": {},\n  \"certified_tiers\": {},\n  \"tiers\": {},\n  \"node_pf\": {},\n  \"node_spend\": {},\n  \"budgets\": {},\n  \"links\": [{}]\n}}",
        solution.edge_pf,
        solution.rounds,
        certified,
        reports.len(),
        list(&solution.node_pf),
        list(&solution.node_spend),
        list(&solution.budgets),
        links.join(",")
    )
    .map_err(|e| e.to_string())
}

/// `freshen heuristic` — the scalable pipeline.
pub fn cmd_heuristic(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "input",
        "partitions",
        "kmeans",
        "criterion",
        "allocation",
        "threads",
        "metrics-out",
        "trace-out",
    ])?;
    let (recorder, metrics, trace) = obs_recorder(args);
    let executor = exec_from_args(args, &recorder)?;
    let problem = read_problem(args.require("input")?)?;
    let criterion = match args.get("criterion") {
        None | Some("pf") => PartitionCriterion::PerceivedFreshness,
        Some("p") => PartitionCriterion::AccessProb,
        Some("lambda") => PartitionCriterion::ChangeRate,
        Some("p-over-lambda") => PartitionCriterion::AccessOverChange,
        Some("pf-size") => PartitionCriterion::PerceivedFreshnessPerSize,
        Some("size") => PartitionCriterion::Size,
        Some(other) => return Err(format!("unknown criterion `{other}`")),
    };
    let allocation = match args.get("allocation") {
        None | Some("fba") => AllocationPolicy::FixedBandwidth,
        Some("ffa") => AllocationPolicy::FixedFrequency,
        Some(other) => return Err(format!("unknown allocation `{other}` (fba|ffa)")),
    };
    let config = HeuristicConfig {
        criterion,
        num_partitions: args.require_parsed("partitions")?,
        kmeans_iterations: args.parsed_or("kmeans", 0usize)?,
        allocation,
        reference_frequency: 1.0,
    };
    let result = HeuristicScheduler::new(config)
        .map_err(|e| e.to_string())?
        .with_recorder(recorder.clone())
        .with_executor(executor)
        .solve(&problem)
        .map_err(|e| e.to_string())?;
    write_obs_outputs(&recorder, metrics, trace)?;
    write_json(&result.solution, out)
}

/// `freshen simulate` — run the discrete-event simulator.
pub fn cmd_simulate(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "input",
        "schedule",
        "periods",
        "warmup",
        "accesses",
        "seed",
        "policy",
        "threads",
        "metrics-out",
        "trace-out",
    ])?;
    let (recorder, metrics, trace) = obs_recorder(args);
    let executor = exec_from_args(args, &recorder)?;
    let problem = read_problem(args.require("input")?)?;
    let freqs = read_schedule(args.require("schedule")?, problem.len())?;
    let config = SimConfig {
        periods: args.parsed_or("periods", 50.0)?,
        warmup_periods: args.parsed_or("warmup", 2.0)?,
        accesses_per_period: args.parsed_or("accesses", 1000.0)?,
        seed: args.parsed_or("seed", 0u64)?,
    };
    let report = Simulation::new(&problem, &freqs, config)
        .map_err(|e| e.to_string())?
        .with_sync_policy(parse_policy(args.get("policy"))?)
        .with_recorder(recorder.clone())
        .with_executor(executor)
        .run()
        .map_err(|e| e.to_string())?;
    write_obs_outputs(&recorder, metrics, trace)?;
    // The per-element vectors dwarf the summary; print the summary only.
    #[derive(serde::Serialize)]
    struct Summary {
        analytic_pf: f64,
        time_averaged_pf: f64,
        access_pf: Option<f64>,
        updates: u64,
        syncs: u64,
        accesses: u64,
    }
    write_json(
        &Summary {
            analytic_pf: report.analytic_pf,
            time_averaged_pf: report.time_averaged_pf,
            access_pf: report.access_pf,
            updates: report.updates,
            syncs: report.syncs,
            accesses: report.accesses,
        },
        out,
    )
}

/// `freshen estimate` — learn a problem from access/poll logs (§7 loop):
/// ship your request log and poll log, get a ready-to-solve problem JSON.
pub fn cmd_estimate(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "elements",
        "bandwidth",
        "accesses",
        "polls",
        "smoothing",
        "fallback-rate",
    ])?;
    let n: usize = args.require_parsed("elements")?;
    let bandwidth: f64 = args.require_parsed("bandwidth")?;
    let access_path = args.require("accesses")?;
    let access_text = std::fs::read_to_string(access_path)
        .map_err(|e| format!("cannot read access log `{access_path}`: {e}"))?;
    let accesses =
        freshen_workload::trace::parse_access_log(&access_text).map_err(|e| e.to_string())?;
    let polls = match args.get("polls") {
        None => Vec::new(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read poll log `{path}`: {e}"))?;
            freshen_workload::trace::parse_poll_log(&text).map_err(|e| e.to_string())?
        }
    };
    let smoothing: f64 = args.parsed_or("smoothing", 0.5)?;
    let fallback: f64 = args.parsed_or("fallback-rate", 1.0)?;
    let learned =
        freshen_workload::trace::learn_from_logs(n, &accesses, &polls, smoothing, fallback)
            .map_err(|e| e.to_string())?;
    let problem = Problem::builder()
        .change_rates(learned.change_rates)
        .access_probs(learned.access_probs)
        .bandwidth(bandwidth)
        .build()
        .map_err(|e| e.to_string())?;
    write_json(&problem, out)
}

/// Parse the engine-configuration flags shared by `engine` and `serve`.
fn engine_config_from_args(args: &crate::ParsedArgs) -> Result<EngineConfig, String> {
    let defaults = EngineConfig::default();
    let estimator = match args.get("estimator") {
        None | Some("ewma") => EstimatorKind::Ewma {
            gain: args.parsed_or("gain", 0.1)?,
        },
        Some("window") => EstimatorKind::Window {
            len: args.parsed_or("window", 8usize)?,
        },
        Some("lln") => EstimatorKind::Lln,
        Some("sa") => EstimatorKind::Sa {
            gain: args.parsed_or("gain", 0.5)?,
            decay: args.parsed_or("decay", 0.75)?,
        },
        Some(other) => return Err(format!("unknown estimator `{other}` (ewma|window|lln|sa)")),
    };
    let resolve_policy = match args.get("policy") {
        None | Some("drift") => ResolvePolicy::DriftGated,
        Some("oracle") => ResolvePolicy::EveryEpoch,
        Some(other) => return Err(format!("unknown policy `{other}` (drift|oracle)")),
    };
    // `--slo-target-pf` arms the SLO engine with a perceived-freshness
    // floor; the remaining rules keep their defaults. Absent, the run
    // carries telemetry but no health evaluation.
    let slo = match args.get("slo-target-pf") {
        None => None,
        Some(_) => Some(SloConfig {
            target_pf: args.require_parsed("slo-target-pf")?,
            ..SloConfig::default()
        }),
    };
    // `--poll-cost` sets the levy directly; `--cost-budget` has the
    // solver calibrate it from the spend cap (mutually exclusive —
    // `EngineConfig::validate` enforces that).
    let cost_budget = match args.get("cost-budget") {
        None => None,
        Some(_) => Some(args.require_parsed("cost-budget")?),
    };
    Ok(EngineConfig {
        slo,
        poll_cost: args.parsed_or("poll-cost", defaults.poll_cost)?,
        cost_budget,
        progress_every: args.parsed_or("progress", 0usize)?,
        epochs: args.parsed_or("epochs", defaults.epochs)?,
        epoch_len: args.parsed_or("epoch-len", defaults.epoch_len)?,
        warmup_epochs: args.parsed_or("warmup", defaults.warmup_epochs)?,
        drift_threshold: args.parsed_or("drift-threshold", defaults.drift_threshold)?,
        resolve_policy,
        estimator,
        smoothing: args.parsed_or("smoothing", defaults.smoothing)?,
        fallback_rate: args.parsed_or("fallback-rate", defaults.fallback_rate)?,
        budget_factor: args.parsed_or("budget-factor", defaults.budget_factor)?,
        max_backlog: args.parsed_or("max-backlog", defaults.max_backlog)?,
        failure_rate: args.parsed_or("failure-rate", defaults.failure_rate)?,
        max_retries: args.parsed_or("max-retries", defaults.max_retries)?,
        retry_backoff: args.parsed_or("retry-backoff", defaults.retry_backoff)?,
        seed: args.parsed_or("seed", defaults.seed)?,
        ..defaults
    })
}

/// `freshen engine` — run the online freshening runtime over a recorded
/// trace (`--trace`/`--polls`) or a live simulated workload (`--live`).
pub fn cmd_engine(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "trace",
        "polls",
        "elements",
        "bandwidth",
        "live",
        "access-rate",
        "epochs",
        "epoch-len",
        "warmup",
        "drift-threshold",
        "policy",
        "estimator",
        "gain",
        "decay",
        "window",
        "poll-cost",
        "cost-budget",
        "smoothing",
        "fallback-rate",
        "budget-factor",
        "max-backlog",
        "failure-rate",
        "max-retries",
        "retry-backoff",
        "seed",
        "threads",
        "progress",
        "slo-target-pf",
        "report-out",
        "metrics-out",
        "trace-out",
    ])?;
    let (recorder, metrics, trace_out) = obs_recorder(args);
    let executor = exec_from_args(args, &recorder)?;
    let config = engine_config_from_args(args)?;

    let report = match (args.get("trace"), args.get("live")) {
        (Some(_), Some(_)) => {
            return Err("--trace and --live are mutually exclusive".into());
        }
        (Some(access_path), None) => {
            // Trace replay: streaming access reader (O(1) memory), poll
            // outcomes grouped per element.
            let n: usize = args.require_parsed("elements")?;
            let bandwidth: f64 = args.require_parsed("bandwidth")?;
            let file = std::fs::File::open(access_path)
                .map_err(|e| format!("cannot read access log `{access_path}`: {e}"))?;
            let accesses =
                freshen_workload::trace::AccessLogReader::new(std::io::BufReader::new(file));
            let polls = match args.get("polls") {
                None => Vec::new(),
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read poll log `{path}`: {e}"))?;
                    freshen_workload::trace::parse_poll_log(&text).map_err(|e| e.to_string())?
                }
            };
            let prior = Problem::builder()
                .change_rates(vec![config.fallback_rate; n])
                .access_weights(vec![1.0; n])
                .bandwidth(bandwidth)
                .build()
                .map_err(|e| e.to_string())?;
            let mut source = ReplayPollSource::new(n, &polls).map_err(|e| e.to_string())?;
            run_engine(
                &prior,
                config,
                accesses,
                &mut source,
                recorder.clone(),
                executor,
            )?
        }
        (None, Some(problem_path)) => {
            // Live mode: the problem file supplies the ground truth the
            // engine must discover through its own polls and accesses.
            let problem = read_problem(problem_path)?;
            let access_rate: f64 = args.parsed_or("access-rate", 100.0)?;
            let horizon = config.horizon();
            let accesses = LiveAccessStream::new(
                problem.access_probs(),
                access_rate,
                config.seed ^ ACCESS_SEED_SALT,
                horizon,
            );
            let mut source = LivePollSource::new(
                problem.change_rates(),
                config.seed ^ POLL_SEED_SALT,
                horizon,
            )
            .map_err(|e| e.to_string())?;
            run_engine(
                &problem,
                config,
                accesses,
                &mut source,
                recorder.clone(),
                executor,
            )?
        }
        (None, None) => {
            return Err("one of --trace or --live is required".into());
        }
    };

    write_obs_outputs(&recorder, metrics, trace_out)?;
    let json = report.to_json();
    match args.get("report-out") {
        Some(path) => std::fs::write(path, &json)
            .map_err(|e| format!("cannot write report file `{path}`: {e}")),
        None => out.write_all(json.as_bytes()).map_err(|e| e.to_string()),
    }
}

fn run_engine<I>(
    prior: &Problem,
    config: EngineConfig,
    accesses: I,
    source: &mut dyn PollSource,
    recorder: Recorder,
    executor: Executor,
) -> Result<freshen_engine::EngineReport, String>
where
    I: IntoIterator<Item = freshen_core::error::Result<freshen_workload::trace::AccessRecord>>,
{
    Engine::new(prior, config)
        .map_err(|e| e.to_string())?
        .with_recorder(recorder)
        .with_executor(executor)
        .run(accesses, source)
        .map_err(|e| e.to_string())
}

/// `freshen serve` — run the engine as a long-lived service with
/// checkpoint/restore, graceful shutdown, and an HTTP control plane.
pub fn cmd_serve(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "trace",
        "polls",
        "elements",
        "bandwidth",
        "live",
        "access-rate",
        "epochs",
        "epoch-len",
        "warmup",
        "drift-threshold",
        "policy",
        "estimator",
        "gain",
        "decay",
        "window",
        "poll-cost",
        "cost-budget",
        "smoothing",
        "fallback-rate",
        "budget-factor",
        "max-backlog",
        "failure-rate",
        "max-retries",
        "retry-backoff",
        "seed",
        "threads",
        "progress",
        "slo-target-pf",
        "listen",
        "checkpoint-every",
        "checkpoint",
        "resume",
        "drain-after",
        "report-out",
        "metrics-out",
        "trace-out",
    ])?;
    let (mut recorder, metrics, trace_out) = obs_recorder(args);
    if args.get("listen").is_some() {
        // The control plane's /metrics route needs a live recorder even
        // when no file outputs were requested.
        recorder = Recorder::enabled();
    }
    let executor = exec_from_args(args, &recorder)?;
    let config = engine_config_from_args(args)?;

    let workload = match (args.get("trace"), args.get("live")) {
        (Some(_), Some(_)) => {
            return Err("--trace and --live are mutually exclusive".into());
        }
        (Some(access_path), None) => {
            let elements: usize = args.require_parsed("elements")?;
            let bandwidth: f64 = args.require_parsed("bandwidth")?;
            let file = std::fs::File::open(access_path)
                .map_err(|e| format!("cannot read access log `{access_path}`: {e}"))?;
            // Serve replays may resume mid-run, so the log is held in
            // memory (unlike the one-shot engine's streaming reader).
            let accesses: Result<Vec<_>, _> =
                freshen_workload::trace::AccessLogReader::new(std::io::BufReader::new(file))
                    .collect();
            let accesses = accesses.map_err(|e| e.to_string())?;
            let polls = match args.get("polls") {
                None => Vec::new(),
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read poll log `{path}`: {e}"))?;
                    freshen_workload::trace::parse_poll_log(&text).map_err(|e| e.to_string())?
                }
            };
            ServeWorkload::Replay {
                elements,
                bandwidth,
                accesses,
                polls,
            }
        }
        (None, Some(problem_path)) => ServeWorkload::Live {
            problem: read_problem(problem_path)?,
            access_rate: args.parsed_or("access-rate", 100.0)?,
        },
        (None, None) => {
            return Err("one of --trace or --live is required".into());
        }
    };

    let drain_after = match args.get("drain-after") {
        None => None,
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|e| format!("cannot parse --drain-after `{raw}`: {e}"))?,
        ),
    };
    let serve_config = ServeConfig {
        engine: config,
        listen: args.get("listen").map(String::from),
        checkpoint_every: args.parsed_or("checkpoint-every", 0usize)?,
        checkpoint_path: args.get("checkpoint").unwrap_or("freshen.snapshot").into(),
        resume: args.get("resume").map(std::path::PathBuf::from),
        drain_after,
        epoch_throttle: None,
    };

    let server = Server::new(workload, serve_config)
        .map_err(|e| e.to_string())?
        .with_recorder(recorder.clone())
        .with_executor(executor);
    if let Some(addr) = server.local_addr() {
        writeln!(out, "control plane listening on http://{addr}").map_err(|e| e.to_string())?;
    }
    let outcome = server.run().map_err(|e| e.to_string())?;
    write_obs_outputs(&recorder, metrics, trace_out)?;

    match outcome.report {
        Some(report) => {
            let json = report.to_json();
            match args.get("report-out") {
                Some(path) => std::fs::write(path, &json)
                    .map_err(|e| format!("cannot write report file `{path}`: {e}")),
                None => out.write_all(json.as_bytes()).map_err(|e| e.to_string()),
            }
        }
        None => writeln!(
            out,
            "drained after {} epoch(s); {} checkpoint(s) written",
            outcome.epochs_run, outcome.checkpoints
        )
        .map_err(|e| e.to_string()),
    }
}

/// `freshen fleet` — drive a spec-declared multi-tenant fleet behind
/// one control plane, with per-tenant checkpoints and quarantine on
/// resume.
pub fn cmd_fleet(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "spec",
        "listen",
        "snapshot-dir",
        "resume-dir",
        "checkpoint-every",
        "drain-after",
        "threads",
        "report-out",
        "metrics-out",
        "trace-out",
    ])?;
    let (mut recorder, metrics, trace_out) = obs_recorder(args);
    if args.get("listen").is_some() {
        // The control plane's /metrics routes need a live recorder even
        // when no file outputs were requested.
        recorder = Recorder::enabled();
    }
    let executor = exec_from_args(args, &recorder)?;

    let spec_path = args.require("spec")?;
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read fleet spec `{spec_path}`: {e}"))?;
    let mut spec = FleetSpec::parse(&spec_text).map_err(|e| e.to_string())?;
    if let Some(every) = args.get("checkpoint-every") {
        spec.checkpoint_every = every
            .parse()
            .map_err(|e| format!("cannot parse --checkpoint-every `{every}`: {e}"))?;
    }
    let drain_after = match args.get("drain-after") {
        None => None,
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|e| format!("cannot parse --drain-after `{raw}`: {e}"))?,
        ),
    };
    let config = FleetConfig {
        listen: args.get("listen").map(String::from),
        snapshot_dir: args.get("snapshot-dir").unwrap_or("fleet-snapshots").into(),
        resume_dir: args.get("resume-dir").map(std::path::PathBuf::from),
        drain_after,
        round_throttle: None,
    };

    let fleet = Fleet::new(spec, config)
        .map_err(|e| e.to_string())?
        .with_recorder(recorder.clone())
        .with_executor(executor);
    if let Some(addr) = fleet.local_addr() {
        writeln!(out, "control plane listening on http://{addr}").map_err(|e| e.to_string())?;
    }
    let outcome = fleet.run().map_err(|e| e.to_string())?;
    write_obs_outputs(&recorder, metrics, trace_out)?;

    let quarantined: Vec<&str> = outcome
        .tenants
        .iter()
        .filter(|t| t.quarantined)
        .map(|t| t.id.as_str())
        .collect();
    if !quarantined.is_empty() {
        writeln!(out, "quarantined tenant(s): {}", quarantined.join(", "))
            .map_err(|e| e.to_string())?;
    }
    if outcome.tenants.iter().any(|t| t.report.is_some()) {
        let json = outcome.reports_json();
        match args.get("report-out") {
            Some(path) => std::fs::write(path, &json)
                .map_err(|e| format!("cannot write report file `{path}`: {e}"))?,
            None => out.write_all(json.as_bytes()).map_err(|e| e.to_string())?,
        }
    } else {
        writeln!(
            out,
            "drained after {} round(s); {} checkpoint(s) written",
            outcome.rounds_run, outcome.checkpoints
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// `freshen audit` — check the KKT optimality certificate of a schedule.
///
/// Two input modes:
///
/// * **JSON mode** (`--input problem.json [--schedule schedule.json]`):
///   audit an existing schedule against its problem, or re-solve and
///   audit when no schedule is given.
/// * **Scenario mode** (`--objects/--updates/--syncs/...`): generate the
///   paper-style workload in-process, solve it, and audit the result —
///   no files needed, so it doubles as a self-test.
///
/// The report is printed as JSON either way; any violation turns the
/// exit status into a failure, so `freshen audit` slots directly into
/// CI.
pub fn cmd_audit(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&[
        "input", "schedule", "objects", "updates", "syncs", "theta", "std-dev", "seed", "policy",
        "solver", "shards", "relaxed",
    ])?;
    let policy = parse_policy(args.get("policy"))?;

    let problem = match (args.get("input"), args.get("objects")) {
        (Some(_), Some(_)) => {
            return Err("--input and --objects are mutually exclusive".into());
        }
        (Some(path), None) => read_problem(path)?,
        (None, Some(_)) => Scenario::builder()
            .num_objects(args.require_parsed("objects")?)
            .updates_per_period(args.require_parsed("updates")?)
            .syncs_per_period(args.require_parsed("syncs")?)
            .zipf_theta(args.parsed_or("theta", 0.0)?)
            .update_std_dev(args.parsed_or("std-dev", 1.0)?)
            .alignment(Alignment::ShuffledChange)
            .seed(args.parsed_or("seed", 0u64)?)
            .build()
            .map_err(|e| e.to_string())?
            .problem()
            .map_err(|e| e.to_string())?,
        (None, None) => {
            return Err("one of --input or --objects is required".into());
        }
    };

    let solution = match args.get("schedule") {
        Some(path) => {
            // Audit a pre-computed schedule file as-is. The metric
            // evaluators assert on malformed frequencies, so only score
            // the schedule when it is well-formed — the audit itself
            // flags the malformed entries either way.
            let frequencies = read_schedule(path, problem.len())?;
            if frequencies.iter().all(|f| f.is_finite() && *f >= 0.0) {
                Solution::evaluate(&problem, frequencies)
            } else {
                Solution {
                    frequencies,
                    perceived_freshness: 0.0,
                    general_freshness: 0.0,
                    bandwidth_used: 0.0,
                    multiplier: None,
                    cost_multiplier: None,
                    iterations: 0,
                }
            }
        }
        None => match args.get("solver") {
            None | Some("exact") => {
                let solver = LagrangeSolver {
                    policy,
                    ..Default::default()
                };
                let shards: usize = args.parsed_or("shards", 0usize)?;
                if shards > 1 {
                    solver
                        .solve_sharded(&problem, shards)
                        .map_err(|e| e.to_string())?
                } else {
                    solver.solve(&problem).map_err(|e| e.to_string())?
                }
            }
            Some("pg") => {
                if policy != SyncPolicy::FixedOrder {
                    return Err("--solver pg supports only --policy fixed".into());
                }
                // Audit-grade settings: converge until the KKT spread
                // clears the strict certificate.
                ProjectedGradientSolver {
                    max_iters: 50_000,
                    rel_tol: 1e-16,
                    ..Default::default()
                }
                .solve(&problem)
                .map_err(|e| e.to_string())?
            }
            Some(other) => return Err(format!("unknown solver `{other}` (exact|pg)")),
        },
    };

    let audit = if args.get("relaxed").is_some() {
        SolutionAudit::relaxed()
    } else {
        SolutionAudit::default()
    };
    let report = audit
        .check(&problem, &solution, policy)
        .map_err(|e| e.to_string())?;
    writeln!(out, "{}", report.to_json()).map_err(|e| e.to_string())?;
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "audit found {} violation(s); see the report above",
            report.violations.len()
        ))
    }
}

/// `freshen timetable` — expand a schedule into concrete sync instants.
pub fn cmd_timetable(args: &crate::ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.expect_only(&["input", "schedule", "horizon"])?;
    let problem = read_problem(args.require("input")?)?;
    let freqs = read_schedule(args.require("schedule")?, problem.len())?;
    let horizon: f64 = args.require_parsed("horizon")?;
    if !horizon.is_finite() || horizon <= 0.0 {
        return Err("--horizon must be positive".into());
    }
    let schedule = FixedOrderSchedule::build(&freqs, horizon);
    writeln!(out, "time,element").map_err(|e| e.to_string())?;
    for op in schedule.ops() {
        writeln!(out, "{:.6},{}", op.time, op.element).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParsedArgs;

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("freshen-cmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn engine_flags_arm_slo_and_progress() {
        let cfg = engine_config_from_args(&parsed(&[
            "--slo-target-pf",
            "0.9",
            "--progress",
            "25",
            "--epochs",
            "40",
        ]))
        .unwrap();
        assert_eq!(cfg.progress_every, 25);
        let slo = cfg.slo.expect("--slo-target-pf arms the SLO engine");
        assert_eq!(slo.target_pf, 0.9);
        assert_eq!(slo.breach_after, SloConfig::default().breach_after);

        let cfg = engine_config_from_args(&parsed(&["--epochs", "40"])).unwrap();
        assert!(cfg.slo.is_none(), "no flag, no SLO evaluation");
        assert_eq!(cfg.progress_every, 0);
    }

    #[test]
    fn scenario_emits_valid_problem_json() {
        let mut buf = Vec::new();
        cmd_scenario(
            &parsed(&["--objects", "10", "--updates", "20", "--syncs", "5"]),
            &mut buf,
        )
        .unwrap();
        let p: Problem = serde_json::from_slice(&buf).unwrap();
        assert_eq!(p.len(), 10);
        assert_eq!(p.bandwidth(), 5.0);
    }

    #[test]
    fn scenario_with_pareto_sizes() {
        let mut buf = Vec::new();
        cmd_scenario(
            &parsed(&[
                "--objects",
                "50",
                "--updates",
                "100",
                "--syncs",
                "25",
                "--pareto-sizes",
                "1.5",
                "--size-alignment",
                "reverse",
            ]),
            &mut buf,
        )
        .unwrap();
        let p: Problem = serde_json::from_slice(&buf).unwrap();
        assert!(!p.has_uniform_sizes());
    }

    #[test]
    fn scenario_rejects_typo_option() {
        let mut buf = Vec::new();
        let err = cmd_scenario(
            &parsed(&["--object", "10", "--updates", "20", "--syncs", "5"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("--object"));
    }

    #[test]
    fn scenario_size_alignment_requires_sizes() {
        let mut buf = Vec::new();
        let err = cmd_scenario(
            &parsed(&[
                "--objects",
                "10",
                "--updates",
                "20",
                "--syncs",
                "5",
                "--size-alignment",
                "reverse",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("--pareto-sizes"));
    }

    #[test]
    fn solve_roundtrip_and_policy_flag() {
        let dir = tmpdir();
        let path = dir.join("p1.json");
        let mut buf = Vec::new();
        cmd_scenario(
            &parsed(&["--objects", "8", "--updates", "16", "--syncs", "4"]),
            &mut buf,
        )
        .unwrap();
        std::fs::write(&path, &buf).unwrap();

        let mut fixed = Vec::new();
        cmd_solve(&parsed(&["--input", path.to_str().unwrap()]), &mut fixed).unwrap();
        let fixed: Solution = serde_json::from_slice(&fixed).unwrap();

        let mut poisson = Vec::new();
        cmd_solve(
            &parsed(&["--input", path.to_str().unwrap(), "--policy", "poisson"]),
            &mut poisson,
        )
        .unwrap();
        let poisson: Solution = serde_json::from_slice(&poisson).unwrap();
        assert!(fixed.perceived_freshness > poisson.perceived_freshness);
    }

    #[test]
    fn threads_flag_is_accepted_by_parallel_commands() {
        // Each command must get past option validation with --threads set:
        // the first failure has to be the missing input file, not an
        // unknown-option complaint.
        let mut buf = Vec::new();
        for run in [
            cmd_solve(
                &parsed(&["--input", "/nonexistent.json", "--threads", "4"]),
                &mut buf,
            ),
            cmd_heuristic(
                &parsed(&[
                    "--input",
                    "/nonexistent.json",
                    "--partitions",
                    "2",
                    "--threads",
                    "4",
                ]),
                &mut buf,
            ),
            cmd_simulate(
                &parsed(&[
                    "--input",
                    "/nonexistent.json",
                    "--schedule",
                    "/nonexistent.json",
                    "--threads",
                    "4",
                ]),
                &mut buf,
            ),
            cmd_engine(
                &parsed(&[
                    "--trace",
                    "/nonexistent.csv",
                    "--elements",
                    "2",
                    "--bandwidth",
                    "1.0",
                    "--threads",
                    "4",
                ]),
                &mut buf,
            ),
        ] {
            let err = run.unwrap_err();
            assert!(err.contains("cannot read"), "{err}");
        }
    }

    #[test]
    fn threads_flag_rejects_garbage() {
        let mut buf = Vec::new();
        let err = cmd_solve(
            &parsed(&["--input", "/nonexistent.json", "--threads", "lots"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("threads"), "{err}");
    }

    #[test]
    fn solve_reports_missing_file() {
        let mut buf = Vec::new();
        let err = cmd_solve(&parsed(&["--input", "/nonexistent.json"]), &mut buf).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn simulate_rejects_mismatched_schedule() {
        let dir = tmpdir();
        let p1 = dir.join("p_a.json");
        let p2 = dir.join("p_b.json");
        let mut buf = Vec::new();
        cmd_scenario(
            &parsed(&["--objects", "8", "--updates", "16", "--syncs", "4"]),
            &mut buf,
        )
        .unwrap();
        std::fs::write(&p1, &buf).unwrap();
        buf.clear();
        cmd_scenario(
            &parsed(&["--objects", "9", "--updates", "16", "--syncs", "4"]),
            &mut buf,
        )
        .unwrap();
        std::fs::write(&p2, &buf).unwrap();
        // Schedule solved for the 8-element problem...
        buf.clear();
        cmd_solve(&parsed(&["--input", p1.to_str().unwrap()]), &mut buf).unwrap();
        let sched = dir.join("s_a.json");
        std::fs::write(&sched, &buf).unwrap();
        // ... rejected against the 9-element problem.
        buf.clear();
        let err = cmd_simulate(
            &parsed(&[
                "--input",
                p2.to_str().unwrap(),
                "--schedule",
                sched.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("covers 8 elements"));
    }

    #[test]
    fn timetable_requires_positive_horizon() {
        let dir = tmpdir();
        let p = dir.join("p_h.json");
        let mut buf = Vec::new();
        cmd_scenario(
            &parsed(&["--objects", "4", "--updates", "8", "--syncs", "2"]),
            &mut buf,
        )
        .unwrap();
        std::fs::write(&p, &buf).unwrap();
        buf.clear();
        cmd_solve(&parsed(&["--input", p.to_str().unwrap()]), &mut buf).unwrap();
        let s = dir.join("s_h.json");
        std::fs::write(&s, &buf).unwrap();
        buf.clear();
        let err = cmd_timetable(
            &parsed(&[
                "--input",
                p.to_str().unwrap(),
                "--schedule",
                s.to_str().unwrap(),
                "--horizon",
                "0",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("horizon"));
    }

    #[test]
    fn estimate_learns_problem_from_logs() {
        let dir = tmpdir();
        let access = dir.join("access.csv");
        std::fs::write(&access, "time,element\n0.1,0\n0.2,0\n0.3,0\n0.4,1\n").unwrap();
        let polls = dir.join("polls.csv");
        std::fs::write(
            &polls,
            "time,element,changed\n1.0,0,1\n2.0,0,0\n1.0,1,1\n2.0,1,1\n",
        )
        .unwrap();
        let mut buf = Vec::new();
        cmd_estimate(
            &parsed(&[
                "--elements",
                "3",
                "--bandwidth",
                "2.0",
                "--accesses",
                access.to_str().unwrap(),
                "--polls",
                polls.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let p: Problem = serde_json::from_slice(&buf).unwrap();
        assert_eq!(p.len(), 3);
        // Element 0 is hottest; element 2 keeps a smoothed positive prob.
        assert!(p.access_probs()[0] > p.access_probs()[1]);
        assert!(p.access_probs()[2] > 0.0);
        // Element 1 changed on every poll ⇒ higher estimated rate than 0.
        assert!(p.change_rates()[1] > p.change_rates()[0]);
        // Never-polled element 2 got the default fallback rate.
        assert!((p.change_rates()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_rejects_bad_log() {
        let dir = tmpdir();
        let access = dir.join("bad_access.csv");
        std::fs::write(&access, "not,a,log\n").unwrap();
        let mut buf = Vec::new();
        let err = cmd_estimate(
            &parsed(&[
                "--elements",
                "2",
                "--bandwidth",
                "1.0",
                "--accesses",
                access.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    fn write_engine_trace(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
        let access = dir.join("engine_access.csv");
        let mut access_lines = String::from("time,element\n");
        for k in 0..200 {
            let _ = std::fmt::Write::write_fmt(
                &mut access_lines,
                format_args!("{:.3},{}\n", k as f64 * 0.05, [0, 0, 0, 1, 2][k % 5]),
            );
        }
        std::fs::write(&access, access_lines).unwrap();
        let polls = dir.join("engine_polls.csv");
        let mut poll_lines = String::from("time,element,changed\n");
        for k in 0..60 {
            let _ = std::fmt::Write::write_fmt(
                &mut poll_lines,
                format_args!(
                    "{:.3},{},{}\n",
                    k as f64 * 0.15,
                    k % 3,
                    u8::from(k % 2 == 0)
                ),
            );
        }
        std::fs::write(&polls, poll_lines).unwrap();
        (access, polls)
    }

    #[test]
    fn engine_trace_mode_runs_and_is_deterministic() {
        let dir = tmpdir();
        let (access, polls) = write_engine_trace(&dir);
        let args = |seed: &str| {
            parsed(&[
                "--trace",
                access.to_str().unwrap(),
                "--polls",
                polls.to_str().unwrap(),
                "--elements",
                "3",
                "--bandwidth",
                "6.0",
                "--epochs",
                "10",
                "--warmup",
                "2",
                "--failure-rate",
                "0.1",
                "--seed",
                seed,
            ])
        };
        let run = |args: &ParsedArgs| {
            let mut buf = Vec::new();
            cmd_engine(args, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let first = run(&args("5"));
        assert!(first.contains("\"realized_pf\""));
        assert!(first.contains("\"epochs\""));
        assert_eq!(first, run(&args("5")), "same trace + seed ⇒ same bytes");
        assert_ne!(first, run(&args("6")), "seed changes failure injection");
    }

    #[test]
    fn engine_writes_report_and_metrics_files() {
        let dir = tmpdir();
        let (access, polls) = write_engine_trace(&dir);
        let report_path = dir.join("engine_report.json");
        let metrics_path = dir.join("engine_metrics.json");
        let mut buf = Vec::new();
        cmd_engine(
            &parsed(&[
                "--trace",
                access.to_str().unwrap(),
                "--polls",
                polls.to_str().unwrap(),
                "--elements",
                "3",
                "--bandwidth",
                "6.0",
                "--epochs",
                "8",
                "--warmup",
                "1",
                "--estimator",
                "window",
                "--window",
                "6",
                "--report-out",
                report_path.to_str().unwrap(),
                "--metrics-out",
                metrics_path.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        assert!(buf.is_empty(), "--report-out redirects the report");
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("\"resolves\""));
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("engine.dispatch_latency"));
    }

    #[test]
    fn engine_requires_exactly_one_mode() {
        let mut buf = Vec::new();
        let err = cmd_engine(&parsed(&[]), &mut buf).unwrap_err();
        assert!(err.contains("--trace or --live"), "{err}");
        let err =
            cmd_engine(&parsed(&["--trace", "a.csv", "--live", "p.json"]), &mut buf).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn engine_rejects_unknown_estimator_and_policy() {
        let mut buf = Vec::new();
        let err = cmd_engine(
            &parsed(&["--trace", "a.csv", "--estimator", "magic"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("magic"));
        let err = cmd_engine(
            &parsed(&["--trace", "a.csv", "--policy", "sometimes"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("sometimes"));
    }

    #[test]
    fn audit_scenario_mode_certifies_the_exact_solver() {
        let mut buf = Vec::new();
        cmd_audit(
            &parsed(&[
                "--objects",
                "60",
                "--updates",
                "120",
                "--syncs",
                "30",
                "--theta",
                "1.0",
                "--seed",
                "11",
            ]),
            &mut buf,
        )
        .unwrap();
        let report = String::from_utf8(buf).unwrap();
        assert!(report.contains("\"clean\":true"), "{report}");
        assert!(report.contains("\"violations\":[]"), "{report}");
    }

    #[test]
    fn audit_covers_sharded_and_pg_solvers() {
        for extra in [&["--shards", "4"][..], &["--solver", "pg"][..]] {
            let mut args = vec![
                "--objects",
                "40",
                "--updates",
                "80",
                "--syncs",
                "20",
                "--theta",
                "0.5",
            ];
            args.extend_from_slice(extra);
            let mut buf = Vec::new();
            cmd_audit(&parsed(&args), &mut buf).unwrap();
            let report = String::from_utf8(buf).unwrap();
            assert!(report.contains("\"clean\":true"), "{extra:?}: {report}");
        }
    }

    #[test]
    fn audit_poisson_policy_certifies_too() {
        let mut buf = Vec::new();
        cmd_audit(
            &parsed(&[
                "--objects",
                "30",
                "--updates",
                "60",
                "--syncs",
                "15",
                "--policy",
                "poisson",
            ]),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("\"clean\":true"));
    }

    #[test]
    fn audit_rejects_bad_invocations() {
        let mut buf = Vec::new();
        let err = cmd_audit(&parsed(&[]), &mut buf).unwrap_err();
        assert!(err.contains("--input or --objects"), "{err}");
        let err =
            cmd_audit(&parsed(&["--input", "p.json", "--objects", "5"]), &mut buf).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = cmd_audit(
            &parsed(&[
                "--objects",
                "5",
                "--updates",
                "10",
                "--syncs",
                "2",
                "--solver",
                "magic",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("magic"), "{err}");
        let err = cmd_audit(
            &parsed(&[
                "--objects",
                "5",
                "--updates",
                "10",
                "--syncs",
                "2",
                "--solver",
                "pg",
                "--policy",
                "poisson",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("only --policy fixed"), "{err}");
    }

    #[test]
    fn heuristic_unknown_criterion_rejected() {
        let dir = tmpdir();
        let p = dir.join("p_c.json");
        let mut buf = Vec::new();
        cmd_scenario(
            &parsed(&["--objects", "4", "--updates", "8", "--syncs", "2"]),
            &mut buf,
        )
        .unwrap();
        std::fs::write(&p, &buf).unwrap();
        buf.clear();
        let err = cmd_heuristic(
            &parsed(&[
                "--input",
                p.to_str().unwrap(),
                "--partitions",
                "2",
                "--criterion",
                "magic",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("magic"));
    }

    const TIER_SPEC: &str = r#"{
      "topology": {
        "nodes": [
          {"id": "origin", "role": "source"},
          {"id": "relay", "budget": 6.0},
          {"id": "edge", "budget": 4.0}
        ],
        "links": [
          {"from": "origin", "to": "relay"},
          {"from": "relay", "to": "edge", "elements": [0, 1, 2]}
        ]
      },
      "problem": {
        "change_rates": [0.5, 1.0, 1.5, 2.0, 2.5, 0.8],
        "access_probs": [6, 5, 4, 3, 2, 1],
        "bandwidth": 6.0
      }
    }"#;

    #[test]
    fn solve_topology_emits_certified_schedule() {
        let dir = tmpdir();
        let spec = dir.join("tiers.json");
        std::fs::write(&spec, TIER_SPEC).unwrap();
        let mut buf = Vec::new();
        cmd_solve(&parsed(&["--topology", spec.to_str().unwrap()]), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"certified_tiers\": 2"), "{text}");
        assert!(text.contains("\"tiers\": 2"), "{text}");
        assert!(
            text.contains("\"from\":\"relay\",\"to\":\"edge\""),
            "{text}"
        );
        // Hand-rolled output must be parseable by the hand-rolled parser.
        let doc = freshen_core::json::Json::parse(&text).unwrap();
        let pf = doc.get("edge_pf").unwrap().as_f64("edge_pf").unwrap();
        assert!(pf > 0.0 && pf < 1.0);
    }

    #[test]
    fn solve_topology_split_budget_rebalances_tiers() {
        let dir = tmpdir();
        let spec = dir.join("tiers_split.json");
        std::fs::write(&spec, TIER_SPEC).unwrap();
        let mut buf = Vec::new();
        cmd_solve(
            &parsed(&[
                "--topology",
                spec.to_str().unwrap(),
                "--split-budget",
                "10",
                "--policy",
                "poisson",
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let doc = freshen_core::json::Json::parse(&text).unwrap();
        let budgets = doc.get("budgets").unwrap().as_arr("budgets").unwrap();
        let total: f64 = budgets.iter().map(|b| b.as_f64("budget").unwrap()).sum();
        assert!((total - 10.0).abs() < 1e-6, "{total}");
    }

    #[test]
    fn solve_topology_flags_require_topology() {
        let err = cmd_solve(&parsed(&["--split-budget", "5"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--split-budget requires --topology"), "{err}");
        let err = cmd_solve(&parsed(&["--shards", "4"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--shards requires --topology"), "{err}");
    }

    #[test]
    fn solve_topology_without_problem_block_demands_input() {
        let dir = tmpdir();
        let spec = dir.join("tiers_noprob.json");
        std::fs::write(
            &spec,
            r#"{"topology": {"nodes": [{"id":"s","role":"source"},{"id":"e","budget":1.0}],
                "links": [{"from":"s","to":"e"}]}}"#,
        )
        .unwrap();
        let err = cmd_solve(
            &parsed(&["--topology", spec.to_str().unwrap()]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("pass --input"), "{err}");
    }
}
