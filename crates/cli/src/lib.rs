//! # freshen-cli
//!
//! The `freshen` command-line tool: operate the freshening scheduler on
//! JSON problem files without writing Rust.
//!
//! ```text
//! freshen scenario --objects 500 --updates 1000 --syncs 250 --theta 1.0 > problem.json
//! freshen solve --input problem.json > schedule.json
//! freshen heuristic --input problem.json --partitions 50 --kmeans 5 > schedule.json
//! freshen simulate --input problem.json --schedule schedule.json --periods 100
//! freshen timetable --input problem.json --schedule schedule.json --horizon 2
//! ```
//!
//! Subcommands:
//!
//! | command | what it does |
//! |---|---|
//! | `scenario` | generate a synthetic problem (paper-style workload) as JSON |
//! | `solve` | exact Lagrange solve (optionally under the Poisson policy) |
//! | `heuristic` | the scalable partition/k-means/allocate pipeline |
//! | `simulate` | run the discrete-event simulator on a schedule |
//! | `timetable` | expand a schedule into concrete sync instants (CSV) |
//! | `estimate` | learn a problem from access/poll logs (the §7 loop) |
//! | `engine` | run the online runtime: streaming estimation + drift-gated re-solves |
//! | `serve` | run the engine as a service: checkpoint/restore + HTTP control plane |
//! | `fleet` | drive many tenant engines behind one control plane (spec-declared) |
//! | `audit` | check a schedule's KKT optimality certificate (CI-friendly exit status) |
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency footprint at zero beyond serde.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;

use std::io::Write;

pub use args::ParsedArgs;

/// Dispatch a full command line (without the program name) and write the
/// result to `out`. Returns a human-readable error string on failure.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), String> {
    let (command, rest) = argv
        .split_first()
        .ok_or_else(|| format!("no subcommand given\n\n{USAGE}"))?;
    let parsed = ParsedArgs::parse(rest)?;
    match command.as_str() {
        "scenario" => commands::cmd_scenario(&parsed, out),
        "solve" => commands::cmd_solve(&parsed, out),
        "heuristic" => commands::cmd_heuristic(&parsed, out),
        "simulate" => commands::cmd_simulate(&parsed, out),
        "timetable" => commands::cmd_timetable(&parsed, out),
        "estimate" => commands::cmd_estimate(&parsed, out),
        "engine" => commands::cmd_engine(&parsed, out),
        "serve" => commands::cmd_serve(&parsed, out),
        "fleet" => commands::cmd_fleet(&parsed, out),
        "audit" => commands::cmd_audit(&parsed, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
freshen — application-aware data freshening scheduler

USAGE:
  freshen scenario  --objects N --updates U --syncs B [--theta T]
                    [--alignment aligned|reverse|shuffled] [--std-dev S]
                    [--pareto-sizes SHAPE] [--size-alignment aligned|reverse|shuffled]
                    [--seed S]
  freshen solve     --input problem.json [--policy fixed|poisson] [--threads T]
                    [--metrics-out metrics.json] [--trace-out trace.json]
  freshen solve     --topology spec.json [--input problem.json] [--split-budget B]
                    [--policy fixed|poisson] [--shards S]
  freshen heuristic --input problem.json --partitions K [--kmeans N]
                    [--criterion pf|p|lambda|p-over-lambda|pf-size|size]
                    [--allocation fba|ffa] [--threads T]
                    [--metrics-out metrics.json] [--trace-out trace.json]
  freshen simulate  --input problem.json --schedule schedule.json
                    [--periods P] [--warmup W] [--accesses A] [--seed S]
                    [--policy fixed|poisson] [--threads T]
                    [--metrics-out metrics.json] [--trace-out trace.json]
  freshen timetable --input problem.json --schedule schedule.json --horizon H
  freshen estimate  --elements N --bandwidth B --accesses access_log.csv
                    [--polls poll_log.csv] [--smoothing A] [--fallback-rate R]
  freshen engine    (--trace access.csv [--polls poll.csv] --elements N --bandwidth B
                     | --live problem.json [--access-rate R])
                    [--epochs E] [--epoch-len L] [--warmup W] [--drift-threshold D]
                    [--policy drift|oracle] [--estimator ewma|window|lln|sa]
                    [--gain G] [--window K] [--decay D]
                    [--poll-cost GAMMA | --cost-budget C]
                    [--failure-rate F] [--max-retries R] [--retry-backoff T]
                    [--budget-factor C] [--max-backlog M] [--seed S] [--threads T]
                    [--report-out report.json] [--metrics-out metrics.json]
                    [--trace-out trace.json]
  freshen serve     (--trace access.csv [--polls poll.csv] --elements N --bandwidth B
                     | --live problem.json [--access-rate R])
                    [--listen ADDR:PORT] [--checkpoint PATH] [--checkpoint-every N]
                    [--resume PATH] [--drain-after N]
                    [engine flags as above] [--report-out report.json]
  freshen fleet     --spec fleet.json [--listen ADDR:PORT]
                    [--snapshot-dir DIR] [--resume-dir DIR]
                    [--checkpoint-every N] [--drain-after N] [--threads T]
                    [--report-out reports.json] [--metrics-out metrics.json]
                    [--trace-out trace.json]
  freshen audit     (--input problem.json [--schedule schedule.json]
                     | --objects N --updates U --syncs B [--theta T] [--std-dev S] [--seed S])
                    [--policy fixed|poisson] [--solver exact|pg] [--shards K] [--relaxed 1]
  freshen help

Parallelism: --threads T runs the solver / pipeline / scoring passes on a
T-worker pool (results are identical at any T). --threads 0 or omission
defers to the FRESHEN_THREADS environment variable; unset means serial.";

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&argv, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn no_subcommand_is_an_error() {
        let err = run_to_string(&[]).unwrap_err();
        assert!(err.contains("no subcommand"));
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let err = run_to_string(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("heuristic"));
    }

    #[test]
    fn scenario_then_solve_roundtrip_through_json() {
        let problem_json = run_to_string(&[
            "scenario",
            "--objects",
            "20",
            "--updates",
            "40",
            "--syncs",
            "10",
            "--theta",
            "1.0",
            "--seed",
            "3",
        ])
        .unwrap();
        // Feed it back through a temp file.
        let dir = std::env::temp_dir().join("freshen-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let problem_path = dir.join("problem.json");
        std::fs::write(&problem_path, &problem_json).unwrap();
        let schedule_json =
            run_to_string(&["solve", "--input", problem_path.to_str().unwrap()]).unwrap();
        assert!(schedule_json.contains("perceived_freshness"));
        let schedule_path = dir.join("schedule.json");
        std::fs::write(&schedule_path, &schedule_json).unwrap();

        // Heuristic, simulate, and timetable all consume the same files.
        let heuristic = run_to_string(&[
            "heuristic",
            "--input",
            problem_path.to_str().unwrap(),
            "--partitions",
            "4",
            "--kmeans",
            "2",
        ])
        .unwrap();
        assert!(heuristic.contains("frequencies"));

        let sim = run_to_string(&[
            "simulate",
            "--input",
            problem_path.to_str().unwrap(),
            "--schedule",
            schedule_path.to_str().unwrap(),
            "--periods",
            "20",
            "--accesses",
            "100",
        ])
        .unwrap();
        assert!(sim.contains("time_averaged_pf"));

        let timetable = run_to_string(&[
            "timetable",
            "--input",
            problem_path.to_str().unwrap(),
            "--schedule",
            schedule_path.to_str().unwrap(),
            "--horizon",
            "1.0",
        ])
        .unwrap();
        assert!(timetable.starts_with("time,element"));
    }
}
