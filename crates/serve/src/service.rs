//! The serve loop: drive the engine one [`Engine::step`] at a time,
//! checkpointing at epoch boundaries and draining gracefully on demand.
//!
//! The loop is the single owner of the engine, the access stream, and
//! the poll source; the control plane only flips flags and reads JSON
//! views refreshed between epochs. Checkpoints are only ever taken at
//! epoch boundaries — the engine's state contract
//! ([`Engine::export_state`]) holds exactly there, which is what makes a
//! resumed run byte-identical to an uninterrupted one.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::Executor;
use freshen_core::problem::Problem;
use freshen_engine::stream::BoxedAccessStream;
use freshen_engine::{
    replay_accesses, Engine, EngineConfig, EngineReport, LiveAccessStream, LivePollSource,
    ReplayPollSource,
};
use freshen_obs::{duration_us_buckets, Health, Recorder};
use freshen_workload::trace::{AccessRecord, PollRecord};

use crate::http::{ControlPlane, ControlShared};
use crate::snapshot::{Snapshot, SnapshotShape, SourceState};

/// Seed salt for the live access stream — shared with the CLI's
/// `engine` command so `serve` and `engine` runs over the same problem
/// file and seed see the same traffic.
pub const ACCESS_SEED_SALT: u64 = 0xACCE55;
/// Seed salt for the live poll source (see [`ACCESS_SEED_SALT`]).
pub const POLL_SEED_SALT: u64 = 0x50_11;

/// What the served engine runs against.
#[derive(Debug, Clone)]
pub enum ServeWorkload {
    /// Live mode: the problem supplies the ground truth the engine must
    /// discover through its own polls and accesses.
    Live {
        /// Ground-truth problem (rates, access profile, bandwidth).
        problem: Problem,
        /// Poisson access-arrival rate (events per period).
        access_rate: f64,
    },
    /// Replay mode: pre-parsed access and poll logs.
    Replay {
        /// Number of mirrored elements.
        elements: usize,
        /// Poll bandwidth (polls per period).
        bandwidth: f64,
        /// Time-ordered access events.
        accesses: Vec<AccessRecord>,
        /// Per-element poll outcomes, time-ordered.
        polls: Vec<PollRecord>,
    },
}

impl ServeWorkload {
    /// Number of mirrored elements.
    pub fn elements(&self) -> usize {
        match self {
            ServeWorkload::Live { problem, .. } => problem.len(),
            ServeWorkload::Replay { elements, .. } => *elements,
        }
    }
}

/// Service configuration wrapped around the engine's.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The wrapped engine configuration.
    pub engine: EngineConfig,
    /// Control-plane bind address (e.g. `127.0.0.1:7171`, or port `0`
    /// for an ephemeral port); `None` runs headless.
    pub listen: Option<String>,
    /// Checkpoint every N epochs; `0` checkpoints only on demand
    /// (`POST /checkpoint`) and at graceful shutdown.
    pub checkpoint_every: usize,
    /// Snapshot file path (written atomically: temp + rename).
    pub checkpoint_path: PathBuf,
    /// Resume from this snapshot before stepping.
    pub resume: Option<PathBuf>,
    /// Stop (drain + checkpoint) after stepping this many epochs in
    /// this process — the programmatic "kill at epoch k" used by tests
    /// and the recovery benchmark.
    pub drain_after: Option<usize>,
    /// Optional pause between epochs, so control-plane probes can land
    /// mid-run in tests and demos. `None` (the default) runs flat out.
    pub epoch_throttle: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::default(),
            listen: None,
            checkpoint_every: 0,
            checkpoint_path: PathBuf::from("freshen.snapshot"),
            resume: None,
            drain_after: None,
            epoch_throttle: None,
        }
    }
}

/// Why the serve loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// All configured epochs ran; the final report is available.
    Completed,
    /// Graceful drain: a shutdown request or `drain_after` cap stopped
    /// the run at an epoch boundary after writing a final checkpoint.
    Drained,
}

/// Outcome of a serve run.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The final report — present only when the run [`Completed`]
    /// (a drained run's report lives in its checkpoint).
    ///
    /// [`Completed`]: ExitReason::Completed
    pub report: Option<EngineReport>,
    /// Why the loop returned.
    pub exit: ExitReason,
    /// Epochs stepped by this process (excludes restored history).
    pub epochs_run: usize,
    /// Checkpoints written by this process.
    pub checkpoints: usize,
    /// Control-plane address, when one was bound.
    pub bound_addr: Option<SocketAddr>,
}

/// The poll source behind one seam, so checkpoints capture whichever
/// kind the workload uses.
enum RunSource {
    Live(LivePollSource),
    Replay(ReplayPollSource),
}

impl RunSource {
    fn export(&self) -> SourceState {
        match self {
            RunSource::Live(s) => SourceState::Live(s.state()),
            RunSource::Replay(s) => SourceState::Replay {
                cursors: s.cursors().to_vec(),
            },
        }
    }
}

/// A configured, bound (but not yet running) service.
pub struct Server {
    workload: ServeWorkload,
    config: ServeConfig,
    recorder: Recorder,
    executor: Executor,
    listener: Option<TcpListener>,
    shared: Arc<ControlShared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workload", &self.workload)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Validate the configuration and bind the control-plane listener
    /// (if `listen` is set) so [`local_addr`](Server::local_addr) is
    /// known before [`run`](Server::run) starts stepping.
    pub fn new(workload: ServeWorkload, config: ServeConfig) -> Result<Self> {
        config.engine.validate()?;
        if let ServeWorkload::Live { access_rate, .. } = &workload {
            if !access_rate.is_finite() || *access_rate <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "access rate",
                    index: None,
                    value: *access_rate,
                });
            }
        }
        let listener = match &config.listen {
            Some(addr) => Some(TcpListener::bind(addr).map_err(|e| {
                CoreError::InvalidConfig(format!("cannot bind control plane on `{addr}`: {e}"))
            })?),
            None => None,
        };
        Ok(Server {
            workload,
            config,
            recorder: Recorder::disabled(),
            executor: Executor::serial(),
            listener,
            shared: Arc::new(ControlShared::default()),
        })
    }

    /// Attach an obs recorder (shared with the control plane's
    /// `/metrics` route).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach an executor for the engine's overlapped re-solves.
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The bound control-plane address, when `listen` was configured.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Handle to the shared control state — lets in-process callers
    /// request a checkpoint or shutdown without going through HTTP.
    pub fn control(&self) -> Arc<ControlShared> {
        Arc::clone(&self.shared)
    }

    /// Run to completion or graceful drain. Consumes the server; the
    /// control plane (if any) is stopped before returning, on success
    /// and on error alike.
    pub fn run(mut self) -> Result<ServeOutcome> {
        let cfg = self.config.engine.clone();
        let n = self.workload.elements();
        let horizon = cfg.horizon();

        // Build the prior, the access stream, and the poll source
        // exactly as the CLI's one-shot `engine` command would — a
        // served run and a plain run over the same inputs are the same
        // deterministic computation.
        let (prior, accesses, mut source) = match &self.workload {
            ServeWorkload::Live {
                problem,
                access_rate,
            } => {
                let stream: BoxedAccessStream = Box::new(LiveAccessStream::new(
                    problem.access_probs(),
                    *access_rate,
                    cfg.seed ^ ACCESS_SEED_SALT,
                    horizon,
                ));
                let source = LivePollSource::new(
                    problem.change_rates(),
                    cfg.seed ^ POLL_SEED_SALT,
                    horizon,
                )?;
                (problem.clone(), stream, RunSource::Live(source))
            }
            ServeWorkload::Replay {
                elements,
                bandwidth,
                accesses,
                polls,
            } => {
                let prior = Problem::builder()
                    .change_rates(vec![cfg.fallback_rate; *elements])
                    .access_weights(vec![1.0; *elements])
                    .bandwidth(*bandwidth)
                    .build()?;
                let stream: BoxedAccessStream = Box::new(replay_accesses(accesses.clone()));
                let source = ReplayPollSource::new(*elements, polls)?;
                (prior, stream, RunSource::Replay(source))
            }
        };
        let mut accesses = accesses.peekable();
        let mut engine = Engine::new(&prior, cfg.clone())?
            .with_recorder(self.recorder.clone())
            .with_executor(self.executor.clone());

        // Resume: validate the snapshot against this run's shape, then
        // inject engine + source state and fast-forward the access
        // stream to where the exporting process stopped.
        let mut consumed: u64 = 0;
        if let Some(path) = self.config.resume.clone() {
            let snapshot = Snapshot::read(&path)?;
            snapshot.shape.matches(&cfg, n)?;
            engine.restore_state(snapshot.engine)?;
            match (&mut source, snapshot.source) {
                (RunSource::Live(live), SourceState::Live(state)) => {
                    let rates = match &self.workload {
                        ServeWorkload::Live { problem, .. } => problem.change_rates(),
                        ServeWorkload::Replay { .. } => {
                            return Err(CoreError::Inconsistent {
                                routine: "serve-resume",
                                invariant: "live source implies a live workload",
                            })
                        }
                    };
                    *live =
                        LivePollSource::restore(rates, cfg.seed ^ POLL_SEED_SALT, horizon, &state)?;
                }
                (RunSource::Replay(replay), SourceState::Replay { cursors }) => {
                    replay.restore_cursors(cursors)?;
                }
                _ => {
                    return Err(CoreError::InvalidConfig(
                        "snapshot source kind does not match the configured workload".into(),
                    ))
                }
            }
            for _ in 0..snapshot.accesses_consumed {
                match accesses.next() {
                    Some(Ok(_)) => {}
                    Some(Err(e)) => return Err(e),
                    None => {
                        return Err(CoreError::Inconsistent {
                            routine: "serve-resume",
                            invariant: "snapshot consumed more accesses than the stream holds",
                        })
                    }
                }
            }
            consumed = snapshot.accesses_consumed;
            self.recorder.counter("serve.resumes").inc();
        }

        self.update_views(&engine, 0, "running");
        let plane = match self.listener.take() {
            Some(listener) => Some(
                ControlPlane::start(listener, Arc::clone(&self.shared), self.recorder.clone())
                    .map_err(|e| CoreError::InvalidConfig(format!("control plane: {e}")))?,
            ),
            None => None,
        };
        let bound_addr = plane.as_ref().map(ControlPlane::local_addr);

        let result = self.drive(&mut engine, &mut accesses, &mut source, consumed);
        if let Some(plane) = plane {
            plane.stop();
        }
        let (exit, epochs_run, checkpoints) = result?;
        let report = match exit {
            ExitReason::Completed => Some(engine.report()),
            ExitReason::Drained => None,
        };
        Ok(ServeOutcome {
            report,
            exit,
            epochs_run,
            checkpoints,
            bound_addr,
        })
    }

    /// The epoch loop proper. Returns `(exit, epochs stepped here,
    /// checkpoints written)`.
    fn drive(
        &self,
        engine: &mut Engine,
        accesses: &mut std::iter::Peekable<BoxedAccessStream>,
        source: &mut RunSource,
        mut consumed: u64,
    ) -> Result<(ExitReason, usize, usize)> {
        let epochs_counter = self.recorder.counter("serve.epochs");
        let checkpoint_counter = self.recorder.counter("serve.checkpoints");
        let total_epochs = self.config.engine.epochs;
        let mut checkpoints = 0usize;
        let mut stepped = 0usize;

        let exit = loop {
            if engine.epoch() >= total_epochs {
                break ExitReason::Completed;
            }
            if self.shared.shutdown_requested.load(Ordering::SeqCst) {
                break ExitReason::Drained;
            }
            if self.config.drain_after.is_some_and(|cap| stepped >= cap) {
                break ExitReason::Drained;
            }
            let stats = match source {
                RunSource::Live(s) => engine.step(accesses, s)?,
                RunSource::Replay(s) => engine.step(accesses, s)?,
            };
            consumed += stats.accesses;
            stepped += 1;
            epochs_counter.inc();

            // Stamp the finished epoch's telemetry sample with
            // control-plane load. Annotations are wall-clock
            // observations — they ride along in the series (and its
            // checkpoints) but never feed back into scheduling, so
            // probed and unprobed runs produce identical reports.
            let requests = self.recorder.counter_value("serve.requests").unwrap_or(0);
            let p95 = self
                .recorder
                .histogram("serve.request_latency_us", &duration_us_buckets())
                .quantile(0.95)
                .unwrap_or(0.0);
            engine.annotate_requests(stats.index as u64, requests, p95);

            let on_cadence = self.config.checkpoint_every > 0
                && engine.epoch() % self.config.checkpoint_every == 0;
            let on_demand = self
                .shared
                .checkpoint_requested
                .swap(false, Ordering::SeqCst);
            if on_cadence || on_demand {
                self.write_checkpoint(engine, source, consumed)?;
                checkpoints += 1;
                checkpoint_counter.inc();
            }
            self.update_views(engine, checkpoints, "running");
            if let Some(pause) = self.config.epoch_throttle {
                std::thread::sleep(pause);
            }
        };

        if exit == ExitReason::Drained {
            // The graceful-shutdown contract: the in-flight epoch has
            // finished (checkpoints only happen at boundaries), so the
            // final snapshot resumes exactly where this process stopped.
            self.write_checkpoint(engine, source, consumed)?;
            checkpoints += 1;
            checkpoint_counter.inc();
        }
        let state = match exit {
            ExitReason::Completed => "completed",
            ExitReason::Drained => "drained",
        };
        self.update_views(engine, checkpoints, state);
        Ok((exit, stepped, checkpoints))
    }

    fn write_checkpoint(&self, engine: &Engine, source: &RunSource, consumed: u64) -> Result<()> {
        let snapshot = Snapshot {
            shape: SnapshotShape::of(&self.config.engine, self.workload.elements()),
            engine: engine.export_state(),
            source: source.export(),
            accesses_consumed: consumed,
        };
        snapshot.write_atomic(&self.config.checkpoint_path)
    }

    /// Refresh the `/status` and `/schedule` JSON views.
    fn update_views(&self, engine: &Engine, checkpoints: usize, state: &str) {
        publish_engine_views(
            &self.shared,
            engine,
            self.config.engine.epochs,
            self.workload.elements(),
            checkpoints,
            state,
        );
    }
}

/// Publish the standard control-plane views for one engine into a
/// [`ControlShared`]: `/status`, `/schedule`, `/health` (plus the breach
/// flag), and the telemetry series. Shared between the solo serve loop
/// and the fleet runtime, so a tenant's views read identically to a solo
/// run's.
pub fn publish_engine_views(
    shared: &ControlShared,
    engine: &Engine,
    total_epochs: usize,
    elements: usize,
    checkpoints: usize,
    state: &str,
) {
    let last = engine.history().last();
    let status = format!(
        "{{\"state\": \"{state}\", \"epoch\": {}, \"epochs\": {total_epochs}, \"elements\": {elements}, \"realized_pf\": {}, \"drift\": {}, \"resolved\": {}, \"checkpoints\": {checkpoints}}}",
        engine.epoch(),
        json_num(last.map_or(f64::NAN, |e| e.realized_pf)),
        json_num(last.map_or(f64::NAN, |e| e.drift)),
        last.is_some_and(|e| e.resolved),
    );
    let schedule = engine.schedule();
    let freqs: Vec<String> = schedule.frequencies.iter().map(|&f| json_num(f)).collect();
    let schedule_json = format!(
        "{{\"frequencies\": [{}], \"perceived_freshness\": {}, \"bandwidth_used\": {}}}",
        freqs.join(", "),
        json_num(schedule.perceived_freshness),
        json_num(schedule.bandwidth_used),
    );
    if let Ok(mut view) = shared.status.lock() {
        *view = status;
    }
    if let Ok(mut view) = shared.schedule.lock() {
        *view = schedule_json;
    }
    if let Ok(mut view) = shared.health.lock() {
        *view = engine.health_json().unwrap_or_default();
    }
    shared
        .health_breach
        .store(engine.health() == Health::Breach, Ordering::SeqCst);
    if let Ok(mut view) = shared.series.lock() {
        *view = engine.series().clone();
    }
}

/// JSON number: shortest round-trip decimal, `null` for non-finite.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_workload(n: usize) -> ServeWorkload {
        let mut rates = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for i in 0..n {
            rates.push(1.0 + i as f64 * 0.5);
            weights.push((n - i) as f64);
        }
        ServeWorkload::Live {
            problem: Problem::builder()
                .change_rates(rates)
                .access_weights(weights)
                .bandwidth(n as f64)
                .build()
                .unwrap(),
            access_rate: 60.0,
        }
    }

    fn config(epochs: usize, dir: &str) -> ServeConfig {
        let root = std::env::temp_dir()
            .join("freshen-serve-service-test")
            .join(dir);
        std::fs::create_dir_all(&root).unwrap();
        ServeConfig {
            engine: EngineConfig {
                epochs,
                warmup_epochs: 1,
                seed: 99,
                failure_rate: 0.1,
                ..EngineConfig::default()
            },
            checkpoint_path: root.join("run.snapshot"),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn uninterrupted_serve_matches_plain_engine_run() {
        let workload = live_workload(4);
        let cfg = config(6, "plain");
        let outcome = Server::new(workload.clone(), cfg.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.exit, ExitReason::Completed);
        assert_eq!(outcome.epochs_run, 6);

        let ServeWorkload::Live {
            problem,
            access_rate,
        } = &workload
        else {
            unreachable!()
        };
        let horizon = cfg.engine.horizon();
        let accesses = LiveAccessStream::new(
            problem.access_probs(),
            *access_rate,
            cfg.engine.seed ^ ACCESS_SEED_SALT,
            horizon,
        );
        let mut source = LivePollSource::new(
            problem.change_rates(),
            cfg.engine.seed ^ POLL_SEED_SALT,
            horizon,
        )
        .unwrap();
        let plain = Engine::new(problem, cfg.engine)
            .unwrap()
            .run(accesses, &mut source)
            .unwrap();
        assert_eq!(
            outcome.report.unwrap().to_json(),
            plain.to_json(),
            "serving must not perturb the deterministic run"
        );
    }

    #[test]
    fn drain_then_resume_is_byte_identical() {
        let workload = live_workload(5);
        let cfg = config(8, "resume");

        let reference = Server::new(workload.clone(), cfg.clone())
            .unwrap()
            .run()
            .unwrap()
            .report
            .unwrap()
            .to_json();

        let mut first_leg = cfg.clone();
        first_leg.drain_after = Some(3);
        let outcome = Server::new(workload.clone(), first_leg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.exit, ExitReason::Drained);
        assert!(outcome.report.is_none());
        assert_eq!(outcome.checkpoints, 1, "drain writes the final checkpoint");

        let mut second_leg = cfg.clone();
        second_leg.resume = Some(cfg.checkpoint_path.clone());
        let resumed = Server::new(workload, second_leg).unwrap().run().unwrap();
        assert_eq!(resumed.exit, ExitReason::Completed);
        assert_eq!(resumed.epochs_run, 5, "8 total − 3 already run");
        assert_eq!(resumed.report.unwrap().to_json(), reference);
    }

    #[test]
    fn replay_workload_checkpoints_and_resumes() {
        let n = 3;
        let mut accesses = Vec::new();
        for k in 0..240 {
            accesses.push(AccessRecord {
                time: k as f64 * 0.025,
                element: [0, 1, 0, 2][k % 4],
            });
        }
        let mut polls = Vec::new();
        for k in 0..60 {
            polls.push(PollRecord {
                time: k as f64 * 0.1,
                element: k % n,
                changed: k % 2 == 0,
            });
        }
        let workload = ServeWorkload::Replay {
            elements: n,
            bandwidth: 3.0,
            accesses,
            polls,
        };
        let cfg = config(6, "replay");

        let reference = Server::new(workload.clone(), cfg.clone())
            .unwrap()
            .run()
            .unwrap()
            .report
            .unwrap()
            .to_json();

        let mut first_leg = cfg.clone();
        first_leg.drain_after = Some(2);
        Server::new(workload.clone(), first_leg)
            .unwrap()
            .run()
            .unwrap();
        let mut second_leg = cfg.clone();
        second_leg.resume = Some(cfg.checkpoint_path.clone());
        let resumed = Server::new(workload, second_leg).unwrap().run().unwrap();
        assert_eq!(resumed.report.unwrap().to_json(), reference);
    }

    #[test]
    fn mismatched_resume_shapes_are_clean_errors() {
        let cfg = config(6, "mismatch");
        let mut drain = cfg.clone();
        drain.drain_after = Some(2);
        Server::new(live_workload(4), drain).unwrap().run().unwrap();

        // Wrong element count.
        let mut resume = cfg.clone();
        resume.resume = Some(cfg.checkpoint_path.clone());
        let err = Server::new(live_workload(5), resume.clone())
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }), "{err}");

        // Wrong seed.
        let mut wrong_seed = resume.clone();
        wrong_seed.engine.seed = 7;
        let err = Server::new(live_workload(4), wrong_seed)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");

        // Wrong workload kind for the stored source state.
        let mut wrong_kind = resume.clone();
        wrong_kind.resume = Some(cfg.checkpoint_path.clone());
        let err = Server::new(
            ServeWorkload::Replay {
                elements: 4,
                bandwidth: 4.0,
                accesses: Vec::new(),
                polls: Vec::new(),
            },
            wrong_kind,
        )
        .unwrap()
        .run()
        .unwrap_err();
        assert!(err.to_string().contains("source kind"), "{err}");

        // Corrupt file.
        let bytes = std::fs::read(&cfg.checkpoint_path).unwrap();
        let bad_path = cfg.checkpoint_path.with_extension("corrupt");
        let mut bad = bytes;
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        std::fs::write(&bad_path, &bad).unwrap();
        let mut corrupt = resume;
        corrupt.resume = Some(bad_path);
        let err = Server::new(live_workload(4), corrupt)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("snapshot"), "{err}");
    }

    #[test]
    fn slo_views_surface_breach_to_the_control_shared() {
        let workload = live_workload(4);
        let mut cfg = config(6, "slo");
        // An unreachable freshness floor: the run must degrade to
        // Breach, and the serve loop must surface that through the
        // shared health view, the breach flag, and the series.
        cfg.engine.slo = Some(freshen_obs::SloConfig {
            target_pf: 0.999_999,
            breach_after: 2,
            ..freshen_obs::SloConfig::default()
        });
        let server = Server::new(workload, cfg).unwrap();
        let control = server.control();
        let outcome = server.run().unwrap();
        assert_eq!(outcome.exit, ExitReason::Completed);
        assert!(control.health_breach.load(Ordering::SeqCst));
        let health = control.health.lock().unwrap().clone();
        assert!(health.contains("\"state\": \"breach\""), "{health}");
        let series = control.series.lock().unwrap().clone();
        assert_eq!(series.len(), 6, "every epoch retained at this scale");
        assert!(series.samples().iter().any(|s| s.health == 2));
    }

    #[test]
    fn on_demand_checkpoint_and_shutdown_flags_drive_the_loop() {
        let workload = live_workload(3);
        let mut cfg = config(40, "flags");
        cfg.engine.warmup_epochs = 2;
        let server = Server::new(workload, cfg).unwrap();
        let control = server.control();
        // Pre-latched flags: the loop must checkpoint after the first
        // epoch and then drain immediately.
        control.checkpoint_requested.store(true, Ordering::SeqCst);
        control.shutdown_requested.store(true, Ordering::SeqCst);
        let outcome = server.run().unwrap();
        assert_eq!(outcome.exit, ExitReason::Drained);
        assert_eq!(outcome.epochs_run, 0, "shutdown wins before the first step");
        assert_eq!(outcome.checkpoints, 1, "drain still snapshots");
    }
}
