//! Zero-dependency HTTP/1.1 control plane on [`std::net::TcpListener`].
//!
//! Routing is table-driven: a [`Router`] holds `(method, pattern,
//! handler)` rows where a pattern is a `/`-separated path whose segments
//! are literals or `{param}` captures. Request paths are percent-decoded
//! before routing (so `/tenants/{id}` segments survive URL encoding), a
//! method mismatch on a known path yields `405` with an `Allow` header,
//! and an unknown path yields `404`.
//!
//! [`register_control_routes`] installs the standard single-engine route
//! set under a prefix (empty for solo serve, `/tenants/<id>` per fleet
//! tenant):
//!
//! | route              | effect                                          |
//! |--------------------|-------------------------------------------------|
//! | `GET /status`      | run progress JSON (epoch, PF, resolves, drift)  |
//! | `GET /schedule`    | the active schedule JSON                        |
//! | `GET /metrics`     | the freshen-obs metrics export; add             |
//! |                    | `?format=prometheus` for text exposition        |
//! | `GET /health`      | SLO health JSON; 200 while `Ok`/`Warn`, 503 on  |
//! |                    | `Breach` (load-balancer friendly)               |
//! | `GET /timeseries`  | windowed per-epoch telemetry JSON               |
//! |                    | (`?since=<epoch>&limit=<n>`)                    |
//! | `POST /checkpoint` | request a snapshot at the next epoch boundary   |
//! | `POST /shutdown`   | request a graceful drain (finish the in-flight  |
//! |                    | epoch, checkpoint, exit cleanly)                |
//!
//! Request parsing is hand-rolled and deliberately minimal: read the
//! head up to `\r\n\r\n` (bounded), split the request line, ignore the
//! body. Control actions are edge-triggered flags on [`ControlShared`];
//! the serve loop polls them between epochs, so the control plane never
//! touches engine state directly and the epoch loop stays deterministic
//! regardless of request timing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use freshen_obs::{duration_us_buckets, prometheus, Recorder, TimeSeries};

/// Upper bound on a request head; anything longer is rejected with 431.
const MAX_HEAD: usize = 8 * 1024;

/// Upper bound on a declared request body; anything larger is rejected
/// with 413 before a byte of it is waited on. The control plane's
/// routes take no payloads, so this only bounds how much a misbehaving
/// client can make the accept thread read and discard.
const MAX_BODY: usize = 64 * 1024;
/// Per-connection socket timeout so a stalled client cannot wedge the
/// accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// State shared between the serve loop and the control plane. The loop
/// is the only writer of the JSON views and the only consumer of the
/// request flags; handlers only read views and set flags.
#[derive(Debug, Default)]
pub struct ControlShared {
    /// Current `/status` response body, refreshed each epoch.
    pub status: Mutex<String>,
    /// Current `/schedule` response body, refreshed each epoch.
    pub schedule: Mutex<String>,
    /// Current `/health` response body, refreshed each epoch.
    pub health: Mutex<String>,
    /// Mirror of the engine's telemetry ring, refreshed each epoch;
    /// `/timeseries` windows it with `since`/`limit`.
    pub series: Mutex<TimeSeries>,
    /// True while SLO health is `Breach`; flips `/health` to 503.
    pub health_breach: AtomicBool,
    /// Set by `POST /checkpoint`, cleared by the serve loop after the
    /// next epoch-boundary snapshot.
    pub checkpoint_requested: AtomicBool,
    /// Set by `POST /shutdown`; the serve loop drains and exits.
    pub shutdown_requested: AtomicBool,
}

/// One parsed request: method, percent-decoded path, raw query string.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with percent-escapes decoded, query stripped.
    pub path: String,
    /// Raw query string (no decoding: every value this plane accepts is
    /// alphanumeric).
    pub query: String,
}

impl Request {
    /// Look up `key` in the query string (`a=1&b=2`).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// A handler's answer: status, content type, body, and (for 405) the
/// `Allow` header.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// `Allow` header for 405 responses.
    pub allow: Option<String>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: JSON,
            body: body.into(),
            allow: None,
        }
    }

    /// A response with an explicit content type (Prometheus exposition).
    pub fn text(status: u16, content_type: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            allow: None,
        }
    }
}

/// Captured `{param}` segments from a matched route pattern.
#[derive(Debug, Default)]
pub struct RouteParams(Vec<(String, String)>);

impl RouteParams {
    /// The captured value for `{name}`, if the pattern had one.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

enum Segment {
    Literal(String),
    Param(String),
}

type Handler = Box<dyn Fn(&Request, &RouteParams) -> Response + Send + Sync>;

struct Route {
    method: &'static str,
    pattern: Vec<Segment>,
    handler: Handler,
}

/// Method-and-pattern route table. Dispatch walks rows in registration
/// order; the first row whose pattern and method both match wins.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .finish()
    }
}

fn path_segments(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

impl Router {
    /// An empty route table.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a handler for `method` on `pattern`. Pattern segments of
    /// the form `{name}` capture the matching path segment into
    /// [`RouteParams`]; everything else matches literally.
    pub fn route(
        &mut self,
        method: &'static str,
        pattern: &str,
        handler: impl Fn(&Request, &RouteParams) -> Response + Send + Sync + 'static,
    ) {
        let pattern = path_segments(pattern)
            .into_iter()
            .map(
                |seg| match seg.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                    Some(name) => Segment::Param(name.to_string()),
                    None => Segment::Literal(seg.to_string()),
                },
            )
            .collect();
        self.routes.push(Route {
            method,
            pattern,
            handler: Box::new(handler),
        });
    }

    fn matches(route: &Route, segments: &[&str]) -> Option<RouteParams> {
        if route.pattern.len() != segments.len() {
            return None;
        }
        let mut params = RouteParams::default();
        for (pat, seg) in route.pattern.iter().zip(segments) {
            match pat {
                Segment::Literal(lit) if lit == seg => {}
                Segment::Literal(_) => return None,
                Segment::Param(name) => params.0.push((name.clone(), (*seg).to_string())),
            }
        }
        Some(params)
    }

    /// Route a request: the matching handler's response, a 405 carrying
    /// `Allow` when the path is known but the method is not, or a 404.
    pub fn dispatch(&self, request: &Request) -> Response {
        let segments = path_segments(&request.path);
        let mut allowed: Vec<&'static str> = Vec::new();
        for route in &self.routes {
            let Some(params) = Router::matches(route, &segments) else {
                continue;
            };
            if route.method == request.method {
                return (route.handler)(request, &params);
            }
            if !allowed.contains(&route.method) {
                allowed.push(route.method);
            }
        }
        if allowed.is_empty() {
            return Response::json(404, "{\"error\":\"no such route\"}");
        }
        allowed.sort_unstable();
        let mut response = Response::json(405, "{\"error\":\"method not allowed\"}");
        response.allow = Some(allowed.join(", "));
        response
    }
}

/// Register the standard single-engine control routes under `prefix`
/// (empty for solo serve, `/tenants/<id>` per fleet tenant), reading
/// views and latching flags on `shared`, exporting metrics from
/// `recorder`.
pub fn register_control_routes(
    router: &mut Router,
    prefix: &str,
    shared: Arc<ControlShared>,
    recorder: Recorder,
) {
    let at = |route: &str| format!("{prefix}{route}");
    let view = |field: fn(&ControlShared) -> &Mutex<String>| {
        let shared = Arc::clone(&shared);
        move |_: &Request, _: &RouteParams| {
            let body = field(&shared).lock().map(|s| s.clone()).unwrap_or_default();
            Response::json(200, body)
        }
    };
    router.route("GET", &at("/status"), view(|s| &s.status));
    router.route("GET", &at("/schedule"), view(|s| &s.schedule));
    {
        let recorder = recorder.clone();
        router.route("GET", &at("/metrics"), move |req, _| {
            metrics_response(req, &recorder)
        });
    }
    {
        let shared = Arc::clone(&shared);
        router.route("GET", &at("/health"), move |_, _| health_response(&shared));
    }
    {
        let shared = Arc::clone(&shared);
        router.route("GET", &at("/timeseries"), move |req, _| {
            timeseries_response(req, &shared)
        });
    }
    {
        let shared = Arc::clone(&shared);
        router.route("POST", &at("/checkpoint"), move |_, _| {
            shared.checkpoint_requested.store(true, Ordering::SeqCst);
            Response::json(200, "{\"ok\": true, \"action\": \"checkpoint\"}")
        });
    }
    {
        let shared = Arc::clone(&shared);
        router.route("POST", &at("/shutdown"), move |_, _| {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            Response::json(200, "{\"ok\": true, \"action\": \"shutdown\"}")
        });
    }
}

/// `GET .../metrics` body for a recorder, honoring `?format=`.
pub fn metrics_response(request: &Request, recorder: &Recorder) -> Response {
    match request.query_param("format") {
        None | Some("json") => {
            let body = recorder
                .metrics_json()
                .unwrap_or_else(|| "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}".into());
            Response::json(200, body)
        }
        Some("prometheus") => Response::text(
            200,
            prometheus::CONTENT_TYPE,
            recorder.metrics_prometheus().unwrap_or_default(),
        ),
        Some(_) => Response::json(
            404,
            "{\"error\":\"unknown format (want json or prometheus)\"}",
        ),
    }
}

/// `GET .../health` body for a shared view: 503 while breached.
pub fn health_response(shared: &ControlShared) -> Response {
    let body = shared.health.lock().map(|s| s.clone()).unwrap_or_default();
    let body = if body.is_empty() {
        "{\"state\": \"ok\"}\n".to_string()
    } else {
        body
    };
    let status = if shared.health_breach.load(Ordering::SeqCst) {
        503
    } else {
        200
    };
    Response::json(status, body)
}

/// `GET .../timeseries` body for a shared view, honoring `since`/`limit`.
pub fn timeseries_response(request: &Request, shared: &ControlShared) -> Response {
    let since = request
        .query_param("since")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let limit = request
        .query_param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    let body = shared
        .series
        .lock()
        .map(|s| s.to_json(since, limit))
        .unwrap_or_default();
    Response::json(200, body)
}

/// Decode `%XX` escapes. Returns `None` on a malformed escape or if the
/// decoded bytes are not UTF-8; `+` is left alone (it is only a space in
/// form bodies, not paths).
pub fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = |b: Option<&u8>| b.and_then(|b| (*b as char).to_digit(16));
            let hi = hex(bytes.get(i + 1))?;
            let lo = hex(bytes.get(i + 2))?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// The running control plane: a bound listener plus its accept thread.
pub struct ControlPlane {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ControlPlane {
    /// Start the standard single-engine plane on an already-bound
    /// listener: [`register_control_routes`] with an empty prefix.
    pub fn start(
        listener: TcpListener,
        shared: Arc<ControlShared>,
        recorder: Recorder,
    ) -> std::io::Result<ControlPlane> {
        let mut router = Router::new();
        register_control_routes(&mut router, "", shared, recorder.clone());
        ControlPlane::start_router(listener, router, recorder)
    }

    /// Start serving an arbitrary route table. The recorder gains a
    /// `serve.requests` counter and a `serve.request_latency_us`
    /// histogram.
    pub fn start_router(
        listener: TcpListener,
        router: Router,
        recorder: Recorder,
    ) -> std::io::Result<ControlPlane> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("freshen-serve-http".into())
            .spawn(move || accept_loop(&listener, &thread_stop, &router, &recorder))?;
        Ok(ControlPlane {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Safe to call while
    /// requests are in flight: the loop finishes the current connection,
    /// then exits.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the (otherwise blocking) accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, router: &Router, recorder: &Recorder) {
    let requests = recorder.counter("serve.requests");
    let latency = recorder.histogram("serve.request_latency_us", &duration_us_buckets());
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let started = Instant::now();
        requests.inc();
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let _ = handle(&mut stream, router);
        latency.observe(started.elapsed().as_secs_f64() * 1e6);
    }
}

/// Read the request head (bounded), parse the request line, and answer.
fn handle(stream: &mut TcpStream, router: &Router) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let complete = loop {
        if head.len() >= MAX_HEAD {
            break false;
        }
        match stream.read(&mut buf) {
            Ok(0) => break head.windows(4).any(|w| w == b"\r\n\r\n"),
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break true;
                }
            }
            Err(_) => break false,
        }
    };
    if !complete {
        return reject_and_drain(
            stream,
            &Response::json(431, "{\"error\":\"request head too large or torn\"}"),
        );
    }
    // Bytes past the head terminator are the start of the body; the
    // routes take no payloads, but the body still has to be bounded
    // (413) and consumed, or the close degenerates into a TCP RST.
    let term = head
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete head has a terminator")
        + 4;
    let body_prefix = head.len() - term;
    let head = String::from_utf8_lossy(&head[..term]);
    let content_length = match parse_content_length(&head) {
        Ok(len) => len,
        Err(()) => {
            return reject_and_drain(
                stream,
                &Response::json(400, "{\"error\":\"malformed Content-Length\"}"),
            );
        }
    };
    if content_length > MAX_BODY {
        return reject_and_drain(
            stream,
            &Response::json(413, "{\"error\":\"request body too large\"}"),
        );
    }
    // Discard the in-bounds body so the connection closes cleanly.
    let mut remaining = content_length.saturating_sub(body_prefix);
    let mut scratch = [0u8; 512];
    while remaining > 0 {
        let chunk = remaining.min(scratch.len());
        match stream.read(&mut scratch[..chunk]) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining -= n,
        }
    }
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let target = request_line.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let response = match percent_decode(path) {
        Some(path) => router.dispatch(&Request {
            method: method.to_string(),
            path,
            query: query.to_string(),
        }),
        None => Response::json(400, "{\"error\":\"bad percent-escape in path\"}"),
    };
    write_response(stream, &response)
}

/// Answer with a rejection, then drain whatever the client already sent
/// before closing: a close with unread bytes in the receive buffer turns
/// into a TCP RST, which would destroy the rejection response in flight.
fn reject_and_drain(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let result = write_response(stream, response);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 512];
    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
    result
}

/// Extract `Content-Length` (case-insensitive) from a request head.
/// Absent means 0; an unparsable or duplicated-and-conflicting value is
/// an error (request smuggling guard).
fn parse_content_length(head: &str) -> std::result::Result<usize, ()> {
    let mut found: Option<usize> = None;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if !name.trim().eq_ignore_ascii_case("content-length") {
            continue;
        }
        let parsed: usize = value.trim().parse().map_err(|_| ())?;
        match found {
            Some(prev) if prev != parsed => return Err(()),
            _ => found = Some(parsed),
        }
    }
    Ok(found.unwrap_or(0))
}

const JSON: &str = "application/json";

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    if let Some(allow) = &response.allow {
        head.push_str("Allow: ");
        head.push_str(allow);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP client for tests and the bench probe: send one
/// request, return `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str) -> std::io::Result<(u16, String)> {
    let (status, _headers, body) = request_full(addr, method, path)?;
    Ok((status, body))
}

/// Like [`request`], but also returns the raw header block (everything
/// between the status line and the blank line).
pub fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "torn status line"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((response.clone(), String::new()));
    let headers = head
        .split_once("\r\n")
        .map(|(_, rest)| rest.to_string())
        .unwrap_or_default();
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_test_plane() -> (ControlPlane, Arc<ControlShared>, Recorder) {
        let shared = Arc::new(ControlShared::default());
        *shared.status.lock().unwrap() = "{\"epoch\": 3}".to_string();
        *shared.schedule.lock().unwrap() = "{\"frequencies\": [1.0]}".to_string();
        let recorder = Recorder::enabled();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let plane = ControlPlane::start(listener, Arc::clone(&shared), recorder.clone()).unwrap();
        (plane, shared, recorder)
    }

    #[test]
    fn routes_respond_and_flags_latch() {
        let (plane, shared, recorder) = start_test_plane();
        let addr = plane.local_addr();

        let (status, body) = request(addr, "GET", "/status").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"epoch\": 3}");

        let (status, body) = request(addr, "GET", "/schedule").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("frequencies"));

        let (status, body) = request(addr, "GET", "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("serve.requests"), "{body}");

        assert!(!shared.checkpoint_requested.load(Ordering::SeqCst));
        let (status, _) = request(addr, "POST", "/checkpoint").unwrap();
        assert_eq!(status, 200);
        assert!(shared.checkpoint_requested.load(Ordering::SeqCst));

        let (status, _) = request(addr, "POST", "/shutdown").unwrap();
        assert_eq!(status, 200);
        assert!(shared.shutdown_requested.load(Ordering::SeqCst));

        let (status, _) = request(addr, "GET", "/nope").unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/shutdown").unwrap();
        assert_eq!(status, 405, "control actions are POST-only");

        plane.stop();
        assert!(recorder.counter_value("serve.requests").unwrap() >= 7);
    }

    #[test]
    fn method_mismatch_carries_an_allow_header() {
        let (plane, _shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();
        let (status, headers, _) = request_full(addr, "GET", "/shutdown").unwrap();
        assert_eq!(status, 405);
        assert!(headers.contains("Allow: POST"), "{headers}");
        let (status, headers, _) = request_full(addr, "DELETE", "/status").unwrap();
        assert_eq!(status, 405);
        assert!(headers.contains("Allow: GET"), "{headers}");
        plane.stop();
    }

    #[test]
    fn paths_are_percent_decoded_before_routing() {
        let (plane, _shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();
        let (status, body) = request(addr, "GET", "/%73tatus").unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "{\"epoch\": 3}");
        let (status, _) = request(addr, "GET", "/%zztatus").unwrap();
        assert_eq!(status, 400, "malformed escape is a client error");
        let (status, _) = request(addr, "GET", "/%fftatus").unwrap();
        assert_eq!(status, 400, "non-UTF-8 decode is a client error");
        plane.stop();
    }

    #[test]
    fn percent_decode_handles_escapes_and_rejects_garbage() {
        assert_eq!(percent_decode("/plain").as_deref(), Some("/plain"));
        assert_eq!(percent_decode("/a%20b").as_deref(), Some("/a b"));
        assert_eq!(
            percent_decode("%74%65%6Eant-1").as_deref(),
            Some("tenant-1")
        );
        assert_eq!(percent_decode("a+b").as_deref(), Some("a+b"));
        assert_eq!(percent_decode("%"), None);
        assert_eq!(percent_decode("%1"), None);
        assert_eq!(percent_decode("%gg"), None);
        assert_eq!(percent_decode("%ff"), None, "lone 0xff is not UTF-8");
    }

    #[test]
    fn router_captures_params_and_collects_allowed_methods() {
        let mut router = Router::new();
        router.route("GET", "/tenants/{id}/status", |_, params| {
            Response::json(
                200,
                format!("{{\"id\": \"{}\"}}", params.get("id").unwrap()),
            )
        });
        router.route("POST", "/tenants/{id}/checkpoint", |_, _| {
            Response::json(200, "{}")
        });
        router.route("POST", "/tenants/{id}/status", |_, _| {
            Response::json(200, "{}")
        });
        let req = |method: &str, path: &str| Request {
            method: method.to_string(),
            path: path.to_string(),
            query: String::new(),
        };
        let ok = router.dispatch(&req("GET", "/tenants/acme-1/status"));
        assert_eq!(ok.status, 200);
        assert!(ok.body.contains("acme-1"), "{}", ok.body);
        let miss = router.dispatch(&req("GET", "/tenants/acme-1/nope"));
        assert_eq!(miss.status, 404);
        let wrong = router.dispatch(&req("DELETE", "/tenants/acme-1/status"));
        assert_eq!(wrong.status, 405);
        assert_eq!(wrong.allow.as_deref(), Some("GET, POST"));
    }

    #[test]
    fn health_route_tracks_the_breach_flag() {
        let (plane, shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();

        // No health body published yet: a bare 200 "ok".
        let (status, body) = request(addr, "GET", "/health").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");

        *shared.health.lock().unwrap() = "{\"state\": \"breach\"}\n".to_string();
        shared.health_breach.store(true, Ordering::SeqCst);
        let (status, body) = request(addr, "GET", "/health").unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("\"breach\""), "{body}");

        shared.health_breach.store(false, Ordering::SeqCst);
        let (status, _) = request(addr, "GET", "/health").unwrap();
        assert_eq!(status, 200);
        plane.stop();
    }

    #[test]
    fn metrics_format_and_timeseries_windowing() {
        use freshen_obs::EpochSample;
        let (plane, shared, recorder) = start_test_plane();
        let addr = plane.local_addr();
        recorder.counter("probe_total").add(3);
        {
            let mut series = shared.series.lock().unwrap();
            for epoch in 0..6 {
                series.push(EpochSample {
                    epoch,
                    realized_pf: 0.9,
                    ..EpochSample::default()
                });
            }
        }

        let (status, body) = request(addr, "GET", "/metrics?format=prometheus").unwrap();
        assert_eq!(status, 200);
        prometheus::validate_exposition(&body).unwrap();
        assert!(body.contains("probe_total 3"), "{body}");

        let (status, body) = request(addr, "GET", "/metrics?format=csv").unwrap();
        assert_eq!(status, 404, "unknown format rejected: {body}");

        let (status, body) = request(addr, "GET", "/timeseries?since=4&limit=10").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\": 4"), "{body}");
        assert!(body.contains("\"epoch\": 5"), "{body}");
        assert!(!body.contains("\"epoch\": 3"), "{body}");

        let (status, body) = request(addr, "GET", "/timeseries?limit=1").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"epoch\": 5") && !body.contains("\"epoch\": 4"),
            "{body}"
        );
        plane.stop();
    }

    #[test]
    fn oversized_heads_are_rejected_not_hung() {
        let (plane, _shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let huge = format!(
            "GET /status HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD)
        );
        stream.write_all(huge.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        plane.stop();
    }

    #[test]
    fn oversized_body_is_rejected_with_413_before_transfer() {
        let (plane, _shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Declare a body far over the cap but send none of it: the 413
        // must arrive without the server waiting for the payload.
        let head = format!(
            "POST /shutdown HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        stream.write_all(head.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        plane.stop();
    }

    #[test]
    fn malformed_content_length_is_a_400() {
        let (plane, _shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();
        for bad in [
            "Content-Length: banana",
            "Content-Length: -5",
            "Content-Length: 3\r\nContent-Length: 7",
        ] {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let head = format!("GET /status HTTP/1.1\r\n{bad}\r\n\r\n");
            stream.write_all(head.as_bytes()).unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 400"), "{bad}: {response}");
        }
        plane.stop();
    }

    #[test]
    fn in_bounds_body_is_drained_and_request_served() {
        let (plane, _shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let body = "x".repeat(2048);
        let message = format!(
            "GET /status HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(message.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        plane.stop();
    }

    #[test]
    fn stop_joins_cleanly_with_no_traffic() {
        let (plane, _shared, _recorder) = start_test_plane();
        plane.stop();
    }
}
