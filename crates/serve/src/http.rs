//! Zero-dependency HTTP/1.1 control plane on [`std::net::TcpListener`].
//!
//! The plane serves these routes from a single accept-loop thread:
//!
//! | route              | effect                                          |
//! |--------------------|-------------------------------------------------|
//! | `GET /status`      | run progress JSON (epoch, PF, resolves, drift)  |
//! | `GET /schedule`    | the active schedule JSON                        |
//! | `GET /metrics`     | the freshen-obs metrics export; add             |
//! |                    | `?format=prometheus` for text exposition        |
//! | `GET /health`      | SLO health JSON; 200 while `Ok`/`Warn`, 503 on  |
//! |                    | `Breach` (load-balancer friendly)               |
//! | `GET /timeseries`  | windowed per-epoch telemetry JSON               |
//! |                    | (`?since=<epoch>&limit=<n>`)                    |
//! | `POST /checkpoint` | request a snapshot at the next epoch boundary   |
//! | `POST /shutdown`   | request a graceful drain (finish the in-flight  |
//! |                    | epoch, checkpoint, exit cleanly)                |
//!
//! Request parsing is hand-rolled and deliberately minimal: read the
//! head up to `\r\n\r\n` (bounded), split the request line, ignore the
//! body. Control actions are edge-triggered flags on [`ControlShared`];
//! the serve loop polls them between epochs, so the control plane never
//! touches engine state directly and the epoch loop stays deterministic
//! regardless of request timing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use freshen_obs::{duration_us_buckets, prometheus, Recorder, TimeSeries};

/// Upper bound on a request head; anything longer is rejected with 431.
const MAX_HEAD: usize = 8 * 1024;
/// Per-connection socket timeout so a stalled client cannot wedge the
/// accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// State shared between the serve loop and the control plane. The loop
/// is the only writer of the JSON views and the only consumer of the
/// request flags; handlers only read views and set flags.
#[derive(Debug, Default)]
pub struct ControlShared {
    /// Current `/status` response body, refreshed each epoch.
    pub status: Mutex<String>,
    /// Current `/schedule` response body, refreshed each epoch.
    pub schedule: Mutex<String>,
    /// Current `/health` response body, refreshed each epoch.
    pub health: Mutex<String>,
    /// Mirror of the engine's telemetry ring, refreshed each epoch;
    /// `/timeseries` windows it with `since`/`limit`.
    pub series: Mutex<TimeSeries>,
    /// True while SLO health is `Breach`; flips `/health` to 503.
    pub health_breach: AtomicBool,
    /// Set by `POST /checkpoint`, cleared by the serve loop after the
    /// next epoch-boundary snapshot.
    pub checkpoint_requested: AtomicBool,
    /// Set by `POST /shutdown`; the serve loop drains and exits.
    pub shutdown_requested: AtomicBool,
    stop_accept: AtomicBool,
}

/// The running control plane: a bound listener plus its accept thread.
pub struct ControlPlane {
    addr: SocketAddr,
    shared: Arc<ControlShared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ControlPlane {
    /// Start serving on an already-bound listener. The recorder gains a
    /// `serve.requests` counter and a `serve.request_latency_us`
    /// histogram.
    pub fn start(
        listener: TcpListener,
        shared: Arc<ControlShared>,
        recorder: Recorder,
    ) -> std::io::Result<ControlPlane> {
        let addr = listener.local_addr()?;
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("freshen-serve-http".into())
            .spawn(move || accept_loop(&listener, &thread_shared, &recorder))?;
        Ok(ControlPlane {
            addr,
            shared,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Safe to call while
    /// requests are in flight: the loop finishes the current connection,
    /// then exits.
    pub fn stop(mut self) {
        self.shared.stop_accept.store(true, Ordering::SeqCst);
        // Unblock the (otherwise blocking) accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ControlShared>, recorder: &Recorder) {
    let requests = recorder.counter("serve.requests");
    let latency = recorder.histogram("serve.request_latency_us", &duration_us_buckets());
    for stream in listener.incoming() {
        if shared.stop_accept.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let started = Instant::now();
        requests.inc();
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let _ = handle(&mut stream, shared, recorder);
        latency.observe(started.elapsed().as_secs_f64() * 1e6);
    }
}

/// Read the request head (bounded), parse the request line, and answer.
fn handle(
    stream: &mut TcpStream,
    shared: &Arc<ControlShared>,
    recorder: &Recorder,
) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let complete = loop {
        if head.len() >= MAX_HEAD {
            break false;
        }
        match stream.read(&mut buf) {
            Ok(0) => break head.windows(4).any(|w| w == b"\r\n\r\n"),
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break true;
                }
            }
            Err(_) => break false,
        }
    };
    if !complete {
        let response = respond(
            stream,
            431,
            JSON,
            "{\"error\":\"request head too large or torn\"}",
        );
        // Drain whatever the client already sent before closing: a close
        // with unread bytes in the receive buffer turns into a TCP RST,
        // which would destroy the 431 response in flight.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut scratch = [0u8; 512];
        while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
        return response;
    }
    let head = String::from_utf8_lossy(&head);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let target = request_line.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    match (method, path) {
        ("GET", "/status") => {
            let body = shared.status.lock().map(|s| s.clone()).unwrap_or_default();
            respond(stream, 200, JSON, &body)
        }
        ("GET", "/schedule") => {
            let body = shared
                .schedule
                .lock()
                .map(|s| s.clone())
                .unwrap_or_default();
            respond(stream, 200, JSON, &body)
        }
        ("GET", "/metrics") => match query_param(query, "format") {
            None | Some("json") => {
                let body = recorder.metrics_json().unwrap_or_else(|| {
                    "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}".into()
                });
                respond(stream, 200, JSON, &body)
            }
            Some("prometheus") => {
                let body = recorder.metrics_prometheus().unwrap_or_default();
                respond(stream, 200, prometheus::CONTENT_TYPE, &body)
            }
            Some(_) => respond(
                stream,
                404,
                JSON,
                "{\"error\":\"unknown format (want json or prometheus)\"}",
            ),
        },
        ("GET", "/health") => {
            let body = shared.health.lock().map(|s| s.clone()).unwrap_or_default();
            let body = if body.is_empty() {
                "{\"state\": \"ok\"}\n".to_string()
            } else {
                body
            };
            let status = if shared.health_breach.load(Ordering::SeqCst) {
                503
            } else {
                200
            };
            respond(stream, status, JSON, &body)
        }
        ("GET", "/timeseries") => {
            let since = query_param(query, "since")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            let limit = query_param(query, "limit")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(usize::MAX);
            let body = shared
                .series
                .lock()
                .map(|s| s.to_json(since, limit))
                .unwrap_or_default();
            respond(stream, 200, JSON, &body)
        }
        ("POST", "/checkpoint") => {
            shared.checkpoint_requested.store(true, Ordering::SeqCst);
            respond(
                stream,
                200,
                JSON,
                "{\"ok\": true, \"action\": \"checkpoint\"}",
            )
        }
        ("POST", "/shutdown") => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            respond(
                stream,
                200,
                JSON,
                "{\"ok\": true, \"action\": \"shutdown\"}",
            )
        }
        (
            _,
            "/status" | "/schedule" | "/metrics" | "/health" | "/timeseries" | "/checkpoint"
            | "/shutdown",
        ) => respond(stream, 405, JSON, "{\"error\":\"method not allowed\"}"),
        _ => respond(stream, 404, JSON, "{\"error\":\"no such route\"}"),
    }
}

/// Look up `key` in a raw query string (`a=1&b=2`). No percent-decoding:
/// every value this plane accepts is alphanumeric.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

const JSON: &str = "application/json";

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP client for tests and the bench probe: send one
/// request, return `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "torn status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_test_plane() -> (ControlPlane, Arc<ControlShared>, Recorder) {
        let shared = Arc::new(ControlShared::default());
        *shared.status.lock().unwrap() = "{\"epoch\": 3}".to_string();
        *shared.schedule.lock().unwrap() = "{\"frequencies\": [1.0]}".to_string();
        let recorder = Recorder::enabled();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let plane = ControlPlane::start(listener, Arc::clone(&shared), recorder.clone()).unwrap();
        (plane, shared, recorder)
    }

    #[test]
    fn routes_respond_and_flags_latch() {
        let (plane, shared, recorder) = start_test_plane();
        let addr = plane.local_addr();

        let (status, body) = request(addr, "GET", "/status").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"epoch\": 3}");

        let (status, body) = request(addr, "GET", "/schedule").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("frequencies"));

        let (status, body) = request(addr, "GET", "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("serve.requests"), "{body}");

        assert!(!shared.checkpoint_requested.load(Ordering::SeqCst));
        let (status, _) = request(addr, "POST", "/checkpoint").unwrap();
        assert_eq!(status, 200);
        assert!(shared.checkpoint_requested.load(Ordering::SeqCst));

        let (status, _) = request(addr, "POST", "/shutdown").unwrap();
        assert_eq!(status, 200);
        assert!(shared.shutdown_requested.load(Ordering::SeqCst));

        let (status, _) = request(addr, "GET", "/nope").unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/shutdown").unwrap();
        assert_eq!(status, 405, "control actions are POST-only");

        plane.stop();
        assert!(recorder.counter_value("serve.requests").unwrap() >= 7);
    }

    #[test]
    fn health_route_tracks_the_breach_flag() {
        let (plane, shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();

        // No health body published yet: a bare 200 "ok".
        let (status, body) = request(addr, "GET", "/health").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");

        *shared.health.lock().unwrap() = "{\"state\": \"breach\"}\n".to_string();
        shared.health_breach.store(true, Ordering::SeqCst);
        let (status, body) = request(addr, "GET", "/health").unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("\"breach\""), "{body}");

        shared.health_breach.store(false, Ordering::SeqCst);
        let (status, _) = request(addr, "GET", "/health").unwrap();
        assert_eq!(status, 200);
        plane.stop();
    }

    #[test]
    fn metrics_format_and_timeseries_windowing() {
        use freshen_obs::EpochSample;
        let (plane, shared, recorder) = start_test_plane();
        let addr = plane.local_addr();
        recorder.counter("probe_total").add(3);
        {
            let mut series = shared.series.lock().unwrap();
            for epoch in 0..6 {
                series.push(EpochSample {
                    epoch,
                    realized_pf: 0.9,
                    ..EpochSample::default()
                });
            }
        }

        let (status, body) = request(addr, "GET", "/metrics?format=prometheus").unwrap();
        assert_eq!(status, 200);
        prometheus::validate_exposition(&body).unwrap();
        assert!(body.contains("probe_total 3"), "{body}");

        let (status, body) = request(addr, "GET", "/metrics?format=csv").unwrap();
        assert_eq!(status, 404, "unknown format rejected: {body}");

        let (status, body) = request(addr, "GET", "/timeseries?since=4&limit=10").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\": 4"), "{body}");
        assert!(body.contains("\"epoch\": 5"), "{body}");
        assert!(!body.contains("\"epoch\": 3"), "{body}");

        let (status, body) = request(addr, "GET", "/timeseries?limit=1").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"epoch\": 5") && !body.contains("\"epoch\": 4"),
            "{body}"
        );
        plane.stop();
    }

    #[test]
    fn oversized_heads_are_rejected_not_hung() {
        let (plane, _shared, _recorder) = start_test_plane();
        let addr = plane.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let huge = format!(
            "GET /status HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD)
        );
        stream.write_all(huge.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        plane.stop();
    }

    #[test]
    fn stop_joins_cleanly_with_no_traffic() {
        let (plane, _shared, _recorder) = start_test_plane();
        plane.stop();
    }
}
