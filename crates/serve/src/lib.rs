//! `freshen-serve`: the long-running service runtime around
//! [`freshen-engine`](freshen_engine).
//!
//! The engine's epoch loop is a deterministic pure function of its
//! inputs; this crate makes that function *operable* without breaking
//! it. Three pieces:
//!
//! 1. **Checkpoint/restore** ([`snapshot`]) — a versioned, CRC-checked
//!    binary snapshot of everything the run carries across epochs:
//!    estimator state, profile counts, drift baselines, the dispatcher's
//!    credit ledger, the poll source's replay position, and the access
//!    stream's consumed count. Snapshots are written atomically (temp
//!    file + rename) at epoch boundaries, where the engine's state
//!    contract holds exactly. A run killed at epoch `k` and resumed
//!    produces a final report **byte-identical** to an uninterrupted
//!    same-seed run.
//! 2. **Control plane** ([`http`]) — a zero-dependency HTTP/1.1 server
//!    on [`std::net::TcpListener`] exposing `GET /status`, `/schedule`,
//!    `/metrics` (the freshen-obs export) and `POST /checkpoint`,
//!    `/shutdown`. Handlers never touch engine state: control actions
//!    latch flags the serve loop consumes between epochs, so request
//!    timing cannot perturb the deterministic run.
//! 3. **The serve loop** ([`service`]) — owns the engine and steps it
//!    one epoch at a time, checkpointing on a cadence or on demand, and
//!    draining gracefully on shutdown: finish the in-flight epoch,
//!    write a final snapshot, exit cleanly.
//!
//! Crash recovery is validation-first: a truncated, bit-flipped,
//! mis-versioned, or shape-mismatched snapshot is rejected with a
//! [`CoreError`](freshen_core::error::CoreError) before any state is
//! touched — never a panic, and never a partial restore.
//!
//! ```
//! use freshen_core::problem::Problem;
//! use freshen_engine::EngineConfig;
//! use freshen_serve::{ServeConfig, ServeWorkload, Server};
//!
//! let problem = Problem::builder()
//!     .change_rates(vec![2.0, 1.0])
//!     .access_weights(vec![3.0, 1.0])
//!     .bandwidth(2.0)
//!     .build()
//!     .unwrap();
//! let dir = std::env::temp_dir().join("freshen-serve-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let config = ServeConfig {
//!     engine: EngineConfig { epochs: 4, warmup_epochs: 1, ..EngineConfig::default() },
//!     checkpoint_path: dir.join("doc.snapshot"),
//!     ..ServeConfig::default()
//! };
//! let workload = ServeWorkload::Live { problem, access_rate: 40.0 };
//! let outcome = Server::new(workload, config).unwrap().run().unwrap();
//! assert!(outcome.report.unwrap().realized_pf > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod http;
pub mod service;
pub mod snapshot;

pub use http::{
    health_response, metrics_response, percent_decode, register_control_routes, request,
    request_full, timeseries_response, ControlPlane, ControlShared, Request, Response, RouteParams,
    Router,
};
pub use service::{
    publish_engine_views, ExitReason, ServeConfig, ServeOutcome, ServeWorkload, Server,
    ACCESS_SEED_SALT, POLL_SEED_SALT,
};
pub use snapshot::{Snapshot, SnapshotShape, SourceState};
