//! Versioned, CRC-checked snapshot format for kill-and-resume.
//!
//! The file layout is a 12-byte header followed by a flat little-endian
//! payload:
//!
//! | offset | bytes | field                              |
//! |--------|-------|------------------------------------|
//! | 0      | 4     | magic `FRSN`                       |
//! | 4      | 4     | format version (`u32`, currently 2)|
//! | 8      | 4     | CRC-32 of the payload (`u32`)      |
//! | 12     | …     | payload                            |
//!
//! The payload is, in order: the [`SnapshotShape`] (problem size, seed,
//! horizon, and estimator choice — checked against the restoring
//! process's configuration before any state is touched), the engine's
//! [`EngineState`], the poll source's [`SourceState`], and the number of
//! access records consumed so far. Floats are stored as raw IEEE-754
//! bits ([`f64::to_bits`]) so a round trip is bit-exact — the snapshot
//! never passes a value through decimal formatting.
//!
//! Everything is hand-rolled on purpose: the format has no external
//! dependencies, every decode error is a [`CoreError`] (never a panic),
//! and a truncated, bit-flipped, or mis-versioned file is rejected
//! before any field is interpreted.

use std::io::Write as _;
use std::path::Path;

use freshen_core::error::{CoreError, Result};
use freshen_core::problem::Solution;
use freshen_engine::report::EpochStats;
use freshen_engine::state::{EngineState, EstimatorState};
use freshen_engine::{EngineConfig, EstimatorKind, LivePollState};
use freshen_obs::{EpochSample, Health, SloAlert, SloState, TimeSeriesState};

/// File magic: the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"FRSN";
/// Current format version. Version 2 added the telemetry time-series
/// ring and the optional SLO-evaluator state; version 3 added the
/// scheduler's repair/repair-fallback counters (incremental KKT repair);
/// version 4 added the LLN and stochastic-approximation estimator kinds
/// and the schedule's cost-multiplier field (cost-aware objective).
/// Older files are rejected (re-run from the trace rather than silently
/// dropping counters out of the determinism contract).
pub const VERSION: u32 = 4;
/// Upper bound on any encoded collection length — a CRC-valid file
/// claiming more is rejected rather than allocated.
const MAX_LEN: u64 = 1 << 24;

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial), computed bitwise so no
/// table or dependency is needed. Snapshots are small and written at
/// epoch cadence; throughput is irrelevant here.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The problem shape and configuration fingerprint a snapshot was taken
/// under. Restoring requires an exact match: resuming a 64-element EWMA
/// run into a 32-element window-estimator process is a configuration
/// error, not a best-effort merge.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotShape {
    /// Number of mirrored elements.
    pub elements: usize,
    /// Master engine seed.
    pub seed: u64,
    /// Configured run length in epochs.
    pub epochs: usize,
    /// Epoch length in periods.
    pub epoch_len: f64,
    /// Change-rate estimator choice (and its parameter).
    pub estimator: EstimatorKind,
}

impl SnapshotShape {
    /// Fingerprint `config` for an `elements`-sized run.
    pub fn of(config: &EngineConfig, elements: usize) -> Self {
        SnapshotShape {
            elements,
            seed: config.seed,
            epochs: config.epochs,
            epoch_len: config.epoch_len,
            estimator: config.estimator,
        }
    }

    /// Verify this snapshot was taken under `config` over `elements`
    /// elements; the error names the first mismatching dimension.
    pub fn matches(&self, config: &EngineConfig, elements: usize) -> Result<()> {
        if self.elements != elements {
            return Err(CoreError::LengthMismatch {
                what: "snapshot element count",
                expected: elements,
                actual: self.elements,
            });
        }
        let expected = SnapshotShape::of(config, elements);
        if self != &expected {
            return Err(CoreError::InvalidConfig(format!(
                "snapshot shape {self:?} does not match the configured run {expected:?}"
            )));
        }
        Ok(())
    }
}

/// Poll-source state captured alongside the engine: either replay
/// cursors or the live source's replayable position.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceState {
    /// [`ReplayPollSource`](freshen_engine::ReplayPollSource) per-element
    /// cursors.
    Replay {
        /// Next-unconsumed index into each element's poll log.
        cursors: Vec<usize>,
    },
    /// [`LivePollSource`](freshen_engine::LivePollSource) replay state.
    Live(LivePollState),
}

/// One complete checkpoint: shape fingerprint, engine state, source
/// state, and the access-stream position.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Configuration fingerprint the snapshot was taken under.
    pub shape: SnapshotShape,
    /// The engine's cross-epoch state.
    pub engine: EngineState,
    /// The poll source's position.
    pub source: SourceState,
    /// Access records consumed from the stream so far (the resuming
    /// process skips exactly this many).
    pub accesses_consumed: u64,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
    fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }
    fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v.as_bytes());
    }
    fn sample(&mut self, s: &EpochSample) {
        self.u64(s.epoch);
        self.f64(s.realized_pf);
        self.f64(s.drift);
        self.f64(s.age_p50);
        self.f64(s.age_p95);
        self.f64(s.age_max);
        self.f64(s.credit);
        self.u64(s.resolves);
        self.u64(s.skips);
        self.f64(s.shed);
        self.u64(s.dispatched);
        self.u64(s.accesses);
        self.u64(s.stale_served);
        self.u8(s.health);
        self.u64(s.requests);
        self.f64(s.request_p95_us);
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> CoreError {
    CoreError::InvalidConfig(format!("snapshot: {what}"))
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt("truncated payload"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt("boolean field out of range")),
        }
    }
    fn len(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > MAX_LEN {
            return Err(corrupt("collection length exceeds sanity bound"));
        }
        Ok(n as usize)
    }
    fn vec_f64(&mut self) -> Result<Vec<f64>> {
        let n = self.len()?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn vec_u64(&mut self) -> Result<Vec<u64>> {
        let n = self.len()?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn opt_f64(&mut self) -> Result<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(corrupt("option tag out of range")),
        }
    }
    fn str(&mut self) -> Result<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string field is not UTF-8"))
    }
    fn sample(&mut self) -> Result<EpochSample> {
        let sample = EpochSample {
            epoch: self.u64()?,
            realized_pf: self.f64()?,
            drift: self.f64()?,
            age_p50: self.f64()?,
            age_p95: self.f64()?,
            age_max: self.f64()?,
            credit: self.f64()?,
            resolves: self.u64()?,
            skips: self.u64()?,
            shed: self.f64()?,
            dispatched: self.u64()?,
            accesses: self.u64()?,
            stale_served: self.u64()?,
            health: self.u8()?,
            requests: self.u64()?,
            request_p95_us: self.f64()?,
        };
        if Health::from_u8(sample.health).is_none() {
            return Err(corrupt("sample health byte out of range"));
        }
        Ok(sample)
    }
    fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

impl Snapshot {
    /// Serialize to the framed byte format (header + CRC'd payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::with_capacity(256));

        // Shape.
        e.u64(self.shape.elements as u64);
        e.u64(self.shape.seed);
        e.u64(self.shape.epochs as u64);
        e.f64(self.shape.epoch_len);
        match self.shape.estimator {
            EstimatorKind::Ewma { gain } => {
                e.u8(0);
                e.f64(gain);
            }
            EstimatorKind::Window { len } => {
                e.u8(1);
                e.u64(len as u64);
            }
            EstimatorKind::Lln => {
                e.u8(2);
            }
            EstimatorKind::Sa { gain, decay } => {
                e.u8(3);
                e.f64(gain);
                e.f64(decay);
            }
        }

        // Engine state.
        let s = &self.engine;
        e.vec_f64(&s.last_poll);
        match &s.estimator {
            EstimatorState::Ewma { rates, seen } => {
                e.u8(0);
                e.vec_f64(rates);
                e.vec_u64(seen);
            }
            EstimatorState::Window { window, entries } => {
                e.u8(1);
                e.u64(*window as u64);
                e.u64(entries.len() as u64);
                for elem in entries {
                    e.u64(elem.len() as u64);
                    for &(interval, changed) in elem {
                        e.f64(interval);
                        e.bool(changed);
                    }
                }
            }
            EstimatorState::Lln {
                polls,
                detections,
                interval_sum,
            } => {
                e.u8(2);
                e.vec_u64(polls);
                e.vec_u64(detections);
                e.vec_f64(interval_sum);
            }
            EstimatorState::Sa { rates, seen } => {
                e.u8(3);
                e.vec_f64(rates);
                e.vec_u64(seen);
            }
        }
        e.vec_f64(&s.profile_counts);
        e.u64(s.profile_observations);
        e.vec_f64(&s.schedule.frequencies);
        e.f64(s.schedule.perceived_freshness);
        e.f64(s.schedule.general_freshness);
        e.f64(s.schedule.bandwidth_used);
        e.opt_f64(s.schedule.multiplier);
        e.opt_f64(s.schedule.cost_multiplier);
        e.u64(s.schedule.iterations as u64);
        e.vec_f64(&s.baseline_probs);
        e.vec_f64(&s.baseline_rates);
        e.u64(s.resolves);
        e.u64(s.skips);
        e.u64(s.repairs);
        e.u64(s.repair_fallbacks);
        e.opt_f64(s.last_drift);
        e.vec_f64(&s.credit);
        e.vec_u64(&s.attempts);
        e.u64(s.history.len() as u64);
        for epoch in &s.history {
            e.u64(epoch.index as u64);
            e.f64(epoch.start);
            e.f64(epoch.drift);
            e.bool(epoch.resolved);
            e.u64(epoch.accesses);
            e.u64(epoch.stale_served);
            e.u64(epoch.dispatched);
            e.u64(epoch.succeeded);
            e.u64(epoch.failures);
            e.u64(epoch.retries);
            e.u64(epoch.deferred);
            e.f64(epoch.shed);
            e.f64(epoch.realized_pf);
        }
        e.u64(s.series.stride);
        e.u64(s.series.samples.len() as u64);
        for sample in &s.series.samples {
            e.sample(sample);
        }
        match &s.slo {
            None => e.u8(0),
            Some(slo) => {
                e.u8(1);
                e.u8(slo.health);
                e.u64(slo.consecutive_bad);
                e.u64(slo.consecutive_good);
                e.vec_f64(&slo.pf_window);
                e.u64(slo.alerts.len() as u64);
                for alert in &slo.alerts {
                    e.u64(alert.epoch);
                    e.u8(alert.health.as_u8());
                    e.str(&alert.rule);
                    e.f64(alert.value);
                    e.f64(alert.threshold);
                }
                e.u64(slo.alerts_dropped);
                e.u64(slo.evaluations);
                e.u64(slo.warns);
                e.u64(slo.breaches);
                e.u64(slo.recoveries);
            }
        }

        // Source state + stream position.
        match &self.source {
            SourceState::Replay { cursors } => {
                e.u8(0);
                e.u64(cursors.len() as u64);
                for &c in cursors {
                    e.u64(c as u64);
                }
            }
            SourceState::Live(live) => {
                e.u8(1);
                e.u64(live.consumed);
                e.vec_u64(&live.versions);
                e.vec_u64(&live.synced);
                e.bool(live.has_pending);
            }
        }
        e.u64(self.accesses_consumed);

        let payload = e.0;
        let mut framed = Vec::with_capacity(12 + payload.len());
        framed.extend_from_slice(&MAGIC);
        framed.extend_from_slice(&VERSION.to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed
    }

    /// Parse a framed snapshot. Every malformed input — wrong magic,
    /// unknown version, CRC mismatch, truncation, out-of-range tags,
    /// trailing garbage — comes back as [`CoreError::InvalidConfig`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < 12 {
            return Err(corrupt("file shorter than the 12-byte header"));
        }
        if bytes[0..4] != MAGIC {
            return Err(corrupt("bad magic (not a freshen snapshot)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(corrupt(&format!(
                "unsupported format version {version} (this build reads {VERSION})"
            )));
        }
        let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let payload = &bytes[12..];
        let actual_crc = crc32(payload);
        if stored_crc != actual_crc {
            return Err(corrupt(&format!(
                "CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )));
        }

        let mut d = Dec {
            bytes: payload,
            pos: 0,
        };

        let elements = d.len()?;
        let seed = d.u64()?;
        let epochs = d.len()?;
        let epoch_len = d.f64()?;
        let estimator = match d.u8()? {
            0 => EstimatorKind::Ewma { gain: d.f64()? },
            1 => EstimatorKind::Window { len: d.len()? },
            2 => EstimatorKind::Lln,
            3 => EstimatorKind::Sa {
                gain: d.f64()?,
                decay: d.f64()?,
            },
            _ => return Err(corrupt("estimator tag out of range")),
        };
        let shape = SnapshotShape {
            elements,
            seed,
            epochs,
            epoch_len,
            estimator,
        };

        let last_poll = d.vec_f64()?;
        let estimator_state = match d.u8()? {
            0 => EstimatorState::Ewma {
                rates: d.vec_f64()?,
                seen: d.vec_u64()?,
            },
            1 => {
                let window = d.len()?;
                let n = d.len()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let m = d.len()?;
                    let mut elem = Vec::with_capacity(m);
                    for _ in 0..m {
                        let interval = d.f64()?;
                        let changed = d.bool()?;
                        elem.push((interval, changed));
                    }
                    entries.push(elem);
                }
                EstimatorState::Window { window, entries }
            }
            2 => EstimatorState::Lln {
                polls: d.vec_u64()?,
                detections: d.vec_u64()?,
                interval_sum: d.vec_f64()?,
            },
            3 => EstimatorState::Sa {
                rates: d.vec_f64()?,
                seen: d.vec_u64()?,
            },
            _ => return Err(corrupt("estimator-state tag out of range")),
        };
        let profile_counts = d.vec_f64()?;
        let profile_observations = d.u64()?;
        let schedule = Solution {
            frequencies: d.vec_f64()?,
            perceived_freshness: d.f64()?,
            general_freshness: d.f64()?,
            bandwidth_used: d.f64()?,
            multiplier: d.opt_f64()?,
            cost_multiplier: d.opt_f64()?,
            iterations: d.len()?,
        };
        let baseline_probs = d.vec_f64()?;
        let baseline_rates = d.vec_f64()?;
        let resolves = d.u64()?;
        let skips = d.u64()?;
        let repairs = d.u64()?;
        let repair_fallbacks = d.u64()?;
        let last_drift = d.opt_f64()?;
        let credit = d.vec_f64()?;
        let attempts = d.vec_u64()?;
        let history_len = d.len()?;
        let mut history = Vec::with_capacity(history_len);
        for _ in 0..history_len {
            history.push(EpochStats {
                index: d.len()?,
                start: d.f64()?,
                drift: d.f64()?,
                resolved: d.bool()?,
                accesses: d.u64()?,
                stale_served: d.u64()?,
                dispatched: d.u64()?,
                succeeded: d.u64()?,
                failures: d.u64()?,
                retries: d.u64()?,
                deferred: d.u64()?,
                shed: d.f64()?,
                realized_pf: d.f64()?,
            });
        }
        let series = {
            let stride = d.u64()?;
            let n = d.len()?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(d.sample()?);
            }
            TimeSeriesState { stride, samples }
        };
        let slo = match d.u8()? {
            0 => None,
            1 => {
                let health = d.u8()?;
                if Health::from_u8(health).is_none() {
                    return Err(corrupt("SLO health byte out of range"));
                }
                let consecutive_bad = d.u64()?;
                let consecutive_good = d.u64()?;
                let pf_window = d.vec_f64()?;
                let n = d.len()?;
                let mut alerts = Vec::with_capacity(n);
                for _ in 0..n {
                    let epoch = d.u64()?;
                    let health = Health::from_u8(d.u8()?)
                        .ok_or_else(|| corrupt("alert health byte out of range"))?;
                    alerts.push(SloAlert {
                        epoch,
                        health,
                        rule: d.str()?,
                        value: d.f64()?,
                        threshold: d.f64()?,
                    });
                }
                Some(SloState {
                    health,
                    consecutive_bad,
                    consecutive_good,
                    pf_window,
                    alerts,
                    alerts_dropped: d.u64()?,
                    evaluations: d.u64()?,
                    warns: d.u64()?,
                    breaches: d.u64()?,
                    recoveries: d.u64()?,
                })
            }
            _ => return Err(corrupt("SLO tag out of range")),
        };
        let engine = EngineState {
            last_poll,
            estimator: estimator_state,
            profile_counts,
            profile_observations,
            schedule,
            baseline_probs,
            baseline_rates,
            resolves,
            skips,
            repairs,
            repair_fallbacks,
            last_drift,
            credit,
            attempts,
            history,
            series,
            slo,
        };

        let source = match d.u8()? {
            0 => {
                let n = d.len()?;
                let mut cursors = Vec::with_capacity(n);
                for _ in 0..n {
                    cursors.push(d.len()?);
                }
                SourceState::Replay { cursors }
            }
            1 => SourceState::Live(LivePollState {
                consumed: d.u64()?,
                versions: d.vec_u64()?,
                synced: d.vec_u64()?,
                has_pending: d.bool()?,
            }),
            _ => return Err(corrupt("source tag out of range")),
        };
        let accesses_consumed = d.u64()?;
        d.finish()?;

        Ok(Snapshot {
            shape,
            engine,
            source,
            accesses_consumed,
        })
    }

    /// Write the snapshot atomically: encode to `<path>.tmp` in the same
    /// directory, fsync, then rename over `path`. A crash mid-write
    /// leaves either the old snapshot or none — never a torn file.
    pub fn write_atomic(&self, path: &Path) -> Result<()> {
        let io_err = |stage: &str, e: std::io::Error| {
            CoreError::InvalidConfig(format!("snapshot {stage} `{}`: {e}", path.display()))
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let bytes = self.encode();
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
        file.write_all(&bytes).map_err(|e| io_err("write", e))?;
        file.sync_all().map_err(|e| io_err("sync", e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))
    }

    /// Read and decode a snapshot file.
    pub fn read(path: &Path) -> Result<Snapshot> {
        let bytes = std::fs::read(path).map_err(|e| {
            CoreError::InvalidConfig(format!("snapshot read `{}`: {e}", path.display()))
        })?;
        Snapshot::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            shape: SnapshotShape {
                elements: 3,
                seed: 42,
                epochs: 8,
                epoch_len: 1.0,
                estimator: EstimatorKind::Ewma { gain: 0.1 },
            },
            engine: EngineState {
                last_poll: vec![0.5, 1.25, 0.0],
                estimator: EstimatorState::Ewma {
                    rates: vec![2.0, 0.125, 1e-9],
                    seen: vec![4, 0, 17],
                },
                profile_counts: vec![10.0, 3.5, 0.25],
                profile_observations: 14,
                schedule: Solution {
                    frequencies: vec![1.5, 1.0, 0.5],
                    perceived_freshness: 0.875,
                    general_freshness: 0.75,
                    bandwidth_used: 3.0,
                    multiplier: Some(0.33),
                    cost_multiplier: Some(0.02),
                    iterations: 12,
                },
                baseline_probs: vec![0.6, 0.3, 0.1],
                baseline_rates: vec![2.0, 1.0, 0.5],
                resolves: 2,
                skips: 3,
                repairs: 1,
                repair_fallbacks: 1,
                last_drift: Some(0.01),
                credit: vec![0.0, 0.5, -0.0],
                attempts: vec![9, 4, 1],
                history: vec![EpochStats {
                    index: 0,
                    start: 0.0,
                    drift: 0.02,
                    resolved: true,
                    accesses: 40,
                    stale_served: 2,
                    dispatched: 6,
                    succeeded: 5,
                    failures: 1,
                    retries: 1,
                    deferred: 0,
                    shed: 0.25,
                    realized_pf: 0.8,
                }],
                series: TimeSeriesState {
                    stride: 2,
                    samples: vec![EpochSample {
                        epoch: 0,
                        realized_pf: 0.8,
                        drift: 0.02,
                        age_p50: 0.5,
                        age_p95: 0.9,
                        age_max: 1.0,
                        credit: 0.5,
                        resolves: 2,
                        skips: 3,
                        shed: 0.25,
                        dispatched: 6,
                        accesses: 40,
                        stale_served: 2,
                        health: Health::Warn.as_u8(),
                        requests: 17,
                        request_p95_us: 850.0,
                    }],
                },
                slo: Some(SloState {
                    health: Health::Warn.as_u8(),
                    consecutive_bad: 1,
                    consecutive_good: 0,
                    pf_window: vec![0.9, 0.8],
                    alerts: vec![SloAlert {
                        epoch: 0,
                        health: Health::Warn,
                        rule: "pf_floor".to_string(),
                        value: 0.8,
                        threshold: 0.85,
                    }],
                    alerts_dropped: 0,
                    evaluations: 1,
                    warns: 1,
                    breaches: 0,
                    recoveries: 0,
                }),
            },
            source: SourceState::Live(LivePollState {
                consumed: 21,
                versions: vec![7, 9, 5],
                synced: vec![7, 8, 5],
                has_pending: true,
            }),
            accesses_consumed: 40,
        }
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let snap = sample();
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);

        // Window-estimator and replay-source variant.
        let mut snap = sample();
        snap.shape.estimator = EstimatorKind::Window { len: 4 };
        snap.engine.estimator = EstimatorState::Window {
            window: 4,
            entries: vec![vec![(0.5, true), (0.25, false)], vec![], vec![(1.0, true)]],
        };
        snap.source = SourceState::Replay {
            cursors: vec![3, 0, 8],
        };
        // SLO-unarmed variant exercises the `None` tag.
        snap.engine.slo = None;
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);

        // LLN-estimator variant (full-history sufficient statistics),
        // plus the levy-free schedule (`cost_multiplier: None`).
        let mut snap = sample();
        snap.shape.estimator = EstimatorKind::Lln;
        snap.engine.estimator = EstimatorState::Lln {
            polls: vec![12, 0, 3],
            detections: vec![5, 0, 1],
            interval_sum: vec![6.5, 0.0, 1.75],
        };
        snap.engine.schedule.cost_multiplier = None;
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);

        // SA-estimator variant (gain schedule lives in the shape).
        let mut snap = sample();
        snap.shape.estimator = EstimatorKind::Sa {
            gain: 0.5,
            decay: 0.75,
        };
        snap.engine.estimator = EstimatorState::Sa {
            rates: vec![1.5, 0.25, 1e-9],
            seen: vec![8, 0, 2],
        };
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn roundtrip_preserves_float_bits_exactly() {
        let mut snap = sample();
        snap.engine.last_poll = vec![f64::MIN_POSITIVE, -0.0, 1.0 + f64::EPSILON];
        let back = Snapshot::decode(&snap.encode()).unwrap();
        for (a, b) in snap.engine.last_poll.iter().zip(&back.engine.last_poll) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_corruption_is_a_clean_error() {
        let bytes = sample().encode();

        // Truncations at every boundary, including mid-header.
        for cut in [0, 3, 8, 11, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Bad magic / version.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Snapshot::decode(&bad).is_err());
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(Snapshot::decode(&bad).is_err());
        // Every single-byte flip in the payload must be caught by the
        // CRC (and never panic).
        for i in 12..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(Snapshot::decode(&bad).is_err(), "flip at {i}");
        }
        // A flipped CRC byte with an intact payload is also rejected.
        let mut bad = bytes.clone();
        bad[8] ^= 0x01;
        assert!(Snapshot::decode(&bad).is_err());
        // Trailing garbage after a valid payload.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(Snapshot::decode(&bad).is_err());
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let snap = sample();
        let config = EngineConfig {
            epochs: 8,
            seed: 42,
            ..EngineConfig::default()
        };
        assert!(snap.shape.matches(&config, 3).is_ok());
        assert!(matches!(
            snap.shape.matches(&config, 4),
            Err(CoreError::LengthMismatch { .. })
        ));
        let other_seed = EngineConfig {
            seed: 43,
            ..config.clone()
        };
        assert!(snap.shape.matches(&other_seed, 3).is_err());
        let other_estimator = EngineConfig {
            estimator: EstimatorKind::Window { len: 8 },
            ..config
        };
        assert!(snap.shape.matches(&other_estimator, 3).is_err());
    }

    #[test]
    fn atomic_write_then_read_roundtrips() {
        let dir = std::env::temp_dir().join("freshen-serve-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snapshot");
        let snap = sample();
        snap.write_atomic(&path).unwrap();
        // Overwrite with a second snapshot: rename must replace cleanly.
        let mut second = sample();
        second.accesses_consumed = 99;
        second.write_atomic(&path).unwrap();
        assert_eq!(Snapshot::read(&path).unwrap(), second);
        std::fs::remove_file(&path).ok();
    }
}
