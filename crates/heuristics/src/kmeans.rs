//! k-Means refinement of an initial partitioning (paper §4.1.3).
//!
//! "Empirically we have seen that the partitions can be improved by
//! running several iterations of a k-Means clustering algorithm" — starting
//! from the sorted contiguous partitions and cleaning up the grouping with
//! Euclidean distance in normalized feature space. The features are the
//! element's access probability and its change rate normalized to sum to 1
//! (paper Eq. 3 / footnote 6); with variable object sizes, the normalized
//! size joins as a third coordinate.
//!
//! The paper's headline: *very few* iterations on a *small* number of
//! clusters reach solution quality that raw sorted partitioning needs many
//! more partitions (and much more solve time) to match.

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::{Executor, DEFAULT_CHUNK};
use freshen_core::problem::Problem;
use freshen_obs::Recorder;

use crate::partition::Partitioning;

/// Per-element feature vectors for clustering: `(p, λ′, s′)` with `λ′` and
/// `s′` normalized to sum to 1 (sizes included only for non-uniform-size
/// problems; the third coordinate is 0 otherwise, which leaves distances
/// unchanged).
pub fn feature_vectors(problem: &Problem) -> Vec<[f64; 3]> {
    let n = problem.len();
    let lam_total: f64 = problem.change_rates().iter().sum();
    let lam_scale = if lam_total > 0.0 {
        1.0 / lam_total
    } else {
        0.0
    };
    let use_sizes = !problem.has_uniform_sizes();
    let size_total: f64 = problem.sizes().iter().sum();
    let size_scale = if use_sizes && size_total > 0.0 {
        1.0 / size_total
    } else {
        0.0
    };
    (0..n)
        .map(|i| {
            [
                problem.access_probs()[i],
                problem.change_rates()[i] * lam_scale,
                problem.sizes()[i] * size_scale,
            ]
        })
        .collect()
}

/// Total within-cluster sum of squared distances — the k-Means objective.
/// Non-increasing across refinement iterations (asserted by tests).
pub fn within_cluster_ss(features: &[[f64; 3]], partitioning: &Partitioning) -> f64 {
    let centroids = compute_centroids(features, partitioning);
    let mut ss = 0.0;
    for (i, f) in features.iter().enumerate() {
        let c = &centroids[partitioning.partition_of(i)];
        ss += dist2(f, c);
    }
    ss
}

/// Refine `initial` with up to `iterations` Lloyd steps; returns the new
/// partitioning and the number of iterations actually executed (early exit
/// when an iteration moves no element).
///
/// With `iterations == 0` the input partitioning is returned unchanged —
/// the "0 iterations" point on the paper's Figure 8 plots.
pub fn refine(
    problem: &Problem,
    initial: &Partitioning,
    iterations: usize,
) -> Result<(Partitioning, usize)> {
    refine_observed(problem, initial, iterations, &Recorder::disabled())
}

/// [`refine`] with per-round observability: each Lloyd round records a span
/// carrying its element-movement count, plus a `kmeans.moves` counter.
pub fn refine_observed(
    problem: &Problem,
    initial: &Partitioning,
    iterations: usize,
    recorder: &Recorder,
) -> Result<(Partitioning, usize)> {
    refine_observed_exec(problem, initial, iterations, recorder, &Executor::serial())
}

/// [`refine_observed`] with the assignment and centroid-update passes run
/// on `executor`. The nearest-centroid choice is per element (current
/// assignment read-only), and centroid sums merge per-chunk partials in
/// fixed chunk order, so refinement is identical at any worker count.
pub fn refine_observed_exec(
    problem: &Problem,
    initial: &Partitioning,
    iterations: usize,
    recorder: &Recorder,
    executor: &Executor,
) -> Result<(Partitioning, usize)> {
    if initial.len() != problem.len() {
        return Err(CoreError::LengthMismatch {
            what: "partitioning",
            expected: problem.len(),
            actual: initial.len(),
        });
    }
    if iterations == 0 {
        return Ok((initial.clone(), 0));
    }
    let features = feature_vectors(problem);
    let k = initial.num_partitions();
    let mut assignment: Vec<usize> = initial.assignment().to_vec();
    let mut centroids = compute_centroids(&features, initial);
    let mut ran = 0;
    let c_rounds = recorder.counter("kmeans.rounds");
    let c_moves = recorder.counter("kmeans.moves");

    for _ in 0..iterations {
        ran += 1;
        let mut round_span = recorder.span("heuristic.kmeans_round");
        round_span.arg("round", ran);
        // Nearest-centroid pass: each element's choice depends only on the
        // (read-only) centroids, so it maps per element; keeping the
        // current cluster on ties (strict `<` move rule) makes the result
        // scheduling-independent. Moves are applied serially afterwards.
        let best_of: Vec<usize> = executor.par_map_index(features.len(), |i| {
            let f = &features[i];
            let mut best = assignment[i];
            let mut best_d = dist2(f, &centroids[best]);
            for (g, c) in centroids.iter().enumerate() {
                let d = dist2(f, c);
                if d < best_d {
                    best_d = d;
                    best = g;
                }
            }
            best
        });
        let mut moves = 0usize;
        for (slot, best) in assignment.iter_mut().zip(best_of) {
            if best != *slot {
                *slot = best;
                moves += 1;
            }
        }
        round_span.arg("moves", moves);
        c_rounds.inc();
        c_moves.add(moves as u64);
        if moves == 0 {
            break;
        }
        // Recompute centroids; empty clusters keep their previous position
        // so they can recapture elements in a later iteration.
        let part = Partitioning::from_assignment(assignment.clone(), k)?;
        let fresh = compute_centroids_with_fallback(&features, &part, &centroids, executor);
        centroids = fresh;
    }
    Ok((Partitioning::from_assignment(assignment, k)?, ran))
}

fn compute_centroids(features: &[[f64; 3]], partitioning: &Partitioning) -> Vec<[f64; 3]> {
    compute_centroids_with_fallback(
        features,
        partitioning,
        &vec![[0.0; 3]; partitioning.num_partitions()],
        &Executor::serial(),
    )
}

/// Per-cluster feature sums and member counts, reduced chunk-by-chunk in
/// fixed order so centroid positions match the serial pass exactly.
fn compute_centroids_with_fallback(
    features: &[[f64; 3]],
    partitioning: &Partitioning,
    fallback: &[[f64; 3]],
    executor: &Executor,
) -> Vec<[f64; 3]> {
    let k = partitioning.num_partitions();
    let (sums, counts) = executor
        .par_chunks_reduce(
            features.len(),
            DEFAULT_CHUNK,
            |range| {
                let mut sums = vec![[0.0f64; 3]; k];
                let mut counts = vec![0usize; k];
                for i in range {
                    let g = partitioning.partition_of(i);
                    for d in 0..3 {
                        sums[g][d] += features[i][d];
                    }
                    counts[g] += 1;
                }
                (sums, counts)
            },
            |(mut sums, mut counts), (other_sums, other_counts)| {
                for g in 0..k {
                    for d in 0..3 {
                        sums[g][d] += other_sums[g][d];
                    }
                    counts[g] += other_counts[g];
                }
                (sums, counts)
            },
        )
        .unwrap_or_else(|| (vec![[0.0f64; 3]; k], vec![0usize; k]));
    (0..k)
        .map(|g| {
            if counts[g] == 0 {
                fallback[g]
            } else {
                let m = counts[g] as f64;
                [sums[g][0] / m, sums[g][1] / m, sums[g][2] / m]
            }
        })
        .collect()
}

#[inline]
fn dist2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionCriterion;

    fn clustered_problem() -> Problem {
        // Two natural clusters in (p, λ): four hot/slow and four cold/fast.
        Problem::builder()
            .change_rates(vec![1.0, 1.1, 0.9, 1.0, 10.0, 9.5, 10.5, 10.0])
            .access_probs(vec![0.2, 0.21, 0.19, 0.2, 0.05, 0.05, 0.05, 0.05])
            .bandwidth(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_iterations_is_identity() {
        let p = clustered_problem();
        let init = Partitioning::by_criterion(&p, PartitionCriterion::ChangeRate, 2, 1.0).unwrap();
        let (out, ran) = refine(&p, &init, 0).unwrap();
        assert_eq!(out, init);
        assert_eq!(ran, 0);
    }

    #[test]
    fn recovers_natural_clusters_from_bad_start() {
        let p = clustered_problem();
        // Deliberately bad start: interleaved assignment.
        let init = Partitioning::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let (out, _) = refine(&p, &init, 20).unwrap();
        // All hot/slow elements end up together, all cold/fast together.
        let g0 = out.partition_of(0);
        for i in 1..4 {
            assert_eq!(out.partition_of(i), g0, "hot cluster intact");
        }
        let g4 = out.partition_of(4);
        assert_ne!(g0, g4);
        for i in 5..8 {
            assert_eq!(out.partition_of(i), g4, "cold cluster intact");
        }
    }

    #[test]
    fn objective_non_increasing() {
        let p = clustered_problem();
        let feats = feature_vectors(&p);
        let init = Partitioning::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let mut prev = within_cluster_ss(&feats, &init);
        let mut current = init;
        for _ in 0..5 {
            let (next, ran) = refine(&p, &current, 1).unwrap();
            let ss = within_cluster_ss(&feats, &next);
            assert!(ss <= prev + 1e-15, "k-means objective must not increase");
            prev = ss;
            current = next;
            if ran == 0 {
                break;
            }
        }
    }

    #[test]
    fn early_exit_when_converged() {
        let p = clustered_problem();
        let init = Partitioning::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let (stable, _) = refine(&p, &init, 50).unwrap();
        // Re-running from a converged state stops after one no-move pass.
        let (again, ran) = refine(&p, &stable, 50).unwrap();
        assert_eq!(again, stable);
        assert_eq!(ran, 1, "single pass detects convergence");
    }

    #[test]
    fn feature_vectors_normalized() {
        let p = clustered_problem();
        let feats = feature_vectors(&p);
        let lam_sum: f64 = feats.iter().map(|f| f[1]).sum();
        assert!((lam_sum - 1.0).abs() < 1e-9);
        // Uniform sizes: third coordinate suppressed.
        assert!(feats.iter().all(|f| f[2] == 0.0));
    }

    #[test]
    fn feature_vectors_include_sizes_when_variable() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 3.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let feats = feature_vectors(&p);
        assert!((feats[0][2] - 0.25).abs() < 1e-12);
        assert!((feats[1][2] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cluster_count_preserved() {
        let p = clustered_problem();
        let init = Partitioning::by_criterion(&p, PartitionCriterion::AccessProb, 3, 1.0).unwrap();
        let (out, _) = refine(&p, &init, 10).unwrap();
        assert_eq!(out.num_partitions(), 3);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn rejects_mismatched_partitioning() {
        let p = clustered_problem();
        let init = Partitioning::single(3);
        assert!(refine(&p, &init, 1).is_err());
    }

    #[test]
    fn observed_refine_records_rounds_and_movement() {
        let p = clustered_problem();
        let init = Partitioning::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let rec = Recorder::enabled();
        let (observed, ran) = refine_observed(&p, &init, 20, &rec).unwrap();
        let (plain, _) = refine(&p, &init, 20).unwrap();
        assert_eq!(observed, plain, "observability must not change clustering");
        assert_eq!(rec.counter_value("kmeans.rounds"), Some(ran as u64));
        assert!(rec.counter_value("kmeans.moves").unwrap() > 0);
        let trace = rec.chrome_trace_json().unwrap();
        assert!(trace.contains("heuristic.kmeans_round"));
        assert!(trace.contains("\"moves\""));
    }
}
