//! Sorting-based partitioning of the element set (paper §3.1, §5.2).
//!
//! "All elements are sorted. Then N/k successive elements are assigned to a
//! partition." The quality of the downstream approximation depends on the
//! sorting criterion; the paper defines four for the core problem and two
//! more once object sizes enter:
//!
//! | Criterion | Sort key | Paper name |
//! |---|---|---|
//! | [`PartitionCriterion::AccessProb`] | `pᵢ` | P-Partitioning |
//! | [`PartitionCriterion::ChangeRate`] | `λᵢ` | λ-Partitioning |
//! | [`PartitionCriterion::AccessOverChange`] | `pᵢ/λᵢ` | P/λ-Partitioning |
//! | [`PartitionCriterion::PerceivedFreshness`] | `pᵢ·F̄(λᵢ, f₀)` | PF-Partitioning |
//! | [`PartitionCriterion::PerceivedFreshnessPerSize`] | `pᵢ·F̄(λᵢ, f₀/sᵢ)` | PF/s-Partitioning (§5.2) |
//! | [`PartitionCriterion::Size`] | `sᵢ` | Size-Partitioning (§5.3) |
//!
//! The reference frequency `f₀` defaults to 1.0; the paper notes "the exact
//! synchronization frequency used in our calculations is not important".

use serde::{Deserialize, Serialize};

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::Executor;
use freshen_core::freshness::steady_state_freshness;
use freshen_core::problem::Problem;

/// Sorting criterion for contiguous-run partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionCriterion {
    /// Sort by access probability (`P`-Partitioning).
    AccessProb,
    /// Sort by change frequency (`λ`-Partitioning) — "included for
    /// completeness"; the paper shows it trails the others.
    ChangeRate,
    /// Sort by `p/λ` (`P/λ`-Partitioning): bandwidth should rise with `p`
    /// and fall with `λ`, so the ratio groups similarly-deserving elements.
    AccessOverChange,
    /// Sort by perceived-freshness contribution at a fixed reference
    /// frequency (`PF`-Partitioning) — the paper's winner.
    PerceivedFreshness,
    /// Size-aware `PF`-Partitioning: the reference bandwidth is divided by
    /// the object's size before computing the score (§5.2).
    PerceivedFreshnessPerSize,
    /// Sort by object size (§5.3; like `λ`-Partitioning, a completeness
    /// baseline that ignores the `p`/`λ` interaction).
    Size,
}

impl PartitionCriterion {
    /// All criteria applicable to fixed-size (core) problems.
    pub const CORE: [PartitionCriterion; 4] = [
        PartitionCriterion::AccessProb,
        PartitionCriterion::ChangeRate,
        PartitionCriterion::AccessOverChange,
        PartitionCriterion::PerceivedFreshness,
    ];

    /// Short display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionCriterion::AccessProb => "P_PARTITIONING",
            PartitionCriterion::ChangeRate => "LAMBDA_PARTITIONING",
            PartitionCriterion::AccessOverChange => "P_OVER_LAMBDA_PARTITIONING",
            PartitionCriterion::PerceivedFreshness => "PF_PARTITIONING",
            PartitionCriterion::PerceivedFreshnessPerSize => "PF_SIZE_PARTITIONING",
            PartitionCriterion::Size => "SIZE_PARTITIONING",
        }
    }

    /// The sort key for element `i` of `problem`.
    pub fn key(&self, problem: &Problem, i: usize, reference_frequency: f64) -> f64 {
        let p = problem.access_probs()[i];
        let lam = problem.change_rates()[i];
        let s = problem.sizes()[i];
        match self {
            PartitionCriterion::AccessProb => p,
            PartitionCriterion::ChangeRate => lam,
            PartitionCriterion::AccessOverChange => p / lam.max(1e-300),
            PartitionCriterion::PerceivedFreshness => {
                p * steady_state_freshness(lam, reference_frequency)
            }
            PartitionCriterion::PerceivedFreshnessPerSize => {
                p * steady_state_freshness(lam, reference_frequency / s)
            }
            PartitionCriterion::Size => s,
        }
    }
}

/// A partitioning of the element set into `k` groups.
///
/// Stored as an assignment vector (`element → partition id`); groups may be
/// non-contiguous after k-Means refinement and may become empty (empty
/// groups are skipped by the reduction step).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    assignment: Vec<usize>,
    k: usize,
}

impl Partitioning {
    /// Partition by sorting on `criterion` and cutting into `k` contiguous
    /// runs of (near-)equal length. `k` is clamped to `N`.
    ///
    /// Elements are sorted *descending* by key; ties keep index order so
    /// the result is deterministic.
    pub fn by_criterion(
        problem: &Problem,
        criterion: PartitionCriterion,
        k: usize,
        reference_frequency: f64,
    ) -> Result<Partitioning> {
        Self::by_criterion_exec(
            problem,
            criterion,
            k,
            reference_frequency,
            &Executor::serial(),
        )
    }

    /// [`by_criterion`](Self::by_criterion) with the sort keys computed in
    /// parallel on `executor`. Keys are evaluated per element, so the
    /// partitioning is identical at any worker count.
    pub fn by_criterion_exec(
        problem: &Problem,
        criterion: PartitionCriterion,
        k: usize,
        reference_frequency: f64,
        executor: &Executor,
    ) -> Result<Partitioning> {
        if k == 0 {
            return Err(CoreError::InvalidConfig(
                "need at least one partition".into(),
            ));
        }
        if !reference_frequency.is_finite() || reference_frequency <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "reference_frequency",
                index: None,
                value: reference_frequency,
            });
        }
        let n = problem.len();
        let k = k.min(n);
        let mut order: Vec<usize> = (0..n).collect();
        let keys: Vec<f64> =
            executor.par_map_index(n, |i| criterion.key(problem, i, reference_frequency));
        order.sort_by(|&a, &b| {
            keys[b]
                .partial_cmp(&keys[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut assignment = vec![0usize; n];
        // ceil(n/k)-sized runs: the last partitions may be smaller, which
        // the paper notes is negligible for n ≫ k.
        let run = n.div_ceil(k);
        for (pos, &elem) in order.iter().enumerate() {
            assignment[elem] = (pos / run).min(k - 1);
        }
        Ok(Partitioning { assignment, k })
    }

    /// Build directly from an assignment vector (used by k-Means).
    ///
    /// Returns an error when any id is `≥ k` or the vector is empty.
    pub fn from_assignment(assignment: Vec<usize>, k: usize) -> Result<Partitioning> {
        if assignment.is_empty() {
            return Err(CoreError::Empty);
        }
        if k == 0 {
            return Err(CoreError::InvalidConfig(
                "need at least one partition".into(),
            ));
        }
        if let Some((i, &g)) = assignment.iter().enumerate().find(|(_, &g)| g >= k) {
            return Err(CoreError::InvalidValue {
                what: "partition assignment",
                index: Some(i),
                value: g as f64,
            });
        }
        Ok(Partitioning { assignment, k })
    }

    /// A single partition holding everything (k = 1).
    pub fn single(n: usize) -> Partitioning {
        Partitioning {
            assignment: vec![0; n],
            k: 1,
        }
    }

    /// Number of partitions (including possibly empty ones).
    pub fn num_partitions(&self) -> usize {
        self.k
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when covering zero elements (unreachable via constructors).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The partition id of element `i`.
    pub fn partition_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Member lists per partition (index = partition id).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut m = vec![Vec::new(); self.k];
        for (i, &g) in self.assignment.iter().enumerate() {
            m[g].push(i);
        }
        m
    }

    /// Member counts per partition.
    pub fn counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.k];
        for &g in &self.assignment {
            c[g] += 1;
        }
        c
    }

    /// Number of non-empty partitions.
    pub fn non_empty(&self) -> usize {
        self.counts().iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Problem {
        Problem::builder()
            .change_rates(vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5])
            .access_probs(vec![0.05, 0.05, 0.1, 0.2, 0.25, 0.35])
            .bandwidth(3.0)
            .build()
            .unwrap()
    }

    #[test]
    fn p_partitioning_groups_by_interest() {
        let p = toy();
        let part = Partitioning::by_criterion(&p, PartitionCriterion::AccessProb, 3, 1.0).unwrap();
        // Descending p: elements 5,4,3 | 2,0,1 → partition of hottest is 0.
        assert_eq!(part.partition_of(5), 0);
        assert_eq!(part.partition_of(4), 0);
        assert_eq!(part.partition_of(0), 2);
        assert_eq!(part.counts(), vec![2, 2, 2]);
    }

    #[test]
    fn lambda_partitioning_groups_by_change() {
        let p = toy();
        let part = Partitioning::by_criterion(&p, PartitionCriterion::ChangeRate, 2, 1.0).unwrap();
        // Descending λ: 0,1,2 | 3,4,5.
        assert_eq!(part.partition_of(0), 0);
        assert_eq!(part.partition_of(2), 0);
        assert_eq!(part.partition_of(3), 1);
        assert_eq!(part.partition_of(5), 1);
    }

    #[test]
    fn ratio_partitioning_orders_by_p_over_lambda() {
        let p = toy();
        let part =
            Partitioning::by_criterion(&p, PartitionCriterion::AccessOverChange, 6, 1.0).unwrap();
        // p/λ strictly increases with index here, so descending order is
        // reversed index order: element 5 first.
        assert_eq!(part.partition_of(5), 0);
        assert_eq!(part.partition_of(0), 5);
    }

    #[test]
    fn pf_key_combines_interest_and_volatility() {
        let p = toy();
        let c = PartitionCriterion::PerceivedFreshness;
        // Same p, different λ: slower changer scores higher.
        let problem = Problem::builder()
            .change_rates(vec![0.5, 8.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(1.0)
            .build()
            .unwrap();
        assert!(c.key(&problem, 0, 1.0) > c.key(&problem, 1, 1.0));
        // Same λ, different p: hotter scores higher.
        assert!(c.key(&p, 5, 1.0) > c.key(&p, 4, 1.0) || p.access_probs()[5] < p.access_probs()[4]);
    }

    #[test]
    fn pf_size_key_penalizes_large_objects() {
        let problem = Problem::builder()
            .change_rates(vec![2.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 8.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let c = PartitionCriterion::PerceivedFreshnessPerSize;
        assert!(
            c.key(&problem, 0, 1.0) > c.key(&problem, 1, 1.0),
            "a big object achieves less freshness per reference bandwidth"
        );
    }

    #[test]
    fn k_clamped_to_n() {
        let p = toy();
        let part =
            Partitioning::by_criterion(&p, PartitionCriterion::AccessProb, 100, 1.0).unwrap();
        assert_eq!(part.num_partitions(), 6);
        assert!(part.counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn uneven_division_puts_remainder_last() {
        let p = toy();
        let part = Partitioning::by_criterion(&p, PartitionCriterion::AccessProb, 4, 1.0).unwrap();
        // 6 elements into 4 partitions with ceil(6/4)=2 runs: 2,2,2,0.
        let counts = part.counts();
        assert_eq!(counts.iter().sum::<usize>(), 6);
        assert_eq!(part.num_partitions(), 4);
        assert!(part.non_empty() <= 4);
    }

    #[test]
    fn single_partition_covers_everything() {
        let part = Partitioning::single(5);
        assert_eq!(part.num_partitions(), 1);
        assert_eq!(part.counts(), vec![5]);
    }

    #[test]
    fn members_inverse_of_assignment() {
        let p = toy();
        let part = Partitioning::by_criterion(&p, PartitionCriterion::ChangeRate, 3, 1.0).unwrap();
        let members = part.members();
        for (g, group) in members.iter().enumerate() {
            for &i in group {
                assert_eq!(part.partition_of(i), g);
            }
        }
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn from_assignment_validates() {
        assert!(Partitioning::from_assignment(vec![], 1).is_err());
        assert!(Partitioning::from_assignment(vec![0, 2], 2).is_err());
        assert!(Partitioning::from_assignment(vec![0, 1], 0).is_err());
        let p = Partitioning::from_assignment(vec![0, 1, 1], 3).unwrap();
        assert_eq!(p.non_empty(), 2);
    }

    #[test]
    fn zero_partitions_rejected() {
        let p = toy();
        assert!(Partitioning::by_criterion(&p, PartitionCriterion::AccessProb, 0, 1.0).is_err());
    }

    #[test]
    fn bad_reference_frequency_rejected() {
        let p = toy();
        for f0 in [0.0, -1.0, f64::NAN] {
            assert!(
                Partitioning::by_criterion(&p, PartitionCriterion::PerceivedFreshness, 2, f0)
                    .is_err()
            );
        }
    }

    #[test]
    fn deterministic_given_ties() {
        let problem = Problem::builder()
            .change_rates(vec![1.0; 4])
            .access_probs(vec![0.25; 4])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let a =
            Partitioning::by_criterion(&problem, PartitionCriterion::AccessProb, 2, 1.0).unwrap();
        let b =
            Partitioning::by_criterion(&problem, PartitionCriterion::AccessProb, 2, 1.0).unwrap();
        assert_eq!(a, b);
        // Ties broken by index: first two elements in partition 0.
        assert_eq!(a.assignment(), &[0, 0, 1, 1]);
    }
}
