//! Budget-division heuristics across the tiers of a relay
//! [`Topology`] — the cheap baselines the tiered solver's shared-price
//! split is benchmarked against.
//!
//! Each rule turns one total bandwidth budget into a per-node budget
//! vector (source pinned at 0) in a single pass over the problem, with
//! no solves. [`split_budget`] guarantees the result sums to the total
//! (compensated) and gives every tier a positive share, so the vector
//! is always accepted by [`Topology::with_budgets`] and, by
//! construction, can never overdraw: the budgets *are* the constraint
//! the downstream solve runs against.

use freshen_core::error::{CoreError, Result};
use freshen_core::numeric::NeumaierSum;
use freshen_core::problem::Problem;
use freshen_core::topology::Topology;

/// The division rule for [`split_budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierSplit {
    /// Proportional to the catalog bytes a tier serves: `Σ sᵢ` over the
    /// elements its incoming links carry. The "size of the job" rule —
    /// blind to interest and change rates.
    Proportional,
    /// Proportional to the user interest flowing through the tier:
    /// `Σ pᵢ` over carried elements. Tiers serving hot content get
    /// more.
    AccessWeighted,
    /// Proportional to the tier's aggregate zero-frequency marginal
    /// value per unit of bandwidth, `Σ pᵢ/(λᵢ·sᵢ)` over carried
    /// elements with `λᵢ > 0` — the water-filling starvation bound
    /// summed over the tier, so tiers whose content is cheap to keep
    /// fresh (slow-changing, hot, small) are funded first.
    MarginalValue,
}

impl TierSplit {
    /// All rules, for sweeps.
    pub const ALL: [TierSplit; 3] = [
        TierSplit::Proportional,
        TierSplit::AccessWeighted,
        TierSplit::MarginalValue,
    ];

    /// Stable identifier used in bench reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            TierSplit::Proportional => "proportional",
            TierSplit::AccessWeighted => "access_weighted",
            TierSplit::MarginalValue => "marginal_value",
        }
    }
}

/// Divide `total_budget` across the non-source tiers of `topology`
/// by `rule`. Returns one budget per node (index 0, the source, is 0);
/// entries are positive, and their compensated sum equals
/// `total_budget` to the last rescaling.
pub fn split_budget(
    topology: &Topology,
    problem: &Problem,
    rule: TierSplit,
    total_budget: f64,
) -> Result<Vec<f64>> {
    if !total_budget.is_finite() || total_budget <= 0.0 {
        return Err(CoreError::InvalidValue {
            what: "tier split total budget",
            index: None,
            value: total_budget,
        });
    }
    if topology.n_elements() != problem.len() {
        return Err(CoreError::LengthMismatch {
            what: "tier split elements",
            expected: topology.n_elements(),
            actual: problem.len(),
        });
    }
    let p = problem.access_probs();
    let lam = problem.change_rates();
    let s = problem.sizes();
    let node_count = topology.node_count();

    let mut scores = vec![0.0f64; node_count];
    for (node, score) in scores.iter_mut().enumerate().skip(1) {
        let mut acc = NeumaierSum::new();
        for &l in topology.incoming(node) {
            let link = &topology.links()[l];
            let mut add = |i: usize| {
                acc.add(match rule {
                    TierSplit::Proportional => s[i],
                    TierSplit::AccessWeighted => p[i],
                    TierSplit::MarginalValue => {
                        if lam[i] > 0.0 {
                            p[i] / (lam[i] * s[i])
                        } else {
                            0.0
                        }
                    }
                });
            };
            match &link.elements {
                None => (0..problem.len()).for_each(&mut add),
                Some(subset) => subset.iter().copied().for_each(&mut add),
            }
        }
        *score = acc.total();
    }

    // A floor keeps degenerate tiers (zero interest, all-static
    // content) funded at a sliver instead of tripping the positive-
    // budget invariant; then one multiplicative rescale pins the sum.
    let tiers = (node_count - 1) as f64;
    let floor = 1e-6 / tiers;
    let score_sum: f64 = scores.iter().sum();
    let mut budgets = vec![0.0f64; node_count];
    if score_sum <= 0.0 {
        for b in budgets.iter_mut().skip(1) {
            *b = total_budget / tiers;
        }
        return Ok(budgets);
    }
    for (b, &score) in budgets.iter_mut().zip(&scores).skip(1) {
        *b = (score / score_sum).max(floor);
    }
    let share_sum: f64 = budgets.iter().sum();
    for b in budgets.iter_mut().skip(1) {
        *b *= total_budget / share_sum;
    }
    Ok(budgets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Topology {
        Topology::builder()
            .source("s")
            .tier("relay", 1.0)
            .tier("edge", 1.0)
            .link("s", "relay")
            .link_subset("relay", "edge", (0..n / 2).collect())
            .build(n)
            .unwrap()
    }

    fn problem(n: usize) -> Problem {
        Problem::builder()
            .change_rates((0..n).map(|i| 0.5 + i as f64).collect())
            .access_weights((0..n).map(|i| 1.0 / (i + 1) as f64).collect())
            .sizes((0..n).map(|i| 1.0 + (i % 3) as f64).collect())
            .bandwidth(10.0)
            .build()
            .unwrap()
    }

    #[test]
    fn every_rule_sums_to_total_and_stays_positive() {
        let topo = chain(8);
        let problem = problem(8);
        for rule in TierSplit::ALL {
            let budgets = split_budget(&topo, &problem, rule, 100.0).unwrap();
            assert_eq!(budgets[0], 0.0, "{}", rule.name());
            let sum: f64 = budgets.iter().skip(1).sum();
            assert!((sum - 100.0).abs() < 1e-9, "{}: {sum}", rule.name());
            assert!(budgets.iter().skip(1).all(|&b| b > 0.0), "{}", rule.name());
            // The vector must be directly usable as topology budgets.
            assert!(topo.with_budgets(&budgets).is_ok(), "{}", rule.name());
        }
    }

    #[test]
    fn rules_rank_tiers_differently() {
        // The edge carries only the hot half of the catalog, so the
        // access-weighted rule funds it more generously than the
        // byte-proportional rule does.
        let topo = chain(8);
        let problem = problem(8);
        let by_size = split_budget(&topo, &problem, TierSplit::Proportional, 100.0).unwrap();
        let by_access = split_budget(&topo, &problem, TierSplit::AccessWeighted, 100.0).unwrap();
        assert!(by_access[2] > by_size[2]);
    }

    #[test]
    fn degenerate_scores_fall_back_to_even_split() {
        let topo = chain(4);
        // All-static catalog: marginal-value scores are all zero.
        let problem = Problem::builder()
            .change_rates(vec![0.0; 4])
            .access_weights(vec![1.0; 4])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let budgets = split_budget(&topo, &problem, TierSplit::MarginalValue, 60.0).unwrap();
        assert_eq!(budgets, vec![0.0, 30.0, 30.0]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let topo = chain(4);
        let problem = problem(4);
        assert!(split_budget(&topo, &problem, TierSplit::Proportional, 0.0).is_err());
        assert!(split_budget(&topo, &problem, TierSplit::Proportional, f64::NAN).is_err());
        let wrong = problem(5);
        assert!(split_budget(&topo, &wrong, TierSplit::Proportional, 1.0).is_err());
    }
}
