//! # freshen-heuristics
//!
//! The paper's scalable approximation pipeline (§3–§5). Solving the Core
//! Problem exactly over millions of elements is impractical when the
//! schedule must be recomputed as profiles and change rates drift, so the
//! heuristics shrink the optimization:
//!
//! 1. **Partition** ([`partition`]): sort the elements by a criterion —
//!    access probability `P`, change rate `λ`, the ratio `P/λ`, the
//!    perceived-freshness score `PF` at a reference frequency, or its
//!    size-aware variant `PF/s` — and cut the order into `k` contiguous
//!    runs.
//! 2. **Refine** ([`kmeans`], optional): improve the partitions with a few
//!    iterations of k-Means clustering in normalized `(p, λ)` (or
//!    `(p, λ, s)`) space — the paper's §4.1.3 "additional improvement",
//!    which turned out to be its most surprising win.
//! 3. **Reduce** ([`reduce`]): replace each partition by a representative
//!    element (mean `p`, mean `λ`, mean `s`) weighted by its multiplicity,
//!    producing a `k`-element problem (the paper's *Transformed Problem*).
//! 4. **Solve** the reduced problem exactly with
//!    `freshen_solver::LagrangeSolver` (`k ≪ N`, so this is cheap).
//! 5. **Allocate** ([`allocate`]): spread each partition's bandwidth back
//!    over its members — equal *frequency* (FFA) or equal *bandwidth*
//!    (FBA); with variable object sizes FBA dominates (§5.3, Figure 11).
//!
//! [`pipeline::HeuristicScheduler`] wires the five steps together.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod allocate;
pub mod kmeans;
pub mod multistage;
pub mod partition;
pub mod pipeline;
pub mod reduce;
pub mod tiers;

pub use allocate::AllocationPolicy;
pub use partition::{PartitionCriterion, Partitioning};
pub use pipeline::{HeuristicConfig, HeuristicScheduler, HeuristicSolution};
pub use tiers::{split_budget, TierSplit};
