//! The multi-stage alternative the paper considered and rejected (§3.2).
//!
//! Instead of collapsing each partition to one representative, transform
//! the original problem "into a number of smaller problems, in which only
//! a small number of elements participate", and solve each exactly. The
//! paper's verdict: "it does not make sense for large problems because it
//! is still very costly to run … if it is tolerable to solve the
//! optimization problem over 1000 elements, you would have to solve 1000
//! such problems for a database with 1,000,000 elements."
//!
//! We implement it as a two-level scheme so the comparison is fair:
//!
//! 1. partition and reduce exactly as the representative pipeline does,
//!    which fixes each partition's *bandwidth share*;
//! 2. then solve each partition's member set **exactly** (another
//!    Lagrange solve per partition) instead of spreading the share by
//!    FFA/FBA.
//!
//! Quality is therefore at least that of the representative pipeline on
//! the same partitions (exact within-partition allocation dominates a
//! uniform spread), at the cost of `k` extra solver runs over `N/k`
//! elements each — the cost structure the paper objects to. The
//! `solver_scaling` bench and [`pipeline`](crate::pipeline) tests quantify
//! both sides.

use freshen_core::error::Result;
use freshen_core::problem::{Problem, Solution};
use freshen_solver::LagrangeSolver;

use crate::partition::{PartitionCriterion, Partitioning};
use crate::reduce::ReducedProblem;

/// Outcome of the multi-stage scheme.
#[derive(Debug, Clone)]
pub struct MultiStageSolution {
    /// The expanded per-element schedule and its metrics.
    pub solution: Solution,
    /// How many sub-problems were solved exactly (stage-2 solver runs).
    pub subproblems_solved: usize,
}

/// Run the two-level multi-stage scheme.
///
/// `criterion`/`k`/`reference_frequency` configure stage 1 exactly as in
/// the representative pipeline. Partitions whose aggregate interest is
/// zero receive no bandwidth (and no stage-2 solve).
pub fn solve_multistage(
    problem: &Problem,
    criterion: PartitionCriterion,
    k: usize,
    reference_frequency: f64,
) -> Result<MultiStageSolution> {
    let partitioning = Partitioning::by_criterion(problem, criterion, k, reference_frequency)?;
    let reduced = ReducedProblem::build(problem, &partitioning)?;
    let solver = LagrangeSolver::default();
    let stage1 = solver.solve(reduced.problem())?;

    // Stage 2: each active partition's bandwidth share is Mⱼ·s̄ⱼ·f̄ⱼ;
    // solve the member set exactly under that share.
    let members = partitioning.members();
    let mut freqs = vec![0.0; problem.len()];
    let mut subproblems = 0usize;
    for (idx, &g) in reduced.active_partitions().iter().enumerate() {
        let share = stage1.frequencies[idx] * reduced.problem().sizes()[idx];
        if share <= 0.0 {
            continue;
        }
        let group = &members[g];
        let sub = problem.restrict_to(group, share)?;
        let sub_sol = solver.solve(&sub)?;
        subproblems += 1;
        for (local, &i) in group.iter().enumerate() {
            freqs[i] = sub_sol.frequencies[local];
        }
    }

    let mut solution = Solution::evaluate(problem, freqs);
    solution.multiplier = stage1.multiplier;
    Ok(MultiStageSolution {
        solution,
        subproblems_solved: subproblems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::AllocationPolicy;
    use crate::pipeline::{HeuristicConfig, HeuristicScheduler};
    use freshen_solver::solve_perceived_freshness;
    use freshen_workload::scenario::{Alignment, Scenario};

    fn table2_problem() -> Problem {
        Scenario::table2(0.8, Alignment::ShuffledChange, 42)
            .problem()
            .unwrap()
    }

    #[test]
    fn multistage_is_feasible_and_budget_tight() {
        let p = table2_problem();
        let ms = solve_multistage(&p, PartitionCriterion::PerceivedFreshness, 20, 1.0).unwrap();
        assert!(p.is_feasible(&ms.solution.frequencies, 1e-6));
        assert!(
            (ms.solution.bandwidth_used - p.bandwidth()).abs() < p.bandwidth() * 1e-5,
            "budget tight: used {}",
            ms.solution.bandwidth_used
        );
        assert!(ms.subproblems_solved > 0 && ms.subproblems_solved <= 20);
    }

    #[test]
    fn multistage_beats_representative_pipeline_on_same_partitions() {
        // Exact within-partition allocation dominates uniform spreading —
        // the quality side of the paper's trade-off.
        let p = table2_problem();
        let k = 10;
        let ms = solve_multistage(&p, PartitionCriterion::PerceivedFreshness, k, 1.0).unwrap();
        let rep = HeuristicScheduler::new(HeuristicConfig {
            criterion: PartitionCriterion::PerceivedFreshness,
            num_partitions: k,
            kmeans_iterations: 0,
            allocation: AllocationPolicy::FixedBandwidth,
            reference_frequency: 1.0,
        })
        .unwrap()
        .solve(&p)
        .unwrap();
        assert!(
            ms.solution.perceived_freshness >= rep.solution.perceived_freshness - 1e-9,
            "multistage {} must dominate representative {} at equal k",
            ms.solution.perceived_freshness,
            rep.solution.perceived_freshness
        );
    }

    #[test]
    fn multistage_bounded_by_global_optimum() {
        let p = table2_problem();
        let opt = solve_perceived_freshness(&p).unwrap().perceived_freshness;
        for k in [1, 5, 50] {
            let ms = solve_multistage(&p, PartitionCriterion::PerceivedFreshness, k, 1.0).unwrap();
            assert!(
                ms.solution.perceived_freshness <= opt + 1e-7,
                "k={k}: multistage cannot beat the global optimum"
            );
        }
    }

    #[test]
    fn single_partition_multistage_is_globally_optimal() {
        // One block covering everything ⇒ stage 2 is the exact solve.
        let p = table2_problem();
        let opt = solve_perceived_freshness(&p).unwrap().perceived_freshness;
        let ms = solve_multistage(&p, PartitionCriterion::PerceivedFreshness, 1, 1.0).unwrap();
        assert!((ms.solution.perceived_freshness - opt).abs() < 1e-6);
        assert_eq!(ms.subproblems_solved, 1);
    }

    #[test]
    fn multistage_handles_zero_interest_partitions() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0])
            .access_probs(vec![0.5, 0.5, 0.0, 0.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let ms = solve_multistage(&p, PartitionCriterion::AccessProb, 2, 1.0).unwrap();
        assert_eq!(ms.solution.frequencies[2], 0.0);
        assert_eq!(ms.solution.frequencies[3], 0.0);
        assert!(p.is_feasible(&ms.solution.frequencies, 1e-6));
    }
}
