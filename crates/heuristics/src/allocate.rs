//! Spreading a partition's bandwidth over its members (paper §5.3).
//!
//! After the reduced problem is solved, partition `j` holds a
//! representative frequency `f̄ⱼ` (and mean size `s̄ⱼ`). Two policies turn
//! that into per-member frequencies:
//!
//! * **FFA — Fixed (refresh) Frequency Allocation**: every member gets
//!   `fᵢ = f̄ⱼ`. Correct when all objects share one size; with variable
//!   sizes it hands large objects disproportionate *bandwidth*.
//! * **FBA — Fixed Bandwidth Allocation**: every member gets the same
//!   bandwidth `f̄ⱼ·s̄ⱼ`, i.e. frequency `fᵢ = f̄ⱼ·s̄ⱼ/sᵢ` — "smaller
//!   objects will get higher number of refreshes than larger objects
//!   although they are in the same partition". The paper finds FBA always
//!   wins once sizes vary (Figure 11).
//!
//! Both policies consume exactly the partition's share `Mⱼ·s̄ⱼ·f̄ⱼ` of the
//! budget, so the expanded allocation is feasible by construction.

use serde::{Deserialize, Serialize};

use freshen_core::exec::Executor;
use freshen_core::problem::Problem;

use crate::partition::Partitioning;
use crate::reduce::ReducedProblem;

/// Intra-partition bandwidth-spreading policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Every member refreshed at the representative frequency (FFA).
    FixedFrequency,
    /// Every member granted the representative *bandwidth* (FBA).
    FixedBandwidth,
}

impl AllocationPolicy {
    /// Display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            AllocationPolicy::FixedFrequency => "FIXED_FREQUENCY (FFA)",
            AllocationPolicy::FixedBandwidth => "FIXED_BANDWIDTH (FBA)",
        }
    }

    /// Expand representative frequencies to a full allocation.
    ///
    /// `rep_freqs` must align with `reduced.active_partitions()`. Members
    /// of dropped (empty or zero-interest) partitions receive 0.
    pub fn expand(
        &self,
        problem: &Problem,
        partitioning: &Partitioning,
        reduced: &ReducedProblem,
        rep_freqs: &[f64],
    ) -> Vec<f64> {
        self.expand_exec(
            problem,
            partitioning,
            reduced,
            rep_freqs,
            &Executor::serial(),
        )
    }

    /// [`expand`](Self::expand) with the per-member spread computed in
    /// parallel on `executor`. Each member's frequency depends only on its
    /// own partition lookup, so the expansion is identical at any worker
    /// count.
    pub fn expand_exec(
        &self,
        problem: &Problem,
        partitioning: &Partitioning,
        reduced: &ReducedProblem,
        rep_freqs: &[f64],
        executor: &Executor,
    ) -> Vec<f64> {
        let lookup = reduced.representative_lookup(rep_freqs, partitioning.num_partitions());
        executor.par_map_index(problem.len(), |i| {
            let g = partitioning.partition_of(i);
            match lookup[g] {
                Some((f_rep, s_mean)) => match self {
                    AllocationPolicy::FixedFrequency => f_rep,
                    AllocationPolicy::FixedBandwidth => f_rep * s_mean / problem.sizes()[i],
                },
                None => 0.0,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sized_problem() -> Problem {
        Problem::builder()
            .change_rates(vec![2.0, 2.0, 1.0, 1.0])
            .access_probs(vec![0.25; 4])
            .sizes(vec![1.0, 3.0, 2.0, 2.0])
            .bandwidth(8.0)
            .build()
            .unwrap()
    }

    fn setup() -> (Problem, Partitioning, ReducedProblem) {
        let p = sized_problem();
        let part = Partitioning::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        (p, part, red)
    }

    #[test]
    fn ffa_gives_equal_frequencies() {
        let (p, part, red) = setup();
        let freqs = AllocationPolicy::FixedFrequency.expand(&p, &part, &red, &[1.5, 0.5]);
        assert_eq!(freqs, vec![1.5, 1.5, 0.5, 0.5]);
    }

    #[test]
    fn fba_gives_equal_bandwidth() {
        let (p, part, red) = setup();
        // Partition 0: s̄ = 2 ⇒ member bandwidth = f̄·s̄ = 3 each.
        let freqs = AllocationPolicy::FixedBandwidth.expand(&p, &part, &red, &[1.5, 0.5]);
        assert!((freqs[0] - 3.0).abs() < 1e-12, "size-1 member: f = 3/1");
        assert!((freqs[1] - 1.0).abs() < 1e-12, "size-3 member: f = 3/3");
        // Per-member bandwidth equal within the partition.
        assert!((freqs[0] * 1.0 - freqs[1] * 3.0).abs() < 1e-12);
    }

    #[test]
    fn both_policies_spend_the_same_partition_budget() {
        let (p, part, red) = setup();
        let reps = [1.5, 0.5];
        for policy in [
            AllocationPolicy::FixedFrequency,
            AllocationPolicy::FixedBandwidth,
        ] {
            let freqs = policy.expand(&p, &part, &red, &reps);
            let used = p.bandwidth_used(&freqs);
            // Partition budgets: M·s̄·f̄ = 2·2·1.5 + 2·2·0.5 = 8.
            assert!((used - 8.0).abs() < 1e-9, "{policy:?} used {used}");
        }
    }

    #[test]
    fn identical_policies_on_uniform_sizes() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0])
            .access_probs(vec![0.25; 4])
            .bandwidth(4.0)
            .build()
            .unwrap();
        let part = Partitioning::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        let a = AllocationPolicy::FixedFrequency.expand(&p, &part, &red, &[1.0, 1.0]);
        let b = AllocationPolicy::FixedBandwidth.expand(&p, &part, &red, &[1.0, 1.0]);
        assert_eq!(a, b, "FFA ≡ FBA when all sizes are 1");
    }

    #[test]
    fn dropped_partitions_get_zero() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0, 1.0])
            .access_probs(vec![0.5, 0.5, 0.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let part = Partitioning::from_assignment(vec![0, 0, 1], 2).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        // Only partition 0 is active; rep vector has one entry.
        let freqs = AllocationPolicy::FixedFrequency.expand(&p, &part, &red, &[1.0]);
        assert_eq!(freqs, vec![1.0, 1.0, 0.0]);
    }
}
