//! The end-to-end heuristic scheduler: partition → (k-means) → reduce →
//! solve → allocate.
//!
//! This is the production entry point for large mirrors. Configure the
//! partition criterion (the paper's winner is PF-Partitioning), the number
//! of partitions, an optional k-Means refinement budget, and the
//! intra-partition allocation policy; [`HeuristicScheduler::solve`] returns
//! a full per-element schedule plus the bookkeeping the experiments plot.
//!
//! Quality/scale intuition from the paper:
//! * more partitions → closer to optimal, but the reduced solve grows;
//! * a few k-Means iterations on *few* partitions beats many raw
//!   partitions per unit of computation (Figures 8–9);
//! * with variable sizes, use [`AllocationPolicy::FixedBandwidth`]
//!   (Figure 11) and [`PartitionCriterion::PerceivedFreshnessPerSize`].

use serde::{Deserialize, Serialize};

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::Executor;
use freshen_core::problem::{Problem, Solution};
use freshen_obs::Recorder;
use freshen_solver::LagrangeSolver;

use crate::allocate::AllocationPolicy;
use crate::kmeans;
use crate::partition::{PartitionCriterion, Partitioning};
use crate::reduce::ReducedProblem;

/// Configuration of the heuristic pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicConfig {
    /// Sorting criterion for the initial partitions.
    pub criterion: PartitionCriterion,
    /// Number of partitions `k` (clamped to `N` at solve time).
    pub num_partitions: usize,
    /// k-Means refinement iterations (0 = none).
    pub kmeans_iterations: usize,
    /// Intra-partition spreading policy.
    pub allocation: AllocationPolicy,
    /// Reference frequency `f₀` for the PF criteria (paper uses 1.0).
    pub reference_frequency: f64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            criterion: PartitionCriterion::PerceivedFreshness,
            num_partitions: 50,
            kmeans_iterations: 0,
            allocation: AllocationPolicy::FixedBandwidth,
            reference_frequency: 1.0,
        }
    }
}

/// The pipeline's output: the schedule plus diagnostics.
#[derive(Debug, Clone)]
pub struct HeuristicSolution {
    /// The expanded per-element schedule and its metrics.
    pub solution: Solution,
    /// The (possibly k-Means-refined) partitioning actually used.
    pub partitioning: Partitioning,
    /// Size of the reduced problem handed to the exact solver.
    pub reduced_elements: usize,
    /// k-Means iterations actually executed (early exit on convergence).
    pub kmeans_iterations_run: usize,
}

/// The scalable scheduler.
#[derive(Debug, Clone, Default)]
pub struct HeuristicScheduler {
    config: HeuristicConfig,
    solver: LagrangeSolver,
    recorder: Recorder,
    executor: Executor,
}

impl HeuristicScheduler {
    /// Create a scheduler, validating the configuration.
    pub fn new(config: HeuristicConfig) -> Result<Self> {
        if config.num_partitions == 0 {
            return Err(CoreError::InvalidConfig(
                "num_partitions must be positive".into(),
            ));
        }
        if !config.reference_frequency.is_finite() || config.reference_frequency <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "reference_frequency",
                index: None,
                value: config.reference_frequency,
            });
        }
        Ok(HeuristicScheduler {
            config,
            solver: LagrangeSolver::default(),
            recorder: Recorder::disabled(),
            executor: Executor::serial(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &HeuristicConfig {
        &self.config
    }

    /// Attach an observability recorder; it also flows into the embedded
    /// exact solver and the k-means refinement rounds.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.solver.recorder = recorder.clone();
        self.recorder = recorder;
        self
    }

    /// Attach an execution strategy; it also flows into the embedded exact
    /// solver. Every pipeline stage produces the same result at any worker
    /// count (see [`freshen_core::exec`]).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.solver.executor = executor.clone();
        self.executor = executor;
        self
    }

    /// Run the full pipeline on `problem`, with one span per stage.
    pub fn solve(&self, problem: &Problem) -> Result<HeuristicSolution> {
        let rec = &self.recorder;
        let mut pipeline_span = rec.span("heuristic.pipeline");
        pipeline_span.arg("n", problem.len());
        pipeline_span.arg("k", self.config.num_partitions);

        let initial = {
            let _span = rec.span("heuristic.partition");
            Partitioning::by_criterion_exec(
                problem,
                self.config.criterion,
                self.config.num_partitions,
                self.config.reference_frequency,
                &self.executor,
            )?
        };
        let (partitioning, ran) = {
            let _span = rec.span("heuristic.kmeans");
            kmeans::refine_observed_exec(
                problem,
                &initial,
                self.config.kmeans_iterations,
                rec,
                &self.executor,
            )?
        };

        let (reduced, rep) = {
            let mut span = rec.span("heuristic.representative_solve");
            let reduced = ReducedProblem::build_exec(problem, &partitioning, &self.executor)?;
            span.arg("reduced_elements", reduced.problem().len());
            let rep = self.solver.solve(reduced.problem())?;
            (reduced, rep)
        };
        let freqs = {
            let _span = rec.span("heuristic.spread_allocation");
            self.config.allocation.expand_exec(
                problem,
                &partitioning,
                &reduced,
                &rep.frequencies,
                &self.executor,
            )
        };

        let mut solution = Solution::evaluate_with_policy_exec(
            problem,
            freqs,
            freshen_core::policy::SyncPolicy::FixedOrder,
            &self.executor,
        );
        solution.multiplier = rep.multiplier;
        solution.iterations = rep.iterations;
        rec.gauge("heuristic.pf").set(solution.perceived_freshness);
        Ok(HeuristicSolution {
            solution,
            reduced_elements: reduced.problem().len(),
            partitioning,
            kmeans_iterations_run: ran,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshen_solver::solve_perceived_freshness;
    use freshen_workload::scenario::{Alignment, Scenario};

    fn table2_problem() -> Problem {
        Scenario::table2(0.8, Alignment::ShuffledChange, 42)
            .problem()
            .unwrap()
    }

    fn heuristic_pf(problem: &Problem, config: HeuristicConfig) -> f64 {
        HeuristicScheduler::new(config)
            .unwrap()
            .solve(problem)
            .unwrap()
            .solution
            .perceived_freshness
    }

    #[test]
    fn heuristic_is_feasible_and_spends_budget() {
        let p = table2_problem();
        let h = HeuristicScheduler::new(HeuristicConfig::default())
            .unwrap()
            .solve(&p)
            .unwrap();
        assert!(p.is_feasible(&h.solution.frequencies, 1e-6));
        assert!(
            (h.solution.bandwidth_used - p.bandwidth()).abs() < p.bandwidth() * 1e-6,
            "heuristic leaves no budget idle: used {}",
            h.solution.bandwidth_used
        );
    }

    #[test]
    fn heuristic_bounded_by_optimal() {
        let p = table2_problem();
        let opt = solve_perceived_freshness(&p).unwrap();
        for k in [5, 20, 100] {
            let pf = heuristic_pf(
                &p,
                HeuristicConfig {
                    num_partitions: k,
                    ..Default::default()
                },
            );
            assert!(
                pf <= opt.perceived_freshness + 1e-9,
                "k={k}: heuristic {pf} exceeds optimal {}",
                opt.perceived_freshness
            );
        }
    }

    #[test]
    fn more_partitions_approach_optimal() {
        let p = table2_problem();
        let opt = solve_perceived_freshness(&p).unwrap().perceived_freshness;
        let few = heuristic_pf(
            &p,
            HeuristicConfig {
                num_partitions: 3,
                ..Default::default()
            },
        );
        let many = heuristic_pf(
            &p,
            HeuristicConfig {
                num_partitions: 250,
                ..Default::default()
            },
        );
        assert!(
            many >= few - 1e-9,
            "more partitions cannot hurt much: few={few} many={many}"
        );
        assert!(
            opt - many < 0.02,
            "250 partitions of 500 elements is near-optimal: gap {}",
            opt - many
        );
    }

    #[test]
    fn n_partitions_equals_optimal() {
        // One element per partition: the heuristic degenerates to the
        // exact solve.
        let p = table2_problem();
        let opt = solve_perceived_freshness(&p).unwrap().perceived_freshness;
        let pf = heuristic_pf(
            &p,
            HeuristicConfig {
                num_partitions: p.len(),
                ..Default::default()
            },
        );
        assert!((opt - pf).abs() < 1e-6, "opt {opt} vs heuristic {pf}");
    }

    #[test]
    fn kmeans_refinement_does_not_hurt() {
        let p = table2_problem();
        let base = heuristic_pf(
            &p,
            HeuristicConfig {
                num_partitions: 20,
                kmeans_iterations: 0,
                ..Default::default()
            },
        );
        let refined = heuristic_pf(
            &p,
            HeuristicConfig {
                num_partitions: 20,
                kmeans_iterations: 10,
                ..Default::default()
            },
        );
        // The paper's headline improvement; allow a small tolerance since
        // k-means optimizes cohesion, not PF directly.
        assert!(
            refined >= base - 0.01,
            "k-means refinement should help or be neutral: {base} → {refined}"
        );
    }

    #[test]
    fn pf_partitioning_beats_lambda_partitioning() {
        // The paper's Figure 5(a)/7 finding under shuffled-change.
        let p = table2_problem();
        let k = 25;
        let pf = heuristic_pf(
            &p,
            HeuristicConfig {
                criterion: PartitionCriterion::PerceivedFreshness,
                num_partitions: k,
                ..Default::default()
            },
        );
        let lam = heuristic_pf(
            &p,
            HeuristicConfig {
                criterion: PartitionCriterion::ChangeRate,
                num_partitions: k,
                ..Default::default()
            },
        );
        assert!(
            pf > lam,
            "PF-partitioning {pf} should beat λ-partitioning {lam} at k={k}"
        );
    }

    #[test]
    fn sized_problem_fba_beats_ffa() {
        use freshen_workload::scenario::{SizeAlignment, SizeDist};
        let p = Scenario::builder()
            .num_objects(400)
            .updates_per_period(800.0)
            .syncs_per_period(200.0)
            .zipf_theta(1.0)
            .alignment(Alignment::ShuffledChange)
            .size_dist(SizeDist::Pareto { shape: 1.1 })
            .size_alignment(SizeAlignment::ReverseOfChange)
            .seed(7)
            .build()
            .unwrap()
            .problem()
            .unwrap();
        let k = 15;
        let fba = heuristic_pf(
            &p,
            HeuristicConfig {
                criterion: PartitionCriterion::PerceivedFreshnessPerSize,
                num_partitions: k,
                allocation: AllocationPolicy::FixedBandwidth,
                ..Default::default()
            },
        );
        let ffa = heuristic_pf(
            &p,
            HeuristicConfig {
                criterion: PartitionCriterion::PerceivedFreshnessPerSize,
                num_partitions: k,
                allocation: AllocationPolicy::FixedFrequency,
                ..Default::default()
            },
        );
        assert!(
            fba >= ffa,
            "FBA {fba} must not lose to FFA {ffa} on Pareto sizes (paper Fig 11)"
        );
    }

    #[test]
    fn config_validation() {
        assert!(HeuristicScheduler::new(HeuristicConfig {
            num_partitions: 0,
            ..Default::default()
        })
        .is_err());
        assert!(HeuristicScheduler::new(HeuristicConfig {
            reference_frequency: 0.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn single_partition_still_works() {
        let p = table2_problem();
        let h = HeuristicScheduler::new(HeuristicConfig {
            num_partitions: 1,
            ..Default::default()
        })
        .unwrap()
        .solve(&p)
        .unwrap();
        assert_eq!(h.reduced_elements, 1);
        // Everyone gets the same frequency under FFA-equivalent expansion.
        let f0 = h.solution.frequencies[0];
        assert!(h
            .solution
            .frequencies
            .iter()
            .all(|&f| (f - f0).abs() < 1e-9));
    }

    #[test]
    fn pool_pipeline_matches_serial_exactly() {
        let p = table2_problem();
        let config = HeuristicConfig {
            num_partitions: 20,
            kmeans_iterations: 5,
            ..Default::default()
        };
        let serial = HeuristicScheduler::new(config.clone())
            .unwrap()
            .solve(&p)
            .unwrap();
        for workers in [2, 4] {
            let pooled = HeuristicScheduler::new(config.clone())
                .unwrap()
                .with_executor(Executor::thread_pool(workers))
                .solve(&p)
                .unwrap();
            assert_eq!(
                serial.solution.frequencies, pooled.solution.frequencies,
                "workers={workers}"
            );
            assert_eq!(serial.partitioning, pooled.partitioning);
            assert_eq!(
                serial.solution.perceived_freshness.to_bits(),
                pooled.solution.perceived_freshness.to_bits()
            );
        }
    }

    #[test]
    fn recorder_traces_every_stage() {
        use freshen_obs::Recorder;
        let p = table2_problem();
        let rec = Recorder::enabled();
        let config = HeuristicConfig {
            num_partitions: 20,
            kmeans_iterations: 5,
            ..Default::default()
        };
        let observed = HeuristicScheduler::new(config.clone())
            .unwrap()
            .with_recorder(rec.clone())
            .solve(&p)
            .unwrap();
        let plain = HeuristicScheduler::new(config).unwrap().solve(&p).unwrap();
        assert_eq!(
            observed.solution.frequencies, plain.solution.frequencies,
            "observability must not change the schedule"
        );
        let trace = rec.chrome_trace_json().unwrap();
        for stage in [
            "heuristic.pipeline",
            "heuristic.partition",
            "heuristic.kmeans",
            "heuristic.representative_solve",
            "heuristic.spread_allocation",
        ] {
            assert!(trace.contains(stage), "missing stage span {stage}");
        }
        // The embedded exact solver reports through the same recorder.
        assert!(rec.counter_value("solver.solves").unwrap() >= 1);
        let pf = rec.gauge_value("heuristic.pf").unwrap();
        assert!((pf - observed.solution.perceived_freshness).abs() < 1e-12);
    }
}
