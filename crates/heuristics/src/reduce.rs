//! The Transformed Problem: reduce a partitioned instance to one
//! representative element per partition (paper §3.2).
//!
//! For partition `j` with `Mⱼ` members, the representative carries the
//! member means `p̄ⱼ = Σp/Mⱼ`, `λ̄ⱼ = Σλ/Mⱼ` (and `s̄ⱼ = Σs/Mⱼ` with
//! sizes), and the transformed problem is
//!
//! ```text
//! maximize   Σⱼ Mⱼ·p̄ⱼ·F̄(f̄ⱼ, λ̄ⱼ)
//! subject to Σⱼ Mⱼ·s̄ⱼ·f̄ⱼ = B,   f̄ⱼ ≥ 0.
//! ```
//!
//! That is itself an instance of the extended Core Problem with weights
//! `Mⱼ·p̄ⱼ` and sizes `Mⱼ·s̄ⱼ`, so the exact Lagrange solver handles it —
//! over `k ≪ N` variables. [`ReducedProblem`] carries the mapping back to
//! the original partitions for the allocation step.

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::{Executor, DEFAULT_CHUNK};
use freshen_core::problem::Problem;

use crate::partition::Partitioning;

/// A reduced (representative-element) instance plus the bookkeeping needed
/// to expand its solution back over the original elements.
#[derive(Debug, Clone)]
pub struct ReducedProblem {
    /// The k'-element transformed problem (only non-empty partitions with
    /// positive aggregate interest appear — see `active_partitions`).
    problem: Problem,
    /// For each element of `problem`, the original partition id it stands
    /// for.
    active_partitions: Vec<usize>,
    /// Representative mean size per *active* partition (aligned with
    /// `active_partitions`).
    mean_sizes: Vec<f64>,
    /// Member count per *active* partition.
    multiplicities: Vec<usize>,
}

impl ReducedProblem {
    /// Build the transformed problem for `problem` under `partitioning`.
    ///
    /// Partitions that are empty contribute nothing and are dropped.
    /// Partitions whose aggregate access probability is zero can never earn
    /// bandwidth and are likewise dropped (their members will receive zero
    /// frequency at expansion). Errors when *no* partition remains.
    pub fn build(problem: &Problem, partitioning: &Partitioning) -> Result<ReducedProblem> {
        Self::build_exec(problem, partitioning, &Executor::serial())
    }

    /// [`build`](Self::build) with the per-partition statistics gathered in
    /// parallel on `executor`: per-chunk partial sums merged in fixed
    /// chunk order, so the reduced problem is identical at any worker
    /// count.
    pub fn build_exec(
        problem: &Problem,
        partitioning: &Partitioning,
        executor: &Executor,
    ) -> Result<ReducedProblem> {
        if partitioning.len() != problem.len() {
            return Err(CoreError::LengthMismatch {
                what: "partition assignment",
                expected: problem.len(),
                actual: partitioning.len(),
            });
        }
        let k = partitioning.num_partitions();
        let stats = executor
            .par_chunks_reduce(
                problem.len(),
                DEFAULT_CHUNK,
                |range| {
                    let mut s = PartitionStats::zero(k);
                    for i in range {
                        let g = partitioning.partition_of(i);
                        s.count[g] += 1;
                        s.sum_p[g] += problem.access_probs()[i];
                        s.sum_lam[g] += problem.change_rates()[i];
                        s.sum_s[g] += problem.sizes()[i];
                    }
                    s
                },
                |mut a, b| {
                    a.merge(&b);
                    a
                },
            )
            .unwrap_or_else(|| PartitionStats::zero(k));
        let PartitionStats {
            count,
            sum_p,
            sum_lam,
            sum_s,
        } = stats;

        let mut active_partitions = Vec::new();
        let mut weights = Vec::new();
        let mut rates = Vec::new();
        let mut sizes = Vec::new();
        let mut mean_sizes = Vec::new();
        let mut multiplicities = Vec::new();
        for g in 0..k {
            if count[g] == 0 || sum_p[g] <= 0.0 {
                continue;
            }
            let m = count[g] as f64;
            active_partitions.push(g);
            // Objective weight Mⱼ·p̄ⱼ = Σp; constraint weight Mⱼ·s̄ⱼ = Σs.
            weights.push(sum_p[g]);
            rates.push(sum_lam[g] / m);
            sizes.push(sum_s[g]);
            mean_sizes.push(sum_s[g] / m);
            multiplicities.push(count[g]);
        }
        if active_partitions.is_empty() {
            return Err(CoreError::Empty);
        }
        let reduced = Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .sizes(sizes)
            .bandwidth(problem.bandwidth())
            .build()?;
        Ok(ReducedProblem {
            problem: reduced,
            active_partitions,
            mean_sizes,
            multiplicities,
        })
    }

    /// The k'-element transformed problem to hand to a solver.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Original partition ids, aligned with the reduced elements.
    pub fn active_partitions(&self) -> &[usize] {
        &self.active_partitions
    }

    /// Mean member size per active partition.
    pub fn mean_sizes(&self) -> &[f64] {
        &self.mean_sizes
    }

    /// Member count per active partition.
    pub fn multiplicities(&self) -> &[usize] {
        &self.multiplicities
    }

    /// Map a solved representative frequency vector to a per-original-
    /// partition lookup: `lookup[g] = Some((f̄, s̄))` for active partitions.
    pub fn representative_lookup(
        &self,
        rep_freqs: &[f64],
        total_partitions: usize,
    ) -> Vec<Option<(f64, f64)>> {
        assert_eq!(
            rep_freqs.len(),
            self.active_partitions.len(),
            "rep freqs mismatch"
        );
        let mut lookup = vec![None; total_partitions];
        for (idx, &g) in self.active_partitions.iter().enumerate() {
            lookup[g] = Some((rep_freqs[idx], self.mean_sizes[idx]));
        }
        lookup
    }
}

/// Per-partition accumulators for one chunk of the reduction pass.
struct PartitionStats {
    count: Vec<usize>,
    sum_p: Vec<f64>,
    sum_lam: Vec<f64>,
    sum_s: Vec<f64>,
}

impl PartitionStats {
    fn zero(k: usize) -> Self {
        PartitionStats {
            count: vec![0usize; k],
            sum_p: vec![0.0f64; k],
            sum_lam: vec![0.0f64; k],
            sum_s: vec![0.0f64; k],
        }
    }

    fn merge(&mut self, other: &PartitionStats) {
        for g in 0..self.count.len() {
            self.count[g] += other.count[g];
            self.sum_p[g] += other.sum_p[g];
            self.sum_lam[g] += other.sum_lam[g];
            self.sum_s[g] += other.sum_s[g];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionCriterion;

    fn toy() -> Problem {
        Problem::builder()
            .change_rates(vec![4.0, 2.0, 1.0, 3.0])
            .access_probs(vec![0.1, 0.4, 0.3, 0.2])
            .bandwidth(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn representatives_are_partition_means() {
        let p = toy();
        // Two partitions by interest: {1,2} hot, {3,0} cold.
        let part = Partitioning::by_criterion(&p, PartitionCriterion::AccessProb, 2, 1.0).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        let rp = red.problem();
        assert_eq!(rp.len(), 2);
        // Hot partition: p̄ = 0.35, λ̄ = 1.5; weight = Σp = 0.7.
        assert!((rp.change_rates()[0] - 1.5).abs() < 1e-12);
        // Weights were normalized: 0.7 / (0.7 + 0.3).
        assert!((rp.access_probs()[0] - 0.7).abs() < 1e-12);
        // Cold partition: λ̄ = 3.5.
        assert!((rp.change_rates()[1] - 3.5).abs() < 1e-12);
        assert_eq!(red.multiplicities(), &[2, 2]);
    }

    #[test]
    fn constraint_sizes_carry_multiplicity() {
        let p = toy();
        let part = Partitioning::by_criterion(&p, PartitionCriterion::AccessProb, 2, 1.0).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        // Unit member sizes: reduced size = Mⱼ = 2 each.
        assert_eq!(red.problem().sizes(), &[2.0, 2.0]);
        assert_eq!(red.mean_sizes(), &[1.0, 1.0]);
        // Budget preserved.
        assert_eq!(red.problem().bandwidth(), 4.0);
    }

    #[test]
    fn empty_partitions_dropped() {
        let p = toy();
        // 3 partitions declared, one left empty.
        let part = Partitioning::from_assignment(vec![0, 0, 2, 2], 3).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        assert_eq!(red.problem().len(), 2);
        assert_eq!(red.active_partitions(), &[0, 2]);
    }

    #[test]
    fn zero_interest_partition_dropped() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0, 2.0])
            .access_probs(vec![0.5, 0.5, 0.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let part = Partitioning::from_assignment(vec![0, 0, 1], 2).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        assert_eq!(red.active_partitions(), &[0]);
    }

    #[test]
    fn all_zero_interest_is_an_error() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![1.0, 0.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        // Put the only interesting element in no partition? Impossible —
        // instead give the whole problem zero-interest partitions by
        // restricting to element 1 only via assignment... The reachable
        // case: a partitioning whose every group has zero aggregate p.
        let q = Problem::builder()
            .change_rates(vec![1.0])
            .access_probs(vec![1.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        // Sanity: a normal build works.
        assert!(ReducedProblem::build(&q, &Partitioning::single(1)).is_ok());
        // Length mismatch also errors.
        assert!(ReducedProblem::build(&p, &Partitioning::single(3)).is_err());
    }

    #[test]
    fn sized_problem_reduces_sizes_too() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0, 2.0, 2.0])
            .access_probs(vec![0.25; 4])
            .sizes(vec![1.0, 3.0, 2.0, 2.0])
            .bandwidth(4.0)
            .build()
            .unwrap();
        let part = Partitioning::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        assert_eq!(red.problem().sizes(), &[4.0, 4.0]); // Σs per partition
        assert_eq!(red.mean_sizes(), &[2.0, 2.0]);
    }

    #[test]
    fn single_partition_reduces_to_one_element() {
        let p = toy();
        let red = ReducedProblem::build(&p, &Partitioning::single(4)).unwrap();
        assert_eq!(red.problem().len(), 1);
        assert!((red.problem().change_rates()[0] - 2.5).abs() < 1e-12);
        assert_eq!(red.multiplicities(), &[4]);
    }

    #[test]
    fn representative_lookup_maps_back() {
        let p = toy();
        let part = Partitioning::from_assignment(vec![0, 0, 2, 2], 3).unwrap();
        let red = ReducedProblem::build(&p, &part).unwrap();
        let lookup = red.representative_lookup(&[1.5, 0.5], 3);
        assert_eq!(lookup[0], Some((1.5, 1.0)));
        assert_eq!(lookup[1], None);
        assert_eq!(lookup[2], Some((0.5, 1.0)));
    }
}
