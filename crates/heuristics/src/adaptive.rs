//! Adaptive rescheduling: decide *when* to re-solve and do it cheaply.
//!
//! The paper's §3 motivation for the heuristics is that "for large
//! real-world problems for which the contents of the mirror or the user
//! interests might change, we would need to periodically solve the Core
//! Problem". This module packages that loop:
//!
//! * [`DriftMonitor`] quantifies how far the current `(p, λ)` estimates
//!   have drifted from the ones the active schedule was computed for,
//!   using a symmetrized KL divergence on the normalized vectors, and
//!   recommends a re-solve when the drift crosses a threshold;
//! * [`AdaptiveScheduler`] owns the active schedule and re-solves on
//!   demand — warm-starting the exact solver from the previous Lagrange
//!   multiplier ([`LagrangeSolver::solve_warm`]), which roughly halves the
//!   outer iterations for small drifts.

use freshen_core::error::{CoreError, Result};
use freshen_core::problem::{Problem, Solution};
use freshen_solver::LagrangeSolver;

/// Symmetrized KL divergence (Jeffreys divergence) between two positive
/// vectors, each normalized to sum to 1 first. Zero entries are smoothed
/// with a tiny ε so elements appearing/disappearing stay finite.
///
/// # Errors
/// [`CoreError::LengthMismatch`] when the vectors differ in length;
/// [`CoreError::InvalidValue`] when either vector's total mass is
/// non-positive or non-finite (a divergence over it is meaningless).
pub fn jeffreys_divergence(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(CoreError::LengthMismatch {
            what: "divergence vectors",
            expected: a.len(),
            actual: b.len(),
        });
    }
    const EPS: f64 = 1e-12;
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    for sum in [sa, sb] {
        if !sum.is_finite() || sum <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "divergence mass",
                index: None,
                value: sum,
            });
        }
    }
    let mut d = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let p = (x / sa).max(EPS);
        let q = (y / sb).max(EPS);
        d += (p - q) * (p / q).ln();
    }
    Ok(d)
}

/// Drift detector comparing live `(p, λ)` estimates against the snapshot
/// the active schedule was computed from.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    baseline_probs: Vec<f64>,
    baseline_rates: Vec<f64>,
    threshold: f64,
}

impl DriftMonitor {
    /// Create a monitor with a Jeffreys-divergence `threshold` (a typical
    /// operating point is 0.01–0.1: ~0.02 corresponds to a few percent of
    /// interest mass moving between objects).
    pub fn new(problem: &Problem, threshold: f64) -> Result<Self> {
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "drift threshold",
                index: None,
                value: threshold,
            });
        }
        Ok(DriftMonitor {
            baseline_probs: problem.access_probs().to_vec(),
            baseline_rates: problem.change_rates().to_vec(),
            threshold,
        })
    }

    /// Total drift of `current` against the baseline: the sum of the
    /// profile divergence and the change-rate divergence.
    ///
    /// # Errors
    /// Fails when `current` has a different element count (the divergence
    /// is undefined across mirror-size changes).
    pub fn drift(&self, current: &Problem) -> Result<f64> {
        Ok(
            jeffreys_divergence(self.baseline_probs.as_slice(), current.access_probs())?
                + jeffreys_divergence(self.baseline_rates.as_slice(), current.change_rates())?,
        )
    }

    /// Should the schedule be recomputed for `current`?
    pub fn needs_resolve(&self, current: &Problem) -> Result<bool> {
        Ok(self.drift(current)? > self.threshold)
    }

    /// The configured re-solve threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The baseline access probabilities the active schedule was computed
    /// for — the checkpointable half of the monitor's state.
    pub fn baseline_probs(&self) -> &[f64] {
        &self.baseline_probs
    }

    /// The baseline change rates the active schedule was computed for.
    pub fn baseline_rates(&self) -> &[f64] {
        &self.baseline_rates
    }

    /// Rebuild a monitor from checkpointed baselines. `threshold` comes
    /// from configuration.
    pub fn from_state(
        baseline_probs: Vec<f64>,
        baseline_rates: Vec<f64>,
        threshold: f64,
    ) -> Result<Self> {
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "drift threshold",
                index: None,
                value: threshold,
            });
        }
        if baseline_probs.len() != baseline_rates.len() {
            return Err(CoreError::LengthMismatch {
                what: "drift baselines",
                expected: baseline_probs.len(),
                actual: baseline_rates.len(),
            });
        }
        Ok(DriftMonitor {
            baseline_probs,
            baseline_rates,
            threshold,
        })
    }

    /// Re-baseline after a re-solve.
    pub fn rebaseline(&mut self, problem: &Problem) {
        self.baseline_probs.clear();
        self.baseline_probs
            .extend_from_slice(problem.access_probs());
        self.baseline_rates.clear();
        self.baseline_rates
            .extend_from_slice(problem.change_rates());
    }
}

/// A stateful scheduler that re-solves only when drift warrants it,
/// warm-starting from the previous multiplier.
#[derive(Debug)]
pub struct AdaptiveScheduler {
    solver: LagrangeSolver,
    monitor: DriftMonitor,
    current: Solution,
    resolves: usize,
    skips: usize,
    last_drift: Option<f64>,
}

impl AdaptiveScheduler {
    /// Solve the initial problem and arm the drift monitor.
    pub fn new(problem: &Problem, drift_threshold: f64) -> Result<Self> {
        let solver = LagrangeSolver::default();
        let current = solver.solve(problem)?;
        Ok(AdaptiveScheduler {
            solver,
            monitor: DriftMonitor::new(problem, drift_threshold)?,
            current,
            resolves: 1,
            skips: 0,
            last_drift: None,
        })
    }

    /// Attach an execution strategy for subsequent re-solves (builder
    /// form). The initial solve in [`new`](Self::new) runs serially; later
    /// drift-triggered solves use the configured executor — the optimum is
    /// identical either way.
    pub fn with_executor(mut self, executor: freshen_core::exec::Executor) -> Self {
        self.solver.executor = executor;
        self
    }

    /// The active schedule.
    pub fn schedule(&self) -> &Solution {
        &self.current
    }

    /// Exact solves performed so far (including the initial one).
    pub fn resolves(&self) -> usize {
        self.resolves
    }

    /// Updates that were absorbed without re-solving.
    pub fn skips(&self) -> usize {
        self.skips
    }

    /// Drift measured by the most recent [`observe`](Self::observe) or
    /// [`resolve`](Self::resolve) call, if any — handy for gauges.
    pub fn last_drift(&self) -> Option<f64> {
        self.last_drift
    }

    /// The drift monitor (baselines + threshold) — checkpointable state.
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Rebuild a scheduler from checkpointed state without re-solving:
    /// `current` is the schedule that was active at checkpoint time and
    /// `monitor` carries the matching baselines, so the restored scheduler
    /// makes byte-identical decisions from the next observation on.
    pub fn from_state(
        current: Solution,
        monitor: DriftMonitor,
        resolves: usize,
        skips: usize,
        last_drift: Option<f64>,
    ) -> Result<Self> {
        if current.frequencies.is_empty() {
            return Err(CoreError::Empty);
        }
        if monitor.baseline_probs().len() != current.frequencies.len() {
            return Err(CoreError::LengthMismatch {
                what: "scheduler baselines",
                expected: current.frequencies.len(),
                actual: monitor.baseline_probs().len(),
            });
        }
        Ok(AdaptiveScheduler {
            solver: LagrangeSolver::default(),
            monitor,
            current,
            resolves,
            skips,
            last_drift,
        })
    }

    fn check_size(&self, problem: &Problem) -> Result<()> {
        if problem.len() != self.current.frequencies.len() {
            return Err(CoreError::LengthMismatch {
                what: "adaptive problem size",
                expected: self.current.frequencies.len(),
                actual: problem.len(),
            });
        }
        Ok(())
    }

    fn resolve_inner(&mut self, problem: &Problem) -> Result<()> {
        let hint = self.current.multiplier.unwrap_or(0.0);
        self.current = if hint > 0.0 {
            self.solver.solve_warm(problem, hint)?
        } else {
            self.solver.solve(problem)?
        };
        self.monitor.rebaseline(problem);
        self.resolves += 1;
        Ok(())
    }

    /// Feed the latest estimates. Re-solves (warm-started) when the drift
    /// monitor fires; otherwise keeps the active schedule. Returns whether
    /// a re-solve happened.
    ///
    /// The element count must stay fixed (the paper's model: "copies are
    /// not added or deleted at the mirror").
    pub fn observe(&mut self, problem: &Problem) -> Result<bool> {
        self.check_size(problem)?;
        let drift = self.monitor.drift(problem)?;
        self.last_drift = Some(drift);
        if drift <= self.monitor.threshold() {
            self.skips += 1;
            return Ok(false);
        }
        self.resolve_inner(problem)?;
        Ok(true)
    }

    /// Re-solve unconditionally (still warm-started from the previous
    /// multiplier) and re-baseline the drift monitor. This is the
    /// "re-solve every epoch" oracle policy the drift-gated loop is
    /// measured against.
    pub fn resolve(&mut self, problem: &Problem) -> Result<()> {
        self.check_size(problem)?;
        self.last_drift = Some(self.monitor.drift(problem)?);
        self.resolve_inner(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshen_workload::scenario::{Alignment, Scenario};

    fn base_problem() -> Problem {
        Scenario::table2(1.0, Alignment::ShuffledChange, 42)
            .problem()
            .unwrap()
    }

    fn perturbed(problem: &Problem, factor: f64) -> Problem {
        // Tilt the profile: even elements gain, odd elements lose.
        let probs: Vec<f64> = problem
            .access_probs()
            .iter()
            .enumerate()
            .map(|(i, &p)| if i % 2 == 0 { p * factor } else { p / factor })
            .collect();
        Problem::builder()
            .change_rates(problem.change_rates().to_vec())
            .access_weights(probs)
            .bandwidth(problem.bandwidth())
            .build()
            .unwrap()
    }

    #[test]
    fn divergence_zero_iff_identical() {
        let a = [0.2, 0.3, 0.5];
        assert_eq!(jeffreys_divergence(&a, &a).unwrap(), 0.0);
        let b = [0.5, 0.3, 0.2];
        assert!(jeffreys_divergence(&a, &b).unwrap() > 0.0);
    }

    #[test]
    fn divergence_symmetric_and_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        let scaled: Vec<f64> = a.iter().map(|x| x * 7.0).collect();
        let ab = jeffreys_divergence(&a, &b).unwrap();
        let ba = jeffreys_divergence(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(jeffreys_divergence(&a, &scaled).unwrap() < 1e-12);
    }

    #[test]
    fn divergence_grows_with_perturbation() {
        let p = base_problem();
        let small = perturbed(&p, 1.05);
        let large = perturbed(&p, 1.5);
        let monitor = DriftMonitor::new(&p, 0.01).unwrap();
        assert!(monitor.drift(&small).unwrap() < monitor.drift(&large).unwrap());
    }

    #[test]
    fn monitor_ignores_noise_fires_on_drift() {
        let p = base_problem();
        let monitor = DriftMonitor::new(&p, 0.02).unwrap();
        assert!(!monitor.needs_resolve(&p).unwrap(), "no drift, no fire");
        assert!(
            !monitor.needs_resolve(&perturbed(&p, 1.01)).unwrap(),
            "1% tilt is noise"
        );
        assert!(
            monitor.needs_resolve(&perturbed(&p, 2.0)).unwrap(),
            "2x tilt must fire"
        );
    }

    #[test]
    fn monitor_validates_threshold() {
        let p = base_problem();
        assert!(DriftMonitor::new(&p, 0.0).is_err());
        assert!(DriftMonitor::new(&p, f64::NAN).is_err());
    }

    #[test]
    fn adaptive_skips_noise_and_tracks_drift() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        assert_eq!(sched.resolves(), 1);

        // Noise: no re-solve, schedule unchanged.
        let noisy = perturbed(&p, 1.005);
        assert!(!sched.observe(&noisy).unwrap());
        assert_eq!(sched.skips(), 1);

        // Real drift: re-solve fires and the new schedule is optimal for
        // the drifted problem.
        let drifted = perturbed(&p, 2.0);
        assert!(sched.observe(&drifted).unwrap());
        assert_eq!(sched.resolves(), 2);
        let direct = LagrangeSolver::default().solve(&drifted).unwrap();
        for (a, b) in sched.schedule().frequencies.iter().zip(&direct.frequencies) {
            assert!((a - b).abs() < 1e-6, "warm re-solve equals cold solve");
        }

        // After re-baselining, the same drifted problem reads as no-drift.
        assert!(!sched.observe(&drifted).unwrap());
    }

    #[test]
    fn adaptive_rejects_size_change() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        let smaller = Scenario::table2(1.0, Alignment::ShuffledChange, 1)
            .problem()
            .unwrap()
            .restrict_to(&(0..100).collect::<Vec<_>>(), 50.0)
            .unwrap();
        assert!(sched.observe(&smaller).is_err());
    }

    #[test]
    fn divergence_length_mismatch_is_an_error() {
        let err = jeffreys_divergence(&[1.0], &[0.5, 0.5]).unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }), "{err}");
    }

    #[test]
    fn divergence_non_positive_mass_is_an_error() {
        assert!(jeffreys_divergence(&[0.0, 0.0], &[0.5, 0.5]).is_err());
        assert!(jeffreys_divergence(&[0.5, 0.5], &[-1.0, 0.5]).is_err());
        assert!(jeffreys_divergence(&[f64::NAN, 1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn monitor_fires_exactly_once_per_crossing() {
        // A drift that crosses the threshold triggers exactly one re-solve;
        // holding at the drifted point afterwards triggers none until the
        // *next* crossing.
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        let drifted = perturbed(&p, 2.0);

        let mut fired = 0;
        for _ in 0..5 {
            if sched.observe(&drifted).unwrap() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "one crossing, one re-solve");
        assert_eq!(sched.resolves(), 2);
        assert_eq!(sched.skips(), 4);

        // Drift back to the original profile: a second crossing, again
        // exactly one re-solve.
        let mut fired_back = 0;
        for _ in 0..5 {
            if sched.observe(&p).unwrap() {
                fired_back += 1;
            }
        }
        assert_eq!(fired_back, 1, "second crossing, second re-solve");
        assert_eq!(sched.resolves(), 3);
    }

    #[test]
    fn monitor_never_fires_under_tiny_drift() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        for step in 0..10 {
            // A slow wobble well inside the threshold.
            let tiny = perturbed(&p, 1.0 + 0.002 * (step % 3) as f64);
            assert!(!sched.observe(&tiny).unwrap(), "tiny drift must not fire");
        }
        assert_eq!(sched.resolves(), 1, "only the initial solve");
        assert_eq!(sched.skips(), 10);
    }

    #[test]
    fn warm_resolve_cheaper_than_cold_solve() {
        // The warm-started re-solve (bracketing from the previous
        // multiplier) must reach the same optimum in fewer outer
        // iterations than a cold solve of the drifted problem.
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        let drifted = perturbed(&p, 1.8);

        sched.resolve(&drifted).unwrap();
        let warm = sched.schedule();
        let cold = LagrangeSolver::default().solve(&drifted).unwrap();

        assert!(
            (warm.perceived_freshness - cold.perceived_freshness).abs() < 1e-9,
            "same optimum"
        );
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn forced_resolve_records_drift_and_counts() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.5).unwrap();
        assert!(sched.last_drift().is_none());
        // Under-threshold drift: observe skips but records the measurement.
        let mild = perturbed(&p, 1.05);
        assert!(!sched.observe(&mild).unwrap());
        let seen = sched.last_drift().unwrap();
        assert!(seen > 0.0 && seen < 0.5, "drift measured: {seen}");
        // Forced resolve ignores the threshold entirely.
        sched.resolve(&mild).unwrap();
        assert_eq!(sched.resolves(), 2);
    }
}
