//! Adaptive rescheduling: decide *when* to re-solve and do it cheaply.
//!
//! The paper's §3 motivation for the heuristics is that "for large
//! real-world problems for which the contents of the mirror or the user
//! interests might change, we would need to periodically solve the Core
//! Problem". This module packages that loop:
//!
//! * [`DriftMonitor`] quantifies how far the current `(p, λ)` estimates
//!   have drifted from the ones the active schedule was computed for,
//!   using a symmetrized KL divergence on the normalized vectors, and
//!   recommends a re-solve when the drift crosses a threshold;
//! * [`AdaptiveScheduler`] owns the active schedule and re-solves on
//!   demand — warm-starting the exact solver from the previous Lagrange
//!   multiplier ([`LagrangeSolver::solve_warm`]), which roughly halves the
//!   outer iterations for small drifts.

use freshen_core::audit::SolutionAudit;
use freshen_core::error::{CoreError, Result};
use freshen_core::problem::{Problem, Solution};
use freshen_solver::LagrangeSolver;

/// Symmetrized KL divergence (Jeffreys divergence) between two positive
/// vectors, each normalized to sum to 1 first. Zero entries are smoothed
/// with a tiny ε so elements appearing/disappearing stay finite.
///
/// # Errors
/// [`CoreError::LengthMismatch`] when the vectors differ in length;
/// [`CoreError::InvalidValue`] when either vector's total mass is
/// non-positive or non-finite (a divergence over it is meaningless).
pub fn jeffreys_divergence(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(CoreError::LengthMismatch {
            what: "divergence vectors",
            expected: a.len(),
            actual: b.len(),
        });
    }
    const EPS: f64 = 1e-12;
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    for sum in [sa, sb] {
        if !sum.is_finite() || sum <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "divergence mass",
                index: None,
                value: sum,
            });
        }
    }
    let mut d = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let p = (x / sa).max(EPS);
        let q = (y / sb).max(EPS);
        d += (p - q) * (p / q).ln();
    }
    Ok(d)
}

/// Drift detector comparing live `(p, λ)` estimates against the snapshot
/// the active schedule was computed from.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    baseline_probs: Vec<f64>,
    baseline_rates: Vec<f64>,
    threshold: f64,
}

impl DriftMonitor {
    /// Create a monitor with a Jeffreys-divergence `threshold` (a typical
    /// operating point is 0.01–0.1: ~0.02 corresponds to a few percent of
    /// interest mass moving between objects).
    pub fn new(problem: &Problem, threshold: f64) -> Result<Self> {
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "drift threshold",
                index: None,
                value: threshold,
            });
        }
        Ok(DriftMonitor {
            baseline_probs: problem.access_probs().to_vec(),
            baseline_rates: problem.change_rates().to_vec(),
            threshold,
        })
    }

    /// Total drift of `current` against the baseline: the sum of the
    /// profile divergence and the change-rate divergence.
    ///
    /// # Errors
    /// Fails when `current` has a different element count (the divergence
    /// is undefined across mirror-size changes).
    pub fn drift(&self, current: &Problem) -> Result<f64> {
        Ok(
            jeffreys_divergence(self.baseline_probs.as_slice(), current.access_probs())?
                + jeffreys_divergence(self.baseline_rates.as_slice(), current.change_rates())?,
        )
    }

    /// Should the schedule be recomputed for `current`?
    pub fn needs_resolve(&self, current: &Problem) -> Result<bool> {
        Ok(self.drift(current)? > self.threshold)
    }

    /// The configured re-solve threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The baseline access probabilities the active schedule was computed
    /// for — the checkpointable half of the monitor's state.
    pub fn baseline_probs(&self) -> &[f64] {
        &self.baseline_probs
    }

    /// The baseline change rates the active schedule was computed for.
    pub fn baseline_rates(&self) -> &[f64] {
        &self.baseline_rates
    }

    /// Rebuild a monitor from checkpointed baselines. `threshold` comes
    /// from configuration.
    pub fn from_state(
        baseline_probs: Vec<f64>,
        baseline_rates: Vec<f64>,
        threshold: f64,
    ) -> Result<Self> {
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "drift threshold",
                index: None,
                value: threshold,
            });
        }
        if baseline_probs.len() != baseline_rates.len() {
            return Err(CoreError::LengthMismatch {
                what: "drift baselines",
                expected: baseline_probs.len(),
                actual: baseline_rates.len(),
            });
        }
        Ok(DriftMonitor {
            baseline_probs,
            baseline_rates,
            threshold,
        })
    }

    /// The elements responsible for the measured drift: indices whose
    /// per-element Jeffreys contribution (profile term plus change-rate
    /// term) exceeds twice the mean contribution.
    ///
    /// Localized drift concentrates its divergence on the few elements
    /// that actually moved — their contributions sit orders of magnitude
    /// above the mean, while the untouched majority only carries the
    /// second-order wobble that renormalization induces. The cut at
    /// `2×mean` therefore isolates the movers without a tuning knob.
    ///
    /// Used to *seed* incremental KKT repair
    /// ([`LagrangeSolver::repair`]); repair's correctness never depends
    /// on this set being exact, so a fuzzy classification only costs a
    /// few extra inner iterations.
    pub fn touched(&self, current: &Problem) -> Result<Vec<usize>> {
        let contributions = self.drift_contributions(current)?;
        let n = contributions.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mean = contributions.iter().sum::<f64>() / n as f64;
        let cut = 2.0 * mean;
        Ok((0..n).filter(|&i| contributions[i] > cut).collect())
    }

    /// Per-element Jeffreys contributions (profile + rate terms), the
    /// decomposition [`drift`](Self::drift) sums.
    fn drift_contributions(&self, current: &Problem) -> Result<Vec<f64>> {
        let terms = |a: &[f64], b: &[f64]| -> Result<Vec<f64>> {
            if a.len() != b.len() {
                return Err(CoreError::LengthMismatch {
                    what: "divergence vectors",
                    expected: a.len(),
                    actual: b.len(),
                });
            }
            const EPS: f64 = 1e-12;
            let sa: f64 = a.iter().sum();
            let sb: f64 = b.iter().sum();
            for sum in [sa, sb] {
                if !sum.is_finite() || sum <= 0.0 {
                    return Err(CoreError::InvalidValue {
                        what: "divergence mass",
                        index: None,
                        value: sum,
                    });
                }
            }
            Ok(a.iter()
                .zip(b)
                .map(|(&x, &y)| {
                    let p = (x / sa).max(EPS);
                    let q = (y / sb).max(EPS);
                    (p - q) * (p / q).ln()
                })
                .collect())
        };
        let probs = terms(&self.baseline_probs, current.access_probs())?;
        let rates = terms(&self.baseline_rates, current.change_rates())?;
        Ok(probs.iter().zip(&rates).map(|(&a, &b)| a + b).collect())
    }

    /// Re-baseline after a re-solve.
    pub fn rebaseline(&mut self, problem: &Problem) {
        self.baseline_probs.clear();
        self.baseline_probs
            .extend_from_slice(problem.access_probs());
        self.baseline_rates.clear();
        self.baseline_rates
            .extend_from_slice(problem.change_rates());
    }
}

/// A stateful scheduler that re-solves only when drift warrants it,
/// warm-starting from the previous multiplier.
#[derive(Debug)]
pub struct AdaptiveScheduler {
    solver: LagrangeSolver,
    monitor: DriftMonitor,
    current: Solution,
    resolves: usize,
    skips: usize,
    repairs: usize,
    repair_fallbacks: usize,
    repair_fraction: f64,
    last_drift: Option<f64>,
}

impl AdaptiveScheduler {
    /// Solve the initial problem and arm the drift monitor.
    ///
    /// Incremental repair is off by default
    /// ([`with_repair_fraction`](Self::with_repair_fraction) enables it).
    pub fn new(problem: &Problem, drift_threshold: f64) -> Result<Self> {
        Self::new_costed(problem, drift_threshold, 0.0)
    }

    /// [`new`](Self::new) with a per-poll cost weight `γ` on the solver's
    /// objective: every solve (initial, warm re-solve, and repair) then
    /// maximizes `PF − γ·Σ cᵢfᵢ` and the repair certificate checks the
    /// cost-adjusted stationarity condition. `γ = 0` is exactly
    /// [`new`](Self::new).
    pub fn new_costed(problem: &Problem, drift_threshold: f64, cost_weight: f64) -> Result<Self> {
        let solver = LagrangeSolver::default().with_cost_weight(cost_weight);
        let current = solver.solve(problem)?;
        Ok(AdaptiveScheduler {
            solver,
            monitor: DriftMonitor::new(problem, drift_threshold)?,
            current,
            resolves: 1,
            skips: 0,
            repairs: 0,
            repair_fallbacks: 0,
            repair_fraction: 0.0,
            last_drift: None,
        })
    }

    /// Set the solver's per-poll cost weight without re-solving (builder
    /// form) — for the [`from_state`](Self::from_state) restore path,
    /// where `current` was exported by a scheduler already running at
    /// this weight.
    pub fn with_cost_weight(mut self, cost_weight: f64) -> Self {
        self.solver.cost_weight = cost_weight;
        self
    }

    /// The per-poll cost weight γ the solver is operating at.
    pub fn cost_weight(&self) -> f64 {
        self.solver.cost_weight
    }

    /// Enable incremental KKT repair (builder form): when a re-solve
    /// fires and the drift monitor attributes the drift to at most
    /// `fraction` of the elements, patch the previous optimum with
    /// [`LagrangeSolver::repair`] instead of running the full outer
    /// bisection, then certify the patched solution with the strict
    /// [`SolutionAudit`] ("repair then certify"). A failed repair or a
    /// failed certificate falls back to the full warm re-solve and is
    /// counted in [`repair_fallbacks`](Self::repair_fallbacks).
    ///
    /// `0.0` (the default) disables repair; values are clamped to
    /// `[0.0, 1.0]`; non-finite values disable.
    pub fn with_repair_fraction(mut self, fraction: f64) -> Self {
        self.repair_fraction = if fraction.is_finite() {
            fraction.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// Attach an execution strategy for subsequent re-solves (builder
    /// form). The initial solve in [`new`](Self::new) runs serially; later
    /// drift-triggered solves use the configured executor — the optimum is
    /// identical either way.
    pub fn with_executor(mut self, executor: freshen_core::exec::Executor) -> Self {
        self.solver.executor = executor;
        self
    }

    /// The active schedule.
    pub fn schedule(&self) -> &Solution {
        &self.current
    }

    /// Exact solves performed so far (including the initial one).
    pub fn resolves(&self) -> usize {
        self.resolves
    }

    /// Updates that were absorbed without re-solving.
    pub fn skips(&self) -> usize {
        self.skips
    }

    /// Re-solves served by certified incremental repair (a subset of
    /// [`resolves`](Self::resolves)).
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Repair attempts that fell back to the full warm re-solve (repair
    /// diverged or its certificate failed).
    pub fn repair_fallbacks(&self) -> usize {
        self.repair_fallbacks
    }

    /// The configured repair gate: the largest touched-set fraction
    /// repair is attempted for (0 = disabled).
    pub fn repair_fraction(&self) -> f64 {
        self.repair_fraction
    }

    /// Drift measured by the most recent [`observe`](Self::observe) or
    /// [`resolve`](Self::resolve) call, if any — handy for gauges.
    pub fn last_drift(&self) -> Option<f64> {
        self.last_drift
    }

    /// The drift monitor (baselines + threshold) — checkpointable state.
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Rebuild a scheduler from checkpointed state without re-solving:
    /// `current` is the schedule that was active at checkpoint time and
    /// `monitor` carries the matching baselines, so the restored scheduler
    /// makes byte-identical decisions from the next observation on.
    pub fn from_state(
        current: Solution,
        monitor: DriftMonitor,
        resolves: usize,
        skips: usize,
        last_drift: Option<f64>,
    ) -> Result<Self> {
        if current.frequencies.is_empty() {
            return Err(CoreError::Empty);
        }
        if monitor.baseline_probs().len() != current.frequencies.len() {
            return Err(CoreError::LengthMismatch {
                what: "scheduler baselines",
                expected: current.frequencies.len(),
                actual: monitor.baseline_probs().len(),
            });
        }
        Ok(AdaptiveScheduler {
            solver: LagrangeSolver::default(),
            monitor,
            current,
            resolves,
            skips,
            repairs: 0,
            repair_fallbacks: 0,
            repair_fraction: 0.0,
            last_drift,
        })
    }

    /// Restore the repair counters alongside [`from_state`](Self::from_state)
    /// (builder form): a restored scheduler with matching counters and
    /// repair gate makes byte-identical decisions — and exports
    /// byte-identical state — from the next observation on.
    pub fn with_repair_counters(mut self, repairs: usize, repair_fallbacks: usize) -> Self {
        self.repairs = repairs;
        self.repair_fallbacks = repair_fallbacks;
        self
    }

    fn check_size(&self, problem: &Problem) -> Result<()> {
        if problem.len() != self.current.frequencies.len() {
            return Err(CoreError::LengthMismatch {
                what: "adaptive problem size",
                expected: self.current.frequencies.len(),
                actual: problem.len(),
            });
        }
        Ok(())
    }

    fn resolve_inner(&mut self, problem: &Problem) -> Result<()> {
        let hint = self.current.multiplier.unwrap_or(0.0);
        if hint > 0.0 && self.try_repair(problem)? {
            return Ok(());
        }
        self.current = if hint > 0.0 {
            self.solver.solve_warm(problem, hint)?
        } else {
            self.solver.solve(problem)?
        };
        self.monitor.rebaseline(problem);
        self.resolves += 1;
        Ok(())
    }

    /// Repair-then-certify: attempt incremental repair when the gate is
    /// open and the drift is localized enough; install the repaired
    /// schedule only when the strict KKT certificate passes. Returns
    /// whether the repair was installed; `Ok(false)` (repair not
    /// attempted, diverged, or decertified) means the caller must run the
    /// full re-solve.
    fn try_repair(&mut self, problem: &Problem) -> Result<bool> {
        if self.repair_fraction <= 0.0 {
            return Ok(false);
        }
        let touched = self.monitor.touched(problem)?;
        if touched.len() as f64 > self.repair_fraction * problem.len() as f64 {
            return Ok(false); // drift too broad: full re-solve is cheaper
        }
        let repaired = match self.solver.repair(problem, &self.current, &touched) {
            Ok(outcome) => outcome.solution,
            Err(CoreError::NoConvergence { .. }) => {
                self.repair_fallbacks += 1;
                return Ok(false);
            }
            Err(e) => return Err(e),
        };
        // Certify against the solver's actual objective: with a poll levy
        // active the stationarity targets shift to `μ·s + γ·c`, and the
        // cost-blind certificate would reject every correct repair.
        let certificate = SolutionAudit::default().check_with_cost(
            problem,
            &repaired,
            self.solver.policy,
            self.solver.cost_weight,
        )?;
        if !certificate.is_clean() {
            self.repair_fallbacks += 1;
            return Ok(false);
        }
        self.current = repaired;
        self.monitor.rebaseline(problem);
        self.resolves += 1;
        self.repairs += 1;
        Ok(true)
    }

    /// Feed the latest estimates. Re-solves (warm-started) when the drift
    /// monitor fires; otherwise keeps the active schedule. Returns whether
    /// a re-solve happened.
    ///
    /// The element count must stay fixed (the paper's model: "copies are
    /// not added or deleted at the mirror").
    pub fn observe(&mut self, problem: &Problem) -> Result<bool> {
        self.check_size(problem)?;
        let drift = self.monitor.drift(problem)?;
        self.last_drift = Some(drift);
        if drift <= self.monitor.threshold() {
            self.skips += 1;
            return Ok(false);
        }
        self.resolve_inner(problem)?;
        Ok(true)
    }

    /// Re-solve unconditionally (still warm-started from the previous
    /// multiplier) and re-baseline the drift monitor. This is the
    /// "re-solve every epoch" oracle policy the drift-gated loop is
    /// measured against.
    pub fn resolve(&mut self, problem: &Problem) -> Result<()> {
        self.check_size(problem)?;
        self.last_drift = Some(self.monitor.drift(problem)?);
        self.resolve_inner(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshen_workload::scenario::{Alignment, Scenario};

    fn base_problem() -> Problem {
        Scenario::table2(1.0, Alignment::ShuffledChange, 42)
            .problem()
            .unwrap()
    }

    fn perturbed(problem: &Problem, factor: f64) -> Problem {
        // Tilt the profile: even elements gain, odd elements lose.
        let probs: Vec<f64> = problem
            .access_probs()
            .iter()
            .enumerate()
            .map(|(i, &p)| if i % 2 == 0 { p * factor } else { p / factor })
            .collect();
        Problem::builder()
            .change_rates(problem.change_rates().to_vec())
            .access_weights(probs)
            .bandwidth(problem.bandwidth())
            .build()
            .unwrap()
    }

    #[test]
    fn divergence_zero_iff_identical() {
        let a = [0.2, 0.3, 0.5];
        assert_eq!(jeffreys_divergence(&a, &a).unwrap(), 0.0);
        let b = [0.5, 0.3, 0.2];
        assert!(jeffreys_divergence(&a, &b).unwrap() > 0.0);
    }

    #[test]
    fn divergence_symmetric_and_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        let scaled: Vec<f64> = a.iter().map(|x| x * 7.0).collect();
        let ab = jeffreys_divergence(&a, &b).unwrap();
        let ba = jeffreys_divergence(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(jeffreys_divergence(&a, &scaled).unwrap() < 1e-12);
    }

    #[test]
    fn divergence_grows_with_perturbation() {
        let p = base_problem();
        let small = perturbed(&p, 1.05);
        let large = perturbed(&p, 1.5);
        let monitor = DriftMonitor::new(&p, 0.01).unwrap();
        assert!(monitor.drift(&small).unwrap() < monitor.drift(&large).unwrap());
    }

    #[test]
    fn monitor_ignores_noise_fires_on_drift() {
        let p = base_problem();
        let monitor = DriftMonitor::new(&p, 0.02).unwrap();
        assert!(!monitor.needs_resolve(&p).unwrap(), "no drift, no fire");
        assert!(
            !monitor.needs_resolve(&perturbed(&p, 1.01)).unwrap(),
            "1% tilt is noise"
        );
        assert!(
            monitor.needs_resolve(&perturbed(&p, 2.0)).unwrap(),
            "2x tilt must fire"
        );
    }

    #[test]
    fn monitor_validates_threshold() {
        let p = base_problem();
        assert!(DriftMonitor::new(&p, 0.0).is_err());
        assert!(DriftMonitor::new(&p, f64::NAN).is_err());
    }

    #[test]
    fn adaptive_skips_noise_and_tracks_drift() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        assert_eq!(sched.resolves(), 1);

        // Noise: no re-solve, schedule unchanged.
        let noisy = perturbed(&p, 1.005);
        assert!(!sched.observe(&noisy).unwrap());
        assert_eq!(sched.skips(), 1);

        // Real drift: re-solve fires and the new schedule is optimal for
        // the drifted problem.
        let drifted = perturbed(&p, 2.0);
        assert!(sched.observe(&drifted).unwrap());
        assert_eq!(sched.resolves(), 2);
        let direct = LagrangeSolver::default().solve(&drifted).unwrap();
        for (a, b) in sched.schedule().frequencies.iter().zip(&direct.frequencies) {
            assert!((a - b).abs() < 1e-6, "warm re-solve equals cold solve");
        }

        // After re-baselining, the same drifted problem reads as no-drift.
        assert!(!sched.observe(&drifted).unwrap());
    }

    #[test]
    fn adaptive_rejects_size_change() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        let smaller = Scenario::table2(1.0, Alignment::ShuffledChange, 1)
            .problem()
            .unwrap()
            .restrict_to(&(0..100).collect::<Vec<_>>(), 50.0)
            .unwrap();
        assert!(sched.observe(&smaller).is_err());
    }

    #[test]
    fn divergence_length_mismatch_is_an_error() {
        let err = jeffreys_divergence(&[1.0], &[0.5, 0.5]).unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }), "{err}");
    }

    #[test]
    fn divergence_non_positive_mass_is_an_error() {
        assert!(jeffreys_divergence(&[0.0, 0.0], &[0.5, 0.5]).is_err());
        assert!(jeffreys_divergence(&[0.5, 0.5], &[-1.0, 0.5]).is_err());
        assert!(jeffreys_divergence(&[f64::NAN, 1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn monitor_fires_exactly_once_per_crossing() {
        // A drift that crosses the threshold triggers exactly one re-solve;
        // holding at the drifted point afterwards triggers none until the
        // *next* crossing.
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        let drifted = perturbed(&p, 2.0);

        let mut fired = 0;
        for _ in 0..5 {
            if sched.observe(&drifted).unwrap() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "one crossing, one re-solve");
        assert_eq!(sched.resolves(), 2);
        assert_eq!(sched.skips(), 4);

        // Drift back to the original profile: a second crossing, again
        // exactly one re-solve.
        let mut fired_back = 0;
        for _ in 0..5 {
            if sched.observe(&p).unwrap() {
                fired_back += 1;
            }
        }
        assert_eq!(fired_back, 1, "second crossing, second re-solve");
        assert_eq!(sched.resolves(), 3);
    }

    #[test]
    fn monitor_never_fires_under_tiny_drift() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        for step in 0..10 {
            // A slow wobble well inside the threshold.
            let tiny = perturbed(&p, 1.0 + 0.002 * (step % 3) as f64);
            assert!(!sched.observe(&tiny).unwrap(), "tiny drift must not fire");
        }
        assert_eq!(sched.resolves(), 1, "only the initial solve");
        assert_eq!(sched.skips(), 10);
    }

    #[test]
    fn warm_resolve_cheaper_than_cold_solve() {
        // The warm-started re-solve (bracketing from the previous
        // multiplier) must reach the same optimum in fewer outer
        // iterations than a cold solve of the drifted problem.
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02).unwrap();
        let drifted = perturbed(&p, 1.8);

        sched.resolve(&drifted).unwrap();
        let warm = sched.schedule();
        let cold = LagrangeSolver::default().solve(&drifted).unwrap();

        assert!(
            (warm.perceived_freshness - cold.perceived_freshness).abs() < 1e-9,
            "same optimum"
        );
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
    }

    fn locally_perturbed(problem: &Problem, stride: usize, factor: f64) -> Problem {
        let probs: Vec<f64> = problem
            .access_probs()
            .iter()
            .enumerate()
            .map(|(i, &p)| if i % stride == 0 { p * factor } else { p })
            .collect();
        Problem::builder()
            .change_rates(problem.change_rates().to_vec())
            .access_weights(probs)
            .bandwidth(problem.bandwidth())
            .build()
            .unwrap()
    }

    #[test]
    fn touched_set_isolates_local_drift() {
        let p = base_problem();
        let monitor = DriftMonitor::new(&p, 0.02).unwrap();
        let drifted = locally_perturbed(&p, 50, 3.0);
        let touched = monitor.touched(&drifted).unwrap();
        assert!(!touched.is_empty());
        assert!(
            touched.len() <= p.len() / 10,
            "local drift flagged {} of {} elements",
            touched.len(),
            p.len()
        );
        // The heavy movers are flagged. (Renormalization also lets a few
        // heavy *non*-movers into the set — harmless: the touched set only
        // seeds repair, it never gates correctness.)
        let movers = touched.iter().filter(|&&i| i % 50 == 0).count();
        assert!(movers > 0, "at least the heavy movers must be flagged");
        assert!(monitor.touched(&p).unwrap().is_empty(), "no drift, no set");
    }

    #[test]
    fn repair_gated_scheduler_matches_full_resolve() {
        let p = base_problem();
        let mut plain = AdaptiveScheduler::new(&p, 0.02).unwrap();
        let mut gated = AdaptiveScheduler::new(&p, 0.02)
            .unwrap()
            .with_repair_fraction(0.2);
        let drifted = locally_perturbed(&p, 40, 2.5);
        assert!(plain.observe(&drifted).unwrap());
        assert!(gated.observe(&drifted).unwrap());
        assert_eq!(
            gated.repairs(),
            1,
            "localized drift must take the repair path"
        );
        assert_eq!(gated.repair_fallbacks(), 0);
        assert!(
            (gated.schedule().perceived_freshness - plain.schedule().perceived_freshness).abs()
                < 1e-9,
            "repaired PF {} vs full re-solve PF {}",
            gated.schedule().perceived_freshness,
            plain.schedule().perceived_freshness
        );
    }

    #[test]
    fn cost_aware_repair_path_certifies() {
        // "Repair then certify" under a poll levy: the certificate must
        // check the cost-adjusted stationarity condition, or every
        // correct cost-aware repair would decertify and fall back.
        let p = base_problem();
        let mu0 = LagrangeSolver::default()
            .solve(&p)
            .unwrap()
            .multiplier
            .unwrap();
        let gamma = mu0 * 0.25; // levy well under the water level: budget binds
        let mut gated = AdaptiveScheduler::new_costed(&p, 0.02, gamma)
            .unwrap()
            .with_repair_fraction(0.2);
        assert_eq!(gated.cost_weight(), gamma);
        let drifted = locally_perturbed(&p, 40, 2.5);
        assert!(gated.observe(&drifted).unwrap());
        assert_eq!(gated.repairs(), 1, "cost-aware repair must certify");
        assert_eq!(gated.repair_fallbacks(), 0);
        let direct = LagrangeSolver::default()
            .with_cost_weight(gamma)
            .solve(&drifted)
            .unwrap();
        assert!(
            (gated.schedule().perceived_freshness - direct.perceived_freshness).abs() < 1e-9,
            "cost-aware repaired PF {} vs direct cost-aware PF {}",
            gated.schedule().perceived_freshness,
            direct.perceived_freshness
        );
    }

    #[test]
    fn broad_drift_bypasses_repair() {
        let p = base_problem();
        let mut gated = AdaptiveScheduler::new(&p, 0.02)
            .unwrap()
            .with_repair_fraction(0.05);
        // Every element moves: the touched set exceeds the gate, so the
        // full warm re-solve runs and no fallback is charged.
        let drifted = perturbed(&p, 2.0);
        assert!(gated.observe(&drifted).unwrap());
        assert_eq!(gated.repairs(), 0);
        assert_eq!(gated.resolves(), 2);
    }

    #[test]
    fn repair_counters_survive_state_roundtrip() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.02)
            .unwrap()
            .with_repair_fraction(0.2);
        let drifted = locally_perturbed(&p, 40, 2.5);
        assert!(sched.observe(&drifted).unwrap());
        assert_eq!(sched.repairs(), 1);

        let restored = AdaptiveScheduler::from_state(
            sched.schedule().clone(),
            DriftMonitor::from_state(
                sched.monitor().baseline_probs().to_vec(),
                sched.monitor().baseline_rates().to_vec(),
                0.02,
            )
            .unwrap(),
            sched.resolves(),
            sched.skips(),
            sched.last_drift(),
        )
        .unwrap()
        .with_repair_counters(sched.repairs(), sched.repair_fallbacks())
        .with_repair_fraction(0.2);
        assert_eq!(restored.repairs(), 1);
        assert_eq!(restored.repair_fallbacks(), 0);
        assert_eq!(restored.repair_fraction(), 0.2);
    }

    #[test]
    fn forced_resolve_records_drift_and_counts() {
        let p = base_problem();
        let mut sched = AdaptiveScheduler::new(&p, 0.5).unwrap();
        assert!(sched.last_drift().is_none());
        // Under-threshold drift: observe skips but records the measurement.
        let mild = perturbed(&p, 1.05);
        assert!(!sched.observe(&mild).unwrap());
        let seen = sched.last_drift().unwrap();
        assert!(seen > 0.0 && seen < 0.5, "drift measured: {seen}");
        // Forced resolve ignores the threshold entirely.
        sched.resolve(&mild).unwrap();
        assert_eq!(sched.resolves(), 2);
    }
}
