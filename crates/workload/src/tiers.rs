//! Tiered-deployment scenario generators: canonical relay topologies
//! paired with a paper-style [`Problem`], deterministic from a seed, so
//! the tiered solver, simulator, and `exp_tiers` bench all exercise the
//! same inputs.
//!
//! Two shapes cover the multi-tier design space:
//!
//! * [`two_tier_chain`] — source → relay → edge, where the relay
//!   mirrors the full catalog and the edge carries only the hot half
//!   (the CDN pattern: a regional relay feeding a small edge cache).
//!   Every element sees a single path, so the composed-freshness
//!   recursion is exact.
//! * [`parallel_relay`] — the catalog striped across `relays` sibling
//!   relays that all feed one edge mirror (the sharded-relay pattern).
//!   Stripes are disjoint, so per element this is still a chain and the
//!   recursion stays exact while the *solver* has to coordinate budgets
//!   across sibling tiers.

use freshen_core::error::Result;
use freshen_core::problem::Problem;
use freshen_core::topology::Topology;

use crate::scenario::{Alignment, Scenario};

/// A generated tiered setup: the topology, the element universe, and the
/// total poll budget the experiment should divide across tiers.
#[derive(Debug, Clone)]
pub struct TieredScenario {
    /// Stable scenario identifier for reports.
    pub name: &'static str,
    /// The relay topology, with per-tier budgets already assigned.
    pub topology: Topology,
    /// The element universe (rates, interest, bandwidth).
    pub problem: Problem,
    /// Sum of the per-tier budgets, for budget-split experiments.
    pub total_budget: f64,
}

/// The shared element universe: Table-2-style proportions at any `n`
/// (updates = 2N with σ = 1, syncs = N/2, Zipf(1.0), shuffled change).
fn universe(n: usize, seed: u64) -> Result<Problem> {
    Scenario::builder()
        .num_objects(n)
        .updates_per_period(2.0 * n as f64)
        .syncs_per_period(0.5 * n as f64)
        .zipf_theta(1.0)
        .update_std_dev(1.0)
        .alignment(Alignment::ShuffledChange)
        .seed(seed)
        .build()?
        .problem()
}

/// Source → relay → edge chain. The relay mirrors everything on a
/// budget of `N/2` polls per period; the edge re-mirrors the hottest
/// half (Zipf rank 0..n/2) on a budget of `N/4`.
pub fn two_tier_chain(n: usize, seed: u64) -> Result<TieredScenario> {
    let problem = universe(n, seed)?;
    let relay_budget = 0.5 * n as f64;
    let edge_budget = 0.25 * n as f64;
    let topology = Topology::builder()
        .source("origin")
        .tier("relay", relay_budget)
        .tier("edge", edge_budget)
        .link("origin", "relay")
        .link_subset("relay", "edge", (0..n.div_ceil(2)).collect())
        .build(n)?;
    Ok(TieredScenario {
        name: "two_tier_chain",
        topology,
        problem,
        total_budget: relay_budget + edge_budget,
    })
}

/// The catalog striped round-robin across `relays` sibling relays, all
/// feeding one full-catalog edge mirror. Each relay gets an equal share
/// of an `N/2` relay budget; the edge gets `N/4`.
pub fn parallel_relay(n: usize, relays: usize, seed: u64) -> Result<TieredScenario> {
    let relays = relays.max(1).min(n);
    let problem = universe(n, seed)?;
    let relay_budget = 0.5 * n as f64 / relays as f64;
    let edge_budget = 0.25 * n as f64;
    let mut builder = Topology::builder().source("origin");
    let names: Vec<String> = (0..relays).map(|r| format!("relay{r}")).collect();
    for name in &names {
        builder = builder.tier(name, relay_budget);
    }
    builder = builder.tier("edge", edge_budget);
    for (r, name) in names.iter().enumerate() {
        let stripe: Vec<usize> = (r..n).step_by(relays).collect();
        builder = builder
            .link_subset("origin", name, stripe.clone())
            .link_subset(name, "edge", stripe);
    }
    let topology = builder.build(n)?;
    Ok(TieredScenario {
        name: "parallel_relay",
        topology,
        problem,
        total_budget: relay_budget * relays as f64 + edge_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tier_chain_is_deterministic_and_well_formed() {
        let a = two_tier_chain(64, 9).unwrap();
        let b = two_tier_chain(64, 9).unwrap();
        assert_eq!(a.topology.node_count(), 3);
        assert_eq!(a.problem.len(), 64);
        assert_eq!(
            a.problem.change_rates()[0].to_bits(),
            b.problem.change_rates()[0].to_bits()
        );
        // The edge carries exactly the hot half.
        let edge_link = &a.topology.links()[1];
        assert_eq!(edge_link.elements.as_ref().unwrap().len(), 32);
        assert!(edge_link.carries(0) && !edge_link.carries(63));
        assert!((a.total_budget - 48.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_relay_stripes_cover_the_catalog_disjointly() {
        let s = parallel_relay(60, 3, 4).unwrap();
        assert_eq!(s.topology.node_count(), 5);
        let mut seen = vec![0u32; 60];
        for link in s.topology.links().iter().filter(|l| l.from == 0) {
            for &i in link.elements.as_ref().unwrap() {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // Each element reaches the edge over exactly one relay.
        for i in 0..60 {
            let carriers = s
                .topology
                .links()
                .iter()
                .filter(|l| l.to == s.topology.node_count() - 1 && l.carries(i))
                .count();
            assert_eq!(carriers, 1, "element {i}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = two_tier_chain(32, 1).unwrap();
        let b = two_tier_chain(32, 2).unwrap();
        assert_ne!(
            a.problem.change_rates()[0].to_bits(),
            b.problem.change_rates()[0].to_bits()
        );
    }
}
