//! From-scratch samplers for the distributions the paper's workloads use.
//!
//! * [`Normal`] — Marsaglia polar method (building block for Gamma);
//! * [`Gamma`] — Marsaglia–Tsang squeeze method; parameterized either by
//!   (shape, scale) or by (mean, std-dev) as the paper's `UpdateStdDev`
//!   knob does;
//! * [`Zipf`] — ranked power-law `P(i) ∝ 1/(i+1)^θ` with cumulative-table
//!   inversion for sampling (θ = 0 is uniform; the paper sweeps θ ∈ [0, 1.6]);
//! * [`Pareto`] — heavy-tailed object sizes (the paper's §5.3 uses shape
//!   1.1, mean 1.0, citing Krishnamurthy & Rexford);
//! * [`Exponential`] — inter-arrival times of Poisson processes;
//! * [`poisson_sample`] — Poisson counts (Knuth product method with
//!   splitting for large rates).
//!
//! All samplers take `&mut impl Rng` so callers control seeding and stream
//! independence.

use rand::Rng;

/// Standard normal sampler using the Marsaglia polar method.
///
/// Caches the second variate of each generated pair.
#[derive(Debug, Clone, Default)]
pub struct Normal {
    spare: Option<f64>,
}

impl Normal {
    /// Create a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one standard-normal variate.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }
}

/// Gamma(shape `k`, scale `θ`) sampler — Marsaglia & Tsang (2000).
///
/// Mean `kθ`, variance `kθ²`. The paper draws per-object change rates from
/// a Gamma with a configured mean and standard deviation, so
/// [`Gamma::with_mean_std`] maps `(m, σ) → (k = m²/σ², θ = σ²/m)`.
#[derive(Debug, Clone)]
pub struct Gamma {
    shape: f64,
    scale: f64,
    normal: Normal,
}

impl Gamma {
    /// Create from shape and scale. Both must be positive and finite.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite parameters.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Gamma {
            shape,
            scale,
            normal: Normal::new(),
        }
    }

    /// Create from a target mean and standard deviation (both positive).
    pub fn with_mean_std(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        assert!(
            std_dev.is_finite() && std_dev > 0.0,
            "std_dev must be positive"
        );
        let shape = (mean / std_dev) * (mean / std_dev);
        let scale = std_dev * std_dev / mean;
        Gamma::new(shape, scale)
    }

    /// Distribution shape `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Distribution scale `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Distribution mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Draw one variate.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
            let u: f64 = loop {
                let u: f64 = rng.gen();
                if u > 0.0 {
                    break u;
                }
            };
            return self.sample_shape_ge1(self.shape + 1.0, rng)
                * u.powf(1.0 / self.shape)
                * self.scale;
        }
        self.sample_shape_ge1(self.shape, rng) * self.scale
    }

    /// Unit-scale Marsaglia–Tsang for shape ≥ 1.
    fn sample_shape_ge1(&mut self, shape: f64, rng: &mut impl Rng) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal.sample(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u: f64 = rng.gen();
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

/// Zipf distribution over ranks `0..n`: `P(i) ∝ 1/(i+1)^θ`.
///
/// `θ = 0` is uniform; larger θ concentrates mass on low ranks. The paper
/// cites Padmanabhan & Qiu for θ as high as 1.6 on busy web sites.
#[derive(Debug, Clone)]
pub struct Zipf {
    probs: Vec<f64>,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf over `n` ranks with skew `theta ≥ 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be non-negative"
        );
        let mut probs: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        // Guard against float drift in the last bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { probs, cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no ranks (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The probability vector (sums to 1; rank 0 is the most popular).
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Draw one rank by CDF inversion (binary search, `O(log n)`).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i.min(self.len() - 1),
        }
    }
}

/// Pareto distribution: `P(X > x) = (x_m/x)^a` for `x ≥ x_m`.
///
/// Mean `a·x_m/(a−1)` for `a > 1`. The paper's object sizes use shape
/// `a = 1.1` scaled to mean 1.0, so [`Pareto::with_mean`] handles that
/// mapping: `x_m = mean·(a−1)/a`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    shape: f64,
    scale: f64,
}

impl Pareto {
    /// Create from shape `a > 0` and scale (minimum value) `x_m > 0`.
    ///
    /// # Panics
    /// Panics on non-positive parameters.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Pareto { shape, scale }
    }

    /// Create with a target mean; requires `shape > 1` (otherwise the mean
    /// diverges).
    ///
    /// # Panics
    /// Panics when `shape ≤ 1` or `mean ≤ 0`.
    pub fn with_mean(shape: f64, mean: f64) -> Self {
        assert!(shape > 1.0, "mean is infinite for shape <= 1");
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Pareto::new(shape, mean * (shape - 1.0) / shape)
    }

    /// Distribution shape `a`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Distribution scale (minimum value) `x_m`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Analytic mean (`∞` represented as `f64::INFINITY` for `a ≤ 1`).
    pub fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }

    /// Draw one variate by inverse transform: `x_m / U^{1/a}`.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Exponential distribution with the given rate (mean `1/rate`). Used for
/// Poisson-process inter-arrival times in the simulator.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create with rate `> 0`.
    ///
    /// # Panics
    /// Panics on a non-positive rate.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draw one variate: `−ln(U)/rate`.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / self.rate
    }
}

/// Sample a Poisson(`lambda`) count.
///
/// Knuth's product method for `λ ≤ 30`; larger rates are split in half
/// recursively (`Poisson(λ) = Poisson(λ/2) + Poisson(λ/2)`), which stays
/// exact at any rate. `λ = 0` yields 0.
///
/// # Panics
/// Panics on a negative or non-finite rate.
pub fn poisson_sample(lambda: f64, rng: &mut impl Rng) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let half = lambda / 2.0;
        return poisson_sample(half, rng) + poisson_sample(half, rng);
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        let u: f64 = rng.gen();
        p *= u;
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    const N: usize = 200_000;

    #[test]
    fn normal_moments() {
        let mut r = rng(1);
        let mut n = Normal::new();
        let xs: Vec<f64> = (0..N).map(|_| n.sample(&mut r)).collect();
        assert!(mean(&xs).abs() < 0.01, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.01, "std {}", std_dev(&xs));
    }

    #[test]
    fn normal_symmetry() {
        let mut r = rng(2);
        let mut n = Normal::new();
        let pos = (0..N).filter(|_| n.sample(&mut r) > 0.0).count();
        let frac = pos as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn gamma_moments_shape_ge1() {
        let mut r = rng(3);
        let mut g = Gamma::new(4.0, 0.5); // mean 2, var 1
        let xs: Vec<f64> = (0..N).map(|_| g.sample(&mut r)).collect();
        assert!((mean(&xs) - 2.0).abs() < 0.02, "mean {}", mean(&xs));
        assert!((variance(&xs) - 1.0).abs() < 0.05, "var {}", variance(&xs));
    }

    #[test]
    fn gamma_moments_shape_lt1() {
        let mut r = rng(4);
        let mut g = Gamma::new(0.5, 2.0); // mean 1, var 2
        let xs: Vec<f64> = (0..N).map(|_| g.sample(&mut r)).collect();
        assert!((mean(&xs) - 1.0).abs() < 0.03, "mean {}", mean(&xs));
        assert!((variance(&xs) - 2.0).abs() < 0.15, "var {}", variance(&xs));
    }

    #[test]
    fn gamma_with_mean_std_parameterization() {
        let g = Gamma::with_mean_std(2.0, 1.0);
        assert!((g.shape() - 4.0).abs() < 1e-12);
        assert!((g.scale() - 0.5).abs() < 1e-12);
        assert!((g.mean() - 2.0).abs() < 1e-12);
        // Exponential special case: σ = m ⇒ shape 1.
        let e = Gamma::with_mean_std(2.0, 2.0);
        assert!((e.shape() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_all_positive() {
        let mut r = rng(5);
        let mut g = Gamma::new(0.3, 1.0);
        assert!((0..10_000).all(|_| g.sample(&mut r) > 0.0));
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn gamma_rejects_bad_shape() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for &p in z.probabilities() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_probabilities_normalized_and_decreasing() {
        for theta in [0.4, 0.8, 1.2, 1.6] {
            let z = Zipf::new(1000, theta);
            let sum: f64 = z.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for w in z.probabilities().windows(2) {
                assert!(w[0] > w[1], "Zipf probs strictly decreasing");
            }
        }
    }

    #[test]
    fn zipf_theta1_ratio() {
        // θ=1: p(0)/p(1) = 2.
        let z = Zipf::new(100, 1.0);
        let p = z.probabilities();
        assert!((p[0] / p[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sampling_matches_probabilities() {
        let z = Zipf::new(10, 1.0);
        let mut r = rng(6);
        let mut counts = [0usize; 10];
        for _ in 0..N {
            counts[z.sample(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / N as f64;
            let exp = z.probabilities()[i];
            assert!((emp - exp).abs() < 0.01, "rank {i}: emp {emp} vs exp {exp}");
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        assert_eq!(z.probabilities(), &[1.0]);
        let mut r = rng(7);
        assert_eq!(z.sample(&mut r), 0);
    }

    #[test]
    fn pareto_mean_parameterization() {
        let p = Pareto::with_mean(1.1, 1.0);
        assert!((p.mean() - 1.0).abs() < 1e-12);
        assert!((p.scale() - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_samples_at_least_scale() {
        let p = Pareto::new(2.0, 3.0);
        let mut r = rng(8);
        assert!((0..10_000).all(|_| p.sample(&mut r) >= 3.0));
    }

    #[test]
    fn pareto_sample_mean_near_analytic() {
        // Use a shape with finite variance so the sample mean converges.
        let p = Pareto::with_mean(3.0, 1.0);
        let mut r = rng(9);
        let xs: Vec<f64> = (0..N).map(|_| p.sample(&mut r)).collect();
        assert!((mean(&xs) - 1.0).abs() < 0.02, "mean {}", mean(&xs));
    }

    #[test]
    fn pareto_heavy_tail_shape_1_1() {
        // For a=1.1 most mass is tiny but rare huge values appear: the
        // median is far below the mean.
        let p = Pareto::with_mean(1.1, 1.0);
        let mut r = rng(10);
        let xs: Vec<f64> = (0..N).map(|_| p.sample(&mut r)).collect();
        let med = crate::stats::quantile(&xs, 0.5);
        assert!(med < 0.25, "median {med} should be well below the mean 1.0");
    }

    #[test]
    #[should_panic(expected = "mean is infinite")]
    fn pareto_with_mean_rejects_shape_le1() {
        Pareto::with_mean(1.0, 1.0);
    }

    #[test]
    fn exponential_moments() {
        let e = Exponential::new(4.0);
        let mut r = rng(11);
        let xs: Vec<f64> = (0..N).map(|_| e.sample(&mut r)).collect();
        assert!((mean(&xs) - 0.25).abs() < 0.005, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 0.25).abs() < 0.01);
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let mut r = rng(12);
        let xs: Vec<f64> = (0..N).map(|_| poisson_sample(3.0, &mut r) as f64).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.03, "mean {}", mean(&xs));
        assert!((variance(&xs) - 3.0).abs() < 0.1, "var {}", variance(&xs));
    }

    #[test]
    fn poisson_moments_large_lambda_split_path() {
        let mut r = rng(13);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| poisson_sample(200.0, &mut r) as f64)
            .collect();
        assert!((mean(&xs) - 200.0).abs() < 0.5, "mean {}", mean(&xs));
        assert!((variance(&xs) - 200.0).abs() < 8.0, "var {}", variance(&xs));
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng(14);
        assert_eq!(poisson_sample(0.0, &mut r), 0);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let mut a = rng(99);
        let mut b = rng(99);
        let mut ga = Gamma::new(2.0, 1.0);
        let mut gb = Gamma::new(2.0, 1.0);
        for _ in 0..100 {
            assert_eq!(ga.sample(&mut a), gb.sample(&mut b));
        }
    }
}
