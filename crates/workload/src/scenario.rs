//! Scenario builders reproducing the paper's experimental setups.
//!
//! A [`Scenario`] assembles a [`Problem`] the way the paper does (§2.2.2,
//! §4, §5.3):
//!
//! * **access probabilities** follow a Zipf(θ) over object ranks — object 0
//!   is the hottest; θ = 0 is uniform interest and makes the PF and GF
//!   objectives coincide;
//! * **change frequencies** are drawn from a Gamma whose mean is
//!   `updates_per_period / num_objects` and whose standard deviation is the
//!   `UpdateStdDev` knob, then scaled so they sum to exactly
//!   `updates_per_period` (keeping runs comparable across seeds);
//! * the **alignment** between interest and volatility is one of the
//!   paper's three cases: *aligned* (hot objects change most — the
//!   day-trader case), *reverse* (hot objects are stable), or
//!   *shuffled-change* (independent — the paper's default for comparing
//!   partitioning techniques);
//! * **object sizes** are all 1 (the core problem) or Pareto-distributed
//!   with mean 1 (§5.3, shape 1.1), with their own alignment relative to
//!   the change rates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use freshen_core::error::{CoreError, Result};
use freshen_core::problem::Problem;

use crate::dist::{Gamma, Pareto, Zipf};

/// How user interest relates to change frequency (paper Figure 2 plus the
/// shuffled case of §2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alignment {
    /// Hot objects change the most ("volatile stocks interest day-traders").
    Aligned,
    /// Hot objects change the least.
    Reverse,
    /// No relationship: change rates shuffled independently of interest.
    ShuffledChange,
}

/// Object-size distribution (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every object has size 1 — the fixed-size core problem.
    Uniform,
    /// Pareto-distributed sizes with the given shape, scaled to mean 1.0.
    /// The paper uses shape 1.1 (citing web measurements).
    Pareto {
        /// Pareto shape parameter (must exceed 1 for a finite mean).
        shape: f64,
    },
}

/// How object sizes relate to change frequency (paper Figures 10–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeAlignment {
    /// Largest objects change the most (Figure 10's setup).
    AlignedWithChange,
    /// Largest objects change the least — "large objects like images and
    /// movies rarely change, whereas small objects like stock quotes ...
    /// change quite often" (Figure 11's setup).
    ReverseOfChange,
    /// Sizes independent of change rates.
    Shuffled,
}

/// A fully specified synthetic workload. Construct via [`Scenario::builder`]
/// or the presets [`Scenario::table2`] / [`Scenario::table3`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    num_objects: usize,
    updates_per_period: f64,
    syncs_per_period: f64,
    zipf_theta: f64,
    update_std_dev: f64,
    alignment: Alignment,
    size_dist: SizeDist,
    size_alignment: SizeAlignment,
    seed: u64,
}

impl Scenario {
    /// Start building a scenario. Defaults: uniform sizes, sizes aligned
    /// with change, seed 0.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The paper's Table 2 "ideal experiments" setup: 500 objects, 1000
    /// updates/period (Gamma mean 2, σ = 1), 250 syncs/period, Zipf(θ).
    pub fn table2(theta: f64, alignment: Alignment, seed: u64) -> Scenario {
        Scenario::builder()
            .num_objects(500)
            .updates_per_period(1000.0)
            .syncs_per_period(250.0)
            .zipf_theta(theta)
            .update_std_dev(1.0)
            .alignment(alignment)
            .seed(seed)
            .build()
            .expect("table2 preset is valid")
    }

    /// The paper's Table 3 "big case" setup: 500 000 objects, 1 000 000
    /// updates/period (σ = 2), 250 000 syncs/period, θ = 1.0,
    /// shuffled-change alignment.
    pub fn table3(seed: u64) -> Scenario {
        Scenario::table3_scaled(500_000, seed)
    }

    /// Table 3 with a configurable object count (keeping the paper's
    /// updates = 2N and syncs = N/2 ratios) so the big-case experiments can
    /// be smoke-tested at smaller N.
    pub fn table3_scaled(n: usize, seed: u64) -> Scenario {
        Scenario::builder()
            .num_objects(n)
            .updates_per_period(2.0 * n as f64)
            .syncs_per_period(0.5 * n as f64)
            .zipf_theta(1.0)
            .update_std_dev(2.0)
            .alignment(Alignment::ShuffledChange)
            .seed(seed)
            .build()
            .expect("table3 preset is valid")
    }

    /// Number of mirrored objects.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Total updates per period across all objects.
    pub fn updates_per_period(&self) -> f64 {
        self.updates_per_period
    }

    /// Sync bandwidth per period.
    pub fn syncs_per_period(&self) -> f64 {
        self.syncs_per_period
    }

    /// Zipf skew θ of the interest distribution.
    pub fn zipf_theta(&self) -> f64 {
        self.zipf_theta
    }

    /// Standard deviation of the Gamma change-rate distribution.
    pub fn update_std_dev(&self) -> f64 {
        self.update_std_dev
    }

    /// Interest/volatility alignment.
    pub fn alignment(&self) -> Alignment {
        self.alignment
    }

    /// Object-size distribution.
    pub fn size_dist(&self) -> SizeDist {
        self.size_dist
    }

    /// Size/volatility alignment.
    pub fn size_alignment(&self) -> SizeAlignment {
        self.size_alignment
    }

    /// RNG seed; identical scenarios produce identical problems.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A copy with a different θ (for skew sweeps).
    pub fn with_theta(&self, theta: f64) -> Scenario {
        Scenario {
            zipf_theta: theta,
            ..self.clone()
        }
    }

    /// A copy with a different alignment.
    pub fn with_alignment(&self, alignment: Alignment) -> Scenario {
        Scenario {
            alignment,
            ..self.clone()
        }
    }

    /// Materialize the [`Problem`] instance for this scenario.
    ///
    /// Deterministic in the scenario (including seed).
    pub fn problem(&self) -> Result<Problem> {
        let n = self.num_objects;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Interest: Zipf by object id, object 0 hottest.
        let probs = Zipf::new(n, self.zipf_theta).probabilities().to_vec();

        // Change rates: Gamma(mean = U/N, σ), sorted descending, then
        // placed against the interest ranking per the alignment.
        let mean_rate = self.updates_per_period / n as f64;
        let mut gamma = Gamma::with_mean_std(mean_rate, self.update_std_dev);
        let mut sorted_rates: Vec<f64> = (0..n).map(|_| gamma.sample(&mut rng)).collect();
        // Scale so the total update volume is exact.
        let total: f64 = sorted_rates.iter().sum();
        if total > 0.0 {
            let scale = self.updates_per_period / total;
            for r in &mut sorted_rates {
                *r *= scale;
            }
        }
        sorted_rates.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));

        // perm[i] = which descending-rank change rate object i receives.
        let perm: Vec<usize> = match self.alignment {
            Alignment::Aligned => (0..n).collect(),
            Alignment::Reverse => (0..n).rev().collect(),
            Alignment::ShuffledChange => {
                let mut p: Vec<usize> = (0..n).collect();
                p.shuffle(&mut rng);
                p
            }
        };
        let change_rates: Vec<f64> = perm.iter().map(|&r| sorted_rates[r]).collect();

        // Sizes, if any, get their own ordering relative to change rank.
        let sizes = match self.size_dist {
            SizeDist::Uniform => None,
            SizeDist::Pareto { shape } => {
                let pareto = Pareto::with_mean(shape, 1.0);
                let mut sorted_sizes: Vec<f64> = (0..n).map(|_| pareto.sample(&mut rng)).collect();
                sorted_sizes.sort_by(|a, b| b.partial_cmp(a).expect("sizes are finite"));
                let sizes: Vec<f64> = match self.size_alignment {
                    SizeAlignment::AlignedWithChange => {
                        perm.iter().map(|&r| sorted_sizes[r]).collect()
                    }
                    SizeAlignment::ReverseOfChange => {
                        perm.iter().map(|&r| sorted_sizes[n - 1 - r]).collect()
                    }
                    SizeAlignment::Shuffled => {
                        sorted_sizes.shuffle(&mut rng);
                        sorted_sizes
                    }
                };
                Some(sizes)
            }
        };

        let mut builder = Problem::builder()
            .change_rates(change_rates)
            .access_probs(probs)
            .bandwidth(self.syncs_per_period);
        if let Some(s) = sizes {
            builder = builder.sizes(s);
        }
        builder.build()
    }
}

/// Named stress workloads for the scenario stress matrix: shapes the
/// baseline Zipf/Gamma machinery does not reach. Selectable by name from
/// the fleet spec and usable anywhere a [`Problem`] is (engine runs,
/// `freshen serve`, bench binaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressScenario {
    /// Flash crowd: a tiny hot set (~1% of objects) absorbs an access
    /// spike while also being the most volatile — the "breaking news"
    /// case where interest and churn pile onto the same objects and
    /// bandwidth is starved relative to the update volume.
    FlashCrowd,
    /// Diurnal cycle: interest follows a raised cosine over object index
    /// (a timezone-population model) while change activity runs in
    /// anti-phase — what is being read now changed least recently.
    Diurnal,
}

impl StressScenario {
    /// Every named stress generator, for enumeration in specs and docs.
    pub const ALL: [StressScenario; 2] = [StressScenario::FlashCrowd, StressScenario::Diurnal];

    /// Parse a spec-facing name (`flash-crowd`, `diurnal`).
    pub fn from_name(name: &str) -> Option<StressScenario> {
        match name {
            "flash-crowd" => Some(StressScenario::FlashCrowd),
            "diurnal" => Some(StressScenario::Diurnal),
            _ => None,
        }
    }

    /// The spec-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            StressScenario::FlashCrowd => "flash-crowd",
            StressScenario::Diurnal => "diurnal",
        }
    }

    /// Materialize the stressed [`Problem`]: `num_objects` objects whose
    /// change rates sum to exactly `updates_per_period` against
    /// `syncs_per_period` of bandwidth. Deterministic in the seed.
    pub fn problem(
        &self,
        num_objects: usize,
        updates_per_period: f64,
        syncs_per_period: f64,
        seed: u64,
    ) -> Result<Problem> {
        if num_objects == 0 {
            return Err(CoreError::Empty);
        }
        for (what, v) in [
            ("updates_per_period", updates_per_period),
            ("syncs_per_period", syncs_per_period),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what,
                    index: None,
                    value: v,
                });
            }
        }
        let n = num_objects;
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut weights, mut rates): (Vec<f64>, Vec<f64>) = match self {
            StressScenario::FlashCrowd => {
                // Zipf base interest with the hot set spiked 50x, and the
                // same hot set drawing the largest change rates (aligned).
                let hot = (n / 100).max(1);
                let weights: Vec<f64> = Zipf::new(n, 1.0)
                    .probabilities()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| if i < hot { p * 50.0 } else { *p })
                    .collect();
                let mut gamma = Gamma::with_mean_std(updates_per_period / n as f64, 2.0);
                let mut rates: Vec<f64> = (0..n).map(|_| gamma.sample(&mut rng)).collect();
                rates.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));
                (weights, rates)
            }
            StressScenario::Diurnal => {
                // Raised cosines over object index; change runs half a
                // cycle behind interest. Gamma jitter keeps objects
                // distinguishable and makes the seed matter.
                let mut jitter = Gamma::with_mean_std(1.0, 0.25);
                let phase = |i: usize| 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                let weights: Vec<f64> = (0..n)
                    .map(|i| (1.0 + 0.8 * phase(i).cos()) * jitter.sample(&mut rng))
                    .collect();
                let rates: Vec<f64> = (0..n)
                    .map(|i| {
                        (1.0 + 0.8 * (phase(i) + std::f64::consts::PI).cos())
                            * jitter.sample(&mut rng)
                    })
                    .collect();
                (weights, rates)
            }
        };
        let weight_total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= weight_total;
        }
        let rate_total: f64 = rates.iter().sum();
        if rate_total > 0.0 {
            let scale = updates_per_period / rate_total;
            for r in &mut rates {
                *r *= scale;
            }
        }
        Problem::builder()
            .change_rates(rates)
            .access_probs(weights)
            .bandwidth(syncs_per_period)
            .build()
    }
}

/// Builder for [`Scenario`] with validation on [`build`].
///
/// [`build`]: ScenarioBuilder::build
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    num_objects: usize,
    updates_per_period: f64,
    syncs_per_period: f64,
    zipf_theta: f64,
    update_std_dev: f64,
    alignment: Alignment,
    size_dist: SizeDist,
    size_alignment: SizeAlignment,
    seed: u64,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            num_objects: 0,
            updates_per_period: 0.0,
            syncs_per_period: 0.0,
            zipf_theta: 0.0,
            update_std_dev: 1.0,
            alignment: Alignment::ShuffledChange,
            size_dist: SizeDist::Uniform,
            size_alignment: SizeAlignment::AlignedWithChange,
            seed: 0,
        }
    }
}

impl ScenarioBuilder {
    /// Number of mirrored objects (required, > 0).
    pub fn num_objects(mut self, n: usize) -> Self {
        self.num_objects = n;
        self
    }

    /// Total source updates per period (required, > 0).
    pub fn updates_per_period(mut self, u: f64) -> Self {
        self.updates_per_period = u;
        self
    }

    /// Sync bandwidth per period (required, > 0).
    pub fn syncs_per_period(mut self, b: f64) -> Self {
        self.syncs_per_period = b;
        self
    }

    /// Zipf skew θ ≥ 0 of the interest distribution (default 0 = uniform).
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Standard deviation of the change-rate Gamma (default 1.0).
    pub fn update_std_dev(mut self, sd: f64) -> Self {
        self.update_std_dev = sd;
        self
    }

    /// Interest/volatility alignment (default shuffled).
    pub fn alignment(mut self, a: Alignment) -> Self {
        self.alignment = a;
        self
    }

    /// Object-size distribution (default uniform 1.0).
    pub fn size_dist(mut self, d: SizeDist) -> Self {
        self.size_dist = d;
        self
    }

    /// Size/volatility alignment (default aligned with change).
    pub fn size_alignment(mut self, a: SizeAlignment) -> Self {
        self.size_alignment = a;
        self
    }

    /// RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate and construct.
    pub fn build(self) -> Result<Scenario> {
        if self.num_objects == 0 {
            return Err(CoreError::Empty);
        }
        for (what, v) in [
            ("updates_per_period", self.updates_per_period),
            ("syncs_per_period", self.syncs_per_period),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what,
                    index: None,
                    value: v,
                });
            }
        }
        if !self.zipf_theta.is_finite() || self.zipf_theta < 0.0 {
            return Err(CoreError::InvalidValue {
                what: "zipf_theta",
                index: None,
                value: self.zipf_theta,
            });
        }
        if !self.update_std_dev.is_finite() || self.update_std_dev <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "update_std_dev",
                index: None,
                value: self.update_std_dev,
            });
        }
        if let SizeDist::Pareto { shape } = self.size_dist {
            if !shape.is_finite() || shape <= 1.0 {
                return Err(CoreError::InvalidValue {
                    what: "pareto shape",
                    index: None,
                    value: shape,
                });
            }
        }
        Ok(Scenario {
            num_objects: self.num_objects,
            updates_per_period: self.updates_per_period,
            syncs_per_period: self.syncs_per_period,
            zipf_theta: self.zipf_theta,
            update_std_dev: self.update_std_dev,
            alignment: self.alignment,
            size_dist: self.size_dist,
            size_alignment: self.size_alignment,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_correlation_sign(a: &[f64], b: &[f64]) -> f64 {
        // Crude sign of association: compare top-half means.
        let n = a.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&i, &j| b[j].partial_cmp(&b[i]).unwrap());
        let top: f64 = idx[..n / 2].iter().map(|&i| a[i]).sum();
        let bot: f64 = idx[n / 2..].iter().map(|&i| a[i]).sum();
        top - bot
    }

    #[test]
    fn table2_preset_matches_paper() {
        let s = Scenario::table2(0.8, Alignment::Aligned, 1);
        assert_eq!(s.num_objects(), 500);
        assert_eq!(s.updates_per_period(), 1000.0);
        assert_eq!(s.syncs_per_period(), 250.0);
        let p = s.problem().unwrap();
        assert_eq!(p.len(), 500);
        let total: f64 = p.change_rates().iter().sum();
        assert!((total - 1000.0).abs() < 1e-6, "rates sum to update volume");
        assert!((p.bandwidth() - 250.0).abs() < 1e-12);
        assert!(p.has_uniform_sizes());
    }

    #[test]
    fn problem_is_deterministic_in_seed() {
        let a = Scenario::table2(1.0, Alignment::ShuffledChange, 7)
            .problem()
            .unwrap();
        let b = Scenario::table2(1.0, Alignment::ShuffledChange, 7)
            .problem()
            .unwrap();
        assert_eq!(a, b);
        let c = Scenario::table2(1.0, Alignment::ShuffledChange, 8)
            .problem()
            .unwrap();
        assert_ne!(a.change_rates(), c.change_rates());
    }

    #[test]
    fn aligned_puts_high_rates_on_hot_objects() {
        let p = Scenario::table2(1.2, Alignment::Aligned, 3)
            .problem()
            .unwrap();
        // Object 0 is hottest and must have the highest change rate.
        let rates = p.change_rates();
        assert!(rates.windows(2).all(|w| w[0] >= w[1]), "rates descending");
        assert!(rank_correlation_sign(rates, p.access_probs()) > 0.0);
    }

    #[test]
    fn reverse_puts_low_rates_on_hot_objects() {
        let p = Scenario::table2(1.2, Alignment::Reverse, 3)
            .problem()
            .unwrap();
        let rates = p.change_rates();
        assert!(rates.windows(2).all(|w| w[0] <= w[1]), "rates ascending");
        assert!(rank_correlation_sign(rates, p.access_probs()) < 0.0);
    }

    #[test]
    fn shuffled_breaks_ordering() {
        let p = Scenario::table2(1.2, Alignment::ShuffledChange, 3)
            .problem()
            .unwrap();
        let rates = p.change_rates();
        let asc = rates.windows(2).all(|w| w[0] <= w[1]);
        let desc = rates.windows(2).all(|w| w[0] >= w[1]);
        assert!(!asc && !desc, "shuffled rates are not sorted");
    }

    #[test]
    fn alignment_changes_pairing_not_values() {
        let base = Scenario::table2(1.0, Alignment::Aligned, 5);
        let mut a: Vec<f64> = base.problem().unwrap().change_rates().to_vec();
        let mut b: Vec<f64> = base
            .with_alignment(Alignment::Reverse)
            .problem()
            .unwrap()
            .change_rates()
            .to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "same multiset of rates");
        }
    }

    #[test]
    fn pareto_sizes_have_mean_one_ish() {
        let s = Scenario::builder()
            .num_objects(5000)
            .updates_per_period(10_000.0)
            .syncs_per_period(2500.0)
            .size_dist(SizeDist::Pareto { shape: 2.5 })
            .seed(11)
            .build()
            .unwrap();
        let p = s.problem().unwrap();
        assert!(!p.has_uniform_sizes());
        let mean: f64 = p.sizes().iter().sum::<f64>() / p.len() as f64;
        assert!((mean - 1.0).abs() < 0.1, "size mean {mean}");
    }

    #[test]
    fn size_reverse_of_change_anticorrelates() {
        let s = Scenario::builder()
            .num_objects(1000)
            .updates_per_period(2000.0)
            .syncs_per_period(500.0)
            .alignment(Alignment::Aligned)
            .size_dist(SizeDist::Pareto { shape: 1.1 })
            .size_alignment(SizeAlignment::ReverseOfChange)
            .seed(13)
            .build()
            .unwrap();
        let p = s.problem().unwrap();
        assert!(
            rank_correlation_sign(p.sizes(), p.change_rates()) < 0.0,
            "fast-changing objects are small"
        );
    }

    #[test]
    fn size_aligned_with_change_correlates_under_shuffle() {
        let s = Scenario::builder()
            .num_objects(1000)
            .updates_per_period(2000.0)
            .syncs_per_period(500.0)
            .alignment(Alignment::ShuffledChange)
            .size_dist(SizeDist::Pareto { shape: 1.1 })
            .size_alignment(SizeAlignment::AlignedWithChange)
            .seed(17)
            .build()
            .unwrap();
        let p = s.problem().unwrap();
        assert!(
            rank_correlation_sign(p.sizes(), p.change_rates()) > 0.0,
            "size ranking follows change ranking even when both are shuffled vs interest"
        );
    }

    #[test]
    fn theta_zero_uniform_interest() {
        let p = Scenario::table2(0.0, Alignment::Aligned, 1)
            .problem()
            .unwrap();
        for &prob in p.access_probs() {
            assert!((prob - 1.0 / 500.0).abs() < 1e-12);
        }
    }

    #[test]
    fn builder_validation() {
        assert!(Scenario::builder().build().is_err());
        assert!(Scenario::builder()
            .num_objects(10)
            .updates_per_period(0.0)
            .syncs_per_period(1.0)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .num_objects(10)
            .updates_per_period(1.0)
            .syncs_per_period(1.0)
            .zipf_theta(-0.5)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .num_objects(10)
            .updates_per_period(1.0)
            .syncs_per_period(1.0)
            .size_dist(SizeDist::Pareto { shape: 1.0 })
            .build()
            .is_err());
    }

    #[test]
    fn table3_scaled_keeps_ratios() {
        let s = Scenario::table3_scaled(1000, 2);
        assert_eq!(s.num_objects(), 1000);
        assert_eq!(s.updates_per_period(), 2000.0);
        assert_eq!(s.syncs_per_period(), 500.0);
        assert_eq!(s.zipf_theta(), 1.0);
        assert_eq!(s.update_std_dev(), 2.0);
    }

    #[test]
    fn stress_names_round_trip() {
        for s in StressScenario::ALL {
            assert_eq!(StressScenario::from_name(s.name()), Some(s));
        }
        assert_eq!(StressScenario::from_name("baseline"), None);
    }

    #[test]
    fn stress_problems_are_deterministic_and_scaled() {
        for s in StressScenario::ALL {
            let a = s.problem(400, 800.0, 200.0, 5).unwrap();
            let b = s.problem(400, 800.0, 200.0, 5).unwrap();
            assert_eq!(a, b, "{} deterministic in seed", s.name());
            let c = s.problem(400, 800.0, 200.0, 6).unwrap();
            assert_ne!(a.change_rates(), c.change_rates());
            let total: f64 = a.change_rates().iter().sum();
            assert!((total - 800.0).abs() < 1e-6, "{} rates scaled", s.name());
            let mass: f64 = a.access_probs().iter().sum();
            assert!((mass - 1.0).abs() < 1e-9, "{} probs normalized", s.name());
        }
    }

    #[test]
    fn flash_crowd_spikes_a_volatile_hot_set() {
        let p = StressScenario::FlashCrowd
            .problem(1000, 2000.0, 500.0, 3)
            .unwrap();
        let probs = p.access_probs();
        let hot: f64 = probs[..10].iter().sum();
        assert!(hot > 0.5, "1% of objects carry most interest: {hot}");
        assert!(
            p.change_rates().windows(2).all(|w| w[0] >= w[1]),
            "hot objects are also the most volatile"
        );
        assert!(
            rank_correlation_sign(p.change_rates(), probs) > 0.0,
            "interest and churn aligned"
        );
    }

    #[test]
    fn diurnal_interest_and_change_run_in_anti_phase() {
        let p = StressScenario::Diurnal
            .problem(1000, 2000.0, 500.0, 3)
            .unwrap();
        assert!(
            rank_correlation_sign(p.change_rates(), p.access_probs()) < 0.0,
            "what is read now changed least recently"
        );
    }

    #[test]
    fn stress_validation_rejects_bad_knobs() {
        let s = StressScenario::FlashCrowd;
        assert!(s.problem(0, 1.0, 1.0, 0).is_err());
        assert!(s.problem(10, 0.0, 1.0, 0).is_err());
        assert!(s.problem(10, 1.0, f64::NAN, 0).is_err());
    }

    #[test]
    fn with_theta_only_changes_theta() {
        let a = Scenario::table2(0.4, Alignment::Aligned, 9);
        let b = a.with_theta(1.6);
        assert_eq!(b.zipf_theta(), 1.6);
        assert_eq!(b.seed(), a.seed());
        assert_eq!(b.num_objects(), a.num_objects());
        // Change rates identical across θ (same seed, same draw order).
        let pa = a.problem().unwrap();
        let pb = b.problem().unwrap();
        assert_eq!(pa.change_rates(), pb.change_rates());
    }
}
