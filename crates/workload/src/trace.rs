//! Request/poll trace records: the raw material for learning profiles and
//! change rates from production logs (paper §7: profiles can come "from a
//! simple learning algorithm that monitors the system request log"; §2:
//! change-frequency estimates come from observed polls).
//!
//! Two line-oriented CSV formats, chosen to be trivially producible by any
//! log shipper:
//!
//! * **access log** — `time,element` per user request;
//! * **poll log** — `time,element,changed` per refresh poll (`changed` is
//!   `0`/`1` or `false`/`true`), recording whether the poll found new
//!   content.
//!
//! Lines starting with `#` and a leading `time,element[,changed]` header
//! are skipped, so the files round-trip through the writers here.

use std::fmt::Write as _;

use freshen_core::error::{CoreError, Result};
use freshen_core::estimate::ChangeRateEstimator;
use freshen_core::profile::ProfileEstimator;

/// One user request against the mirror.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRecord {
    /// Event time (periods).
    pub time: f64,
    /// Accessed element.
    pub element: usize,
}

/// One refresh poll and whether it detected a change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollRecord {
    /// Event time (periods).
    pub time: f64,
    /// Polled element.
    pub element: usize,
    /// Did the poll find new content?
    pub changed: bool,
}

fn is_skippable(line: &str, header: &str) -> bool {
    let trimmed = line.trim();
    trimmed.is_empty() || trimmed.starts_with('#') || trimmed.eq_ignore_ascii_case(header)
}

fn parse_err(what: &'static str, line_no: usize, line: &str) -> CoreError {
    CoreError::InvalidConfig(format!("{what} at line {line_no}: `{line}`"))
}

/// Parse an access log (`time,element` lines).
pub fn parse_access_log(text: &str) -> Result<Vec<AccessRecord>> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if is_skippable(line, "time,element") {
            continue;
        }
        let mut parts = line.trim().split(',');
        let time: f64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("bad access time", idx + 1, line))?;
        let element: usize = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("bad access element", idx + 1, line))?;
        if parts.next().is_some() {
            return Err(parse_err("trailing fields in access record", idx + 1, line));
        }
        if !time.is_finite() || time < 0.0 {
            return Err(parse_err(
                "negative or non-finite access time",
                idx + 1,
                line,
            ));
        }
        out.push(AccessRecord { time, element });
    }
    Ok(out)
}

/// Parse a poll log (`time,element,changed` lines).
pub fn parse_poll_log(text: &str) -> Result<Vec<PollRecord>> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if is_skippable(line, "time,element,changed") {
            continue;
        }
        let mut parts = line.trim().split(',');
        let time: f64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("bad poll time", idx + 1, line))?;
        let element: usize = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("bad poll element", idx + 1, line))?;
        let changed = match parts.next().map(|v| v.trim()) {
            Some("0") | Some("false") => false,
            Some("1") | Some("true") => true,
            _ => return Err(parse_err("bad poll changed flag", idx + 1, line)),
        };
        if parts.next().is_some() {
            return Err(parse_err("trailing fields in poll record", idx + 1, line));
        }
        if !time.is_finite() || time < 0.0 {
            return Err(parse_err("negative or non-finite poll time", idx + 1, line));
        }
        out.push(PollRecord {
            time,
            element,
            changed,
        });
    }
    Ok(out)
}

/// Serialize an access log (with header) — inverse of [`parse_access_log`].
pub fn write_access_log(records: &[AccessRecord]) -> String {
    let mut s = String::from("time,element\n");
    for r in records {
        let _ = writeln!(s, "{:.6},{}", r.time, r.element);
    }
    s
}

/// Serialize a poll log (with header) — inverse of [`parse_poll_log`].
pub fn write_poll_log(records: &[PollRecord]) -> String {
    let mut s = String::from("time,element,changed\n");
    for r in records {
        let _ = writeln!(s, "{:.6},{},{}", r.time, r.element, u8::from(r.changed));
    }
    s
}

/// Estimates learned from logs: everything needed to build a [`Problem`]
/// once a bandwidth budget is chosen.
///
/// [`Problem`]: freshen_core::problem::Problem
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedParameters {
    /// Access probabilities (smoothed, strictly positive).
    pub access_probs: Vec<f64>,
    /// Bias-reduced change-rate estimates per element (per period).
    pub change_rates: Vec<f64>,
    /// Number of access records consumed.
    pub accesses_seen: usize,
    /// Number of poll records consumed.
    pub polls_seen: usize,
}

/// Learn access probabilities and change rates from logs.
///
/// * `n` — mirror size; records referencing elements `≥ n` are rejected.
/// * `smoothing` — uniform pseudo-count added to access tallies so
///   never-accessed objects keep a small positive probability.
/// * Elements never polled receive `fallback_rate`.
///
/// Change-rate estimation treats each element's polls as evenly spaced
/// over the observed poll-log time span (the Fixed-Order scheduler makes
/// this exact; for irregular logs it is the mean-interval approximation).
pub fn learn_from_logs(
    n: usize,
    accesses: &[AccessRecord],
    polls: &[PollRecord],
    smoothing: f64,
    fallback_rate: f64,
) -> Result<LearnedParameters> {
    if n == 0 {
        return Err(CoreError::Empty);
    }
    let mut profile = ProfileEstimator::new(n, 1.0)?;
    for (idx, a) in accesses.iter().enumerate() {
        if a.element >= n {
            return Err(CoreError::InvalidValue {
                what: "access element",
                index: Some(idx),
                value: a.element as f64,
            });
        }
        profile.observe(a.element);
    }

    let span = polls
        .iter()
        .map(|p| p.time)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut rates = ChangeRateEstimator::new(n, 1.0)?;
    let mut poll_counts = vec![0u64; n];
    for (idx, p) in polls.iter().enumerate() {
        if p.element >= n {
            return Err(CoreError::InvalidValue {
                what: "poll element",
                index: Some(idx),
                value: p.element as f64,
            });
        }
        rates.record_poll(p.element, p.changed);
        poll_counts[p.element] += 1;
    }
    // The batch estimator assumes unit poll intervals; correct each
    // element's rate by its actual mean interval (span / count).
    let raw = rates.rates(fallback_rate);
    let change_rates: Vec<f64> = raw
        .iter()
        .zip(&poll_counts)
        .map(|(&r, &count)| {
            if count == 0 {
                fallback_rate
            } else {
                // estimate_bias_reduced scales as 1/interval; undo the
                // unit-interval assumption.
                r * count as f64 / span
            }
        })
        .collect();

    Ok(LearnedParameters {
        access_probs: profile.access_probs_smoothed(smoothing),
        change_rates,
        accesses_seen: accesses.len(),
        polls_seen: polls.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_log_roundtrip() {
        let records = vec![
            AccessRecord {
                time: 0.5,
                element: 3,
            },
            AccessRecord {
                time: 1.25,
                element: 0,
            },
        ];
        let text = write_access_log(&records);
        let parsed = parse_access_log(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn poll_log_roundtrip() {
        let records = vec![
            PollRecord {
                time: 0.1,
                element: 1,
                changed: true,
            },
            PollRecord {
                time: 0.2,
                element: 2,
                changed: false,
            },
        ];
        let text = write_poll_log(&records);
        assert_eq!(parse_poll_log(&text).unwrap(), records);
    }

    #[test]
    fn parser_skips_comments_blanks_and_header() {
        let text = "# produced by logshipper\n\ntime,element\n0.5,2\n";
        let parsed = parse_access_log(text).unwrap();
        assert_eq!(
            parsed,
            vec![AccessRecord {
                time: 0.5,
                element: 2
            }]
        );
    }

    #[test]
    fn parser_accepts_bool_words_for_changed() {
        let parsed = parse_poll_log("1.0,0,true\n2.0,0,false\n").unwrap();
        assert!(parsed[0].changed && !parsed[1].changed);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_access_log("abc,1").is_err());
        assert!(parse_access_log("1.0").is_err());
        assert!(parse_access_log("1.0,2,extra").is_err());
        assert!(parse_access_log("-1.0,2").is_err());
        assert!(parse_poll_log("1.0,2").is_err());
        assert!(parse_poll_log("1.0,2,maybe").is_err());
    }

    #[test]
    fn parse_error_reports_line_number() {
        let err = parse_access_log("1.0,2\nbogus,3\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn learn_from_logs_recovers_profile_mix() {
        // 3 elements; element 0 accessed 6x, element 1 3x, element 2 1x.
        let accesses: Vec<AccessRecord> = [0, 0, 0, 0, 0, 0, 1, 1, 1, 2]
            .iter()
            .enumerate()
            .map(|(i, &e)| AccessRecord {
                time: i as f64 * 0.1,
                element: e,
            })
            .collect();
        let learned = learn_from_logs(3, &accesses, &[], 0.01, 1.0).unwrap();
        assert!(learned.access_probs[0] > learned.access_probs[1]);
        assert!(learned.access_probs[1] > learned.access_probs[2]);
        assert!(learned.access_probs[2] > 0.0, "smoothing keeps positives");
        let sum: f64 = learned.access_probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learn_from_logs_recovers_change_rates() {
        // Element 0 polled 100 times over 50 periods (interval 0.5), the
        // ratio of changed polls matching λ = 2: 1 − e^{−1} ≈ 0.632.
        let mut polls = Vec::new();
        for k in 0..100 {
            let t = (k + 1) as f64 * 0.5;
            let changed = k % 5 != 0; // 80% change ratio ⇒ λ ≈ −ln(0.2)/0.5 ≈ 3.2
            polls.push(PollRecord {
                time: t,
                element: 0,
                changed,
            });
        }
        let learned = learn_from_logs(
            2,
            &[AccessRecord {
                time: 0.0,
                element: 0,
            }],
            &polls,
            0.5,
            9.0,
        )
        .unwrap();
        let expected = -(0.2f64.ln()) / 0.5;
        assert!(
            (learned.change_rates[0] - expected).abs() < expected * 0.1,
            "estimated {} vs {expected}",
            learned.change_rates[0]
        );
        // Element 1 never polled: gets the fallback.
        assert_eq!(learned.change_rates[1], 9.0);
    }

    #[test]
    fn learn_from_logs_rejects_out_of_range_elements() {
        let accesses = [AccessRecord {
            time: 0.0,
            element: 5,
        }];
        assert!(learn_from_logs(3, &accesses, &[], 0.1, 1.0).is_err());
        let polls = [PollRecord {
            time: 0.0,
            element: 7,
            changed: true,
        }];
        assert!(learn_from_logs(3, &[], &polls, 0.1, 1.0).is_err());
    }

    #[test]
    fn learn_from_logs_empty_mirror_rejected() {
        assert!(learn_from_logs(0, &[], &[], 0.1, 1.0).is_err());
    }
}
