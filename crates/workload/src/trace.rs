//! Request/poll trace records: the raw material for learning profiles and
//! change rates from production logs (paper §7: profiles can come "from a
//! simple learning algorithm that monitors the system request log"; §2:
//! change-frequency estimates come from observed polls).
//!
//! Two line-oriented CSV formats, chosen to be trivially producible by any
//! log shipper:
//!
//! * **access log** — `time,element` per user request;
//! * **poll log** — `time,element,changed` per refresh poll (`changed` is
//!   `0`/`1` or `false`/`true`), recording whether the poll found new
//!   content.
//!
//! Lines starting with `#` and a leading `time,element[,changed]` header
//! are skipped, so the files round-trip through the writers here.

use std::fmt::Write as _;
use std::io::BufRead;

use freshen_core::error::{CoreError, Result};
use freshen_core::estimate::ChangeRateEstimator;
use freshen_core::profile::ProfileEstimator;

/// One user request against the mirror.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRecord {
    /// Event time (periods).
    pub time: f64,
    /// Accessed element.
    pub element: usize,
}

/// One refresh poll and whether it detected a change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollRecord {
    /// Event time (periods).
    pub time: f64,
    /// Polled element.
    pub element: usize,
    /// Did the poll find new content?
    pub changed: bool,
}

fn is_skippable(line: &str, header: &str) -> bool {
    let trimmed = line.trim();
    trimmed.is_empty() || trimmed.starts_with('#') || trimmed.eq_ignore_ascii_case(header)
}

fn parse_err(what: &'static str, line_no: usize, line: &str) -> CoreError {
    CoreError::InvalidConfig(format!("{what} at line {line_no}: `{line}`"))
}

/// Parse one access-log data line (`time,element`). `line_no` is 1-based
/// and only used for error messages.
fn parse_access_line(line: &str, line_no: usize) -> Result<AccessRecord> {
    let mut parts = line.trim().split(',');
    let time: f64 = parts
        .next()
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| parse_err("bad access time", line_no, line))?;
    let element: usize = parts
        .next()
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| parse_err("bad access element", line_no, line))?;
    if parts.next().is_some() {
        return Err(parse_err("trailing fields in access record", line_no, line));
    }
    if !time.is_finite() || time < 0.0 {
        return Err(parse_err(
            "negative or non-finite access time",
            line_no,
            line,
        ));
    }
    Ok(AccessRecord { time, element })
}

/// Parse one poll-log data line (`time,element,changed`).
fn parse_poll_line(line: &str, line_no: usize) -> Result<PollRecord> {
    let mut parts = line.trim().split(',');
    let time: f64 = parts
        .next()
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| parse_err("bad poll time", line_no, line))?;
    let element: usize = parts
        .next()
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| parse_err("bad poll element", line_no, line))?;
    let changed = match parts.next().map(|v| v.trim()) {
        Some("0") | Some("false") => false,
        Some("1") | Some("true") => true,
        _ => return Err(parse_err("bad poll changed flag", line_no, line)),
    };
    if parts.next().is_some() {
        return Err(parse_err("trailing fields in poll record", line_no, line));
    }
    if !time.is_finite() || time < 0.0 {
        return Err(parse_err("negative or non-finite poll time", line_no, line));
    }
    Ok(PollRecord {
        time,
        element,
        changed,
    })
}

/// Streaming access-log reader: yields one [`AccessRecord`] per data line
/// of any [`BufRead`] source, holding only the current line in memory —
/// this is how the online engine replays multi-gigabyte request logs.
///
/// Comments, blank lines, and the `time,element` header are skipped, like
/// the eager [`parse_access_log`] (which is now a wrapper over this).
#[derive(Debug)]
pub struct AccessLogReader<R> {
    input: R,
    buf: String,
    line_no: usize,
}

impl<R: BufRead> AccessLogReader<R> {
    /// Wrap a buffered reader (a `BufReader<File>`, `&[u8]`, …).
    pub fn new(input: R) -> Self {
        AccessLogReader {
            input,
            buf: String::new(),
            line_no: 0,
        }
    }
}

impl<R: BufRead> Iterator for AccessLogReader<R> {
    type Item = Result<AccessRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        next_data_line(
            &mut self.input,
            &mut self.buf,
            &mut self.line_no,
            "time,element",
        )
        .map(|res| res.and_then(|line_no| parse_access_line(self.buf.trim_end(), line_no)))
    }
}

/// Streaming poll-log reader: the `time,element,changed` counterpart of
/// [`AccessLogReader`].
#[derive(Debug)]
pub struct PollLogReader<R> {
    input: R,
    buf: String,
    line_no: usize,
}

impl<R: BufRead> PollLogReader<R> {
    /// Wrap a buffered reader (a `BufReader<File>`, `&[u8]`, …).
    pub fn new(input: R) -> Self {
        PollLogReader {
            input,
            buf: String::new(),
            line_no: 0,
        }
    }
}

impl<R: BufRead> Iterator for PollLogReader<R> {
    type Item = Result<PollRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        next_data_line(
            &mut self.input,
            &mut self.buf,
            &mut self.line_no,
            "time,element,changed",
        )
        .map(|res| res.and_then(|line_no| parse_poll_line(self.buf.trim_end(), line_no)))
    }
}

/// Advance `input` to the next non-skippable line, leaving it in `buf`.
/// Returns `None` at end of input, `Some(Ok(line_no))` when `buf` holds a
/// data line, and `Some(Err(_))` on I/O failure.
fn next_data_line(
    input: &mut dyn BufRead,
    buf: &mut String,
    line_no: &mut usize,
    header: &str,
) -> Option<Result<usize>> {
    loop {
        buf.clear();
        match input.read_line(buf) {
            Ok(0) => return None,
            Ok(_) => {
                *line_no += 1;
                if !is_skippable(buf, header) {
                    return Some(Ok(*line_no));
                }
            }
            Err(e) => {
                return Some(Err(CoreError::InvalidConfig(format!(
                    "log read failed after line {line_no}: {e}"
                ))))
            }
        }
    }
}

/// Parse an access log (`time,element` lines) eagerly into a vector —
/// a thin wrapper over the streaming [`AccessLogReader`].
pub fn parse_access_log(text: &str) -> Result<Vec<AccessRecord>> {
    AccessLogReader::new(text.as_bytes()).collect()
}

/// Parse a poll log (`time,element,changed` lines) eagerly into a vector —
/// a thin wrapper over the streaming [`PollLogReader`].
pub fn parse_poll_log(text: &str) -> Result<Vec<PollRecord>> {
    PollLogReader::new(text.as_bytes()).collect()
}

/// Serialize an access log (with header) — inverse of [`parse_access_log`].
pub fn write_access_log(records: &[AccessRecord]) -> String {
    let mut s = String::from("time,element\n");
    for r in records {
        let _ = writeln!(s, "{:.6},{}", r.time, r.element);
    }
    s
}

/// Serialize a poll log (with header) — inverse of [`parse_poll_log`].
pub fn write_poll_log(records: &[PollRecord]) -> String {
    let mut s = String::from("time,element,changed\n");
    for r in records {
        let _ = writeln!(s, "{:.6},{},{}", r.time, r.element, u8::from(r.changed));
    }
    s
}

/// Estimates learned from logs: everything needed to build a [`Problem`]
/// once a bandwidth budget is chosen.
///
/// [`Problem`]: freshen_core::problem::Problem
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedParameters {
    /// Access probabilities (smoothed, strictly positive).
    pub access_probs: Vec<f64>,
    /// Bias-reduced change-rate estimates per element (per period).
    pub change_rates: Vec<f64>,
    /// Number of access records consumed.
    pub accesses_seen: usize,
    /// Number of poll records consumed.
    pub polls_seen: usize,
}

/// Learn access probabilities and change rates from logs.
///
/// * `n` — mirror size; records referencing elements `≥ n` are rejected.
/// * `smoothing` — uniform pseudo-count added to access tallies so
///   never-accessed objects keep a small positive probability.
/// * Elements never polled receive `fallback_rate`.
///
/// Change-rate estimation treats each element's polls as evenly spaced
/// over the observed poll-log time span (the Fixed-Order scheduler makes
/// this exact; for irregular logs it is the mean-interval approximation).
pub fn learn_from_logs(
    n: usize,
    accesses: &[AccessRecord],
    polls: &[PollRecord],
    smoothing: f64,
    fallback_rate: f64,
) -> Result<LearnedParameters> {
    if n == 0 {
        return Err(CoreError::Empty);
    }
    let mut profile = ProfileEstimator::new(n, 1.0)?;
    for (idx, a) in accesses.iter().enumerate() {
        if a.element >= n {
            return Err(CoreError::InvalidValue {
                what: "access element",
                index: Some(idx),
                value: a.element as f64,
            });
        }
        profile.observe(a.element);
    }

    let span = polls
        .iter()
        .map(|p| p.time)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut rates = ChangeRateEstimator::new(n, 1.0)?;
    let mut poll_counts = vec![0u64; n];
    for (idx, p) in polls.iter().enumerate() {
        if p.element >= n {
            return Err(CoreError::InvalidValue {
                what: "poll element",
                index: Some(idx),
                value: p.element as f64,
            });
        }
        rates.record_poll(p.element, p.changed);
        poll_counts[p.element] += 1;
    }
    // The batch estimator assumes unit poll intervals; correct each
    // element's rate by its actual mean interval (span / count).
    let raw = rates.rates(fallback_rate);
    let change_rates: Vec<f64> = raw
        .iter()
        .zip(&poll_counts)
        .map(|(&r, &count)| {
            if count == 0 {
                fallback_rate
            } else {
                // estimate_bias_reduced scales as 1/interval; undo the
                // unit-interval assumption.
                r * count as f64 / span
            }
        })
        .collect();

    Ok(LearnedParameters {
        access_probs: profile.access_probs_smoothed(smoothing),
        change_rates,
        accesses_seen: accesses.len(),
        polls_seen: polls.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_log_roundtrip() {
        let records = vec![
            AccessRecord {
                time: 0.5,
                element: 3,
            },
            AccessRecord {
                time: 1.25,
                element: 0,
            },
        ];
        let text = write_access_log(&records);
        let parsed = parse_access_log(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn poll_log_roundtrip() {
        let records = vec![
            PollRecord {
                time: 0.1,
                element: 1,
                changed: true,
            },
            PollRecord {
                time: 0.2,
                element: 2,
                changed: false,
            },
        ];
        let text = write_poll_log(&records);
        assert_eq!(parse_poll_log(&text).unwrap(), records);
    }

    #[test]
    fn parser_skips_comments_blanks_and_header() {
        let text = "# produced by logshipper\n\ntime,element\n0.5,2\n";
        let parsed = parse_access_log(text).unwrap();
        assert_eq!(
            parsed,
            vec![AccessRecord {
                time: 0.5,
                element: 2
            }]
        );
    }

    #[test]
    fn parser_accepts_bool_words_for_changed() {
        let parsed = parse_poll_log("1.0,0,true\n2.0,0,false\n").unwrap();
        assert!(parsed[0].changed && !parsed[1].changed);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_access_log("abc,1").is_err());
        assert!(parse_access_log("1.0").is_err());
        assert!(parse_access_log("1.0,2,extra").is_err());
        assert!(parse_access_log("-1.0,2").is_err());
        assert!(parse_poll_log("1.0,2").is_err());
        assert!(parse_poll_log("1.0,2,maybe").is_err());
    }

    #[test]
    fn parse_error_reports_line_number() {
        let err = parse_access_log("1.0,2\nbogus,3\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn streaming_reader_matches_eager_parser() {
        let text = "# shipped\ntime,element\n0.5,2\n\n1.5,0\n2.5,1\n";
        let eager = parse_access_log(text).unwrap();
        let streamed: Vec<AccessRecord> = AccessLogReader::new(text.as_bytes())
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(streamed, eager);
        assert_eq!(streamed.len(), 3);

        let polls = "time,element,changed\n0.1,1,1\n0.2,2,false\n";
        let eager = parse_poll_log(polls).unwrap();
        let streamed: Vec<PollRecord> = PollLogReader::new(polls.as_bytes())
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(streamed, eager);
    }

    #[test]
    fn streaming_reader_yields_errors_in_place_then_continues() {
        // The iterator surfaces the bad line as an Err item; a consumer
        // may skip it and keep reading — unlike the eager parser, which
        // aborts the whole file.
        let text = "0.5,1\nbogus,9\n1.5,0\n";
        let items: Vec<Result<AccessRecord>> = AccessLogReader::new(text.as_bytes()).collect();
        assert_eq!(items.len(), 3);
        assert!(items[0].is_ok());
        let err = items[1].as_ref().unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert_eq!(items[2].as_ref().unwrap().element, 0);
    }

    #[test]
    fn streaming_reader_is_fused_at_eof() {
        let mut reader = AccessLogReader::new("1.0,0\n".as_bytes());
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().is_none());
        assert!(reader.next().is_none(), "stays exhausted");
    }

    #[test]
    fn streaming_reader_surfaces_io_errors() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        impl BufRead for FailingReader {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn consume(&mut self, _: usize) {}
        }
        let mut reader = PollLogReader::new(FailingReader);
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("disk on fire"), "{err}");
    }

    #[test]
    fn learn_from_logs_recovers_profile_mix() {
        // 3 elements; element 0 accessed 6x, element 1 3x, element 2 1x.
        let accesses: Vec<AccessRecord> = [0, 0, 0, 0, 0, 0, 1, 1, 1, 2]
            .iter()
            .enumerate()
            .map(|(i, &e)| AccessRecord {
                time: i as f64 * 0.1,
                element: e,
            })
            .collect();
        let learned = learn_from_logs(3, &accesses, &[], 0.01, 1.0).unwrap();
        assert!(learned.access_probs[0] > learned.access_probs[1]);
        assert!(learned.access_probs[1] > learned.access_probs[2]);
        assert!(learned.access_probs[2] > 0.0, "smoothing keeps positives");
        let sum: f64 = learned.access_probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learn_from_logs_recovers_change_rates() {
        // Element 0 polled 100 times over 50 periods (interval 0.5), the
        // ratio of changed polls matching λ = 2: 1 − e^{−1} ≈ 0.632.
        let mut polls = Vec::new();
        for k in 0..100 {
            let t = (k + 1) as f64 * 0.5;
            let changed = k % 5 != 0; // 80% change ratio ⇒ λ ≈ −ln(0.2)/0.5 ≈ 3.2
            polls.push(PollRecord {
                time: t,
                element: 0,
                changed,
            });
        }
        let learned = learn_from_logs(
            2,
            &[AccessRecord {
                time: 0.0,
                element: 0,
            }],
            &polls,
            0.5,
            9.0,
        )
        .unwrap();
        let expected = -(0.2f64.ln()) / 0.5;
        assert!(
            (learned.change_rates[0] - expected).abs() < expected * 0.1,
            "estimated {} vs {expected}",
            learned.change_rates[0]
        );
        // Element 1 never polled: gets the fallback.
        assert_eq!(learned.change_rates[1], 9.0);
    }

    #[test]
    fn learn_from_logs_rejects_out_of_range_elements() {
        let accesses = [AccessRecord {
            time: 0.0,
            element: 5,
        }];
        assert!(learn_from_logs(3, &accesses, &[], 0.1, 1.0).is_err());
        let polls = [PollRecord {
            time: 0.0,
            element: 7,
            changed: true,
        }];
        assert!(learn_from_logs(3, &[], &polls, 0.1, 1.0).is_err());
    }

    #[test]
    fn learn_from_logs_empty_mirror_rejected() {
        assert!(learn_from_logs(0, &[], &[], 0.1, 1.0).is_err());
    }
}
