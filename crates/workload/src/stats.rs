//! Small summary-statistics helpers used by sampler tests and the
//! experiment harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// `q`-th quantile (0 ≤ q ≤ 1) by linear interpolation on sorted data.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted = xs.to_vec();
    // total_cmp: a NaN in the input must not panic the sort. NaN orders
    // after +inf under the IEEE 754 total order, so low/mid quantiles of a
    // mostly-finite slice stay finite.
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    /// Regression: a single NaN sample used to panic the quantile sort
    /// via `partial_cmp().unwrap()`. NaN sorts last under `total_cmp`,
    /// so the finite quantiles are still usable.
    #[test]
    fn quantile_tolerates_nan_input() {
        let xs = [4.0, f64::NAN, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!(quantile(&xs, 1.0).is_nan());
    }
}
