//! # freshen-workload
//!
//! Synthetic workload generation for the freshening experiments: the
//! probability distributions the paper draws on (Zipf for user interest,
//! Gamma for change frequencies, Pareto for object sizes, Poisson processes
//! for update/access arrivals) and a [`scenario::Scenario`] builder that
//! assembles them into [`freshen_core::Problem`] instances matching the
//! paper's experiment setups (its Table 2 and Table 3).
//!
//! All samplers are implemented from scratch on top of `rand`'s uniform
//! source (the crate policy avoids `rand_distr`): Marsaglia–Tsang for
//! Gamma, Marsaglia polar for normals, inverse transform for Pareto and
//! Exponential, cumulative-table inversion for Zipf, and Knuth/splitting
//! for Poisson counts. Every sampler is unit-tested against its analytic
//! moments.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dist;
pub mod scenario;
pub mod stats;
pub mod tiers;
pub mod trace;

pub use scenario::{Alignment, Scenario, SizeDist, StressScenario};
pub use tiers::{parallel_relay, two_tier_chain, TieredScenario};
