//! `freshen-engine`: the deterministic online freshening runtime.
//!
//! The offline crates answer "what schedule is optimal for a *known*
//! `(p, λ, B)`?". This crate closes the loop the paper leaves open in
//! operation: the workload is only observable through events, and the
//! parameters drift. The engine ingests interleaved access/poll event
//! streams — replayed from `workload::trace` logs or generated live by
//! `freshen-sim` — and runs an epoch loop that
//!
//! 1. executes the active schedule through a bandwidth-budgeted
//!    priority-queue dispatcher ([`dispatch`]), with per-element
//!    retry/backoff on injected poll failures and graceful degradation
//!    (stale-but-served) when the budget saturates;
//! 2. folds every poll outcome and access event into incremental
//!    estimators — EWMA or sliding-window change-rate estimation plus a
//!    decayed-count access profile — producing a fresh `(p̂, λ̂)`
//!    snapshot each epoch;
//! 3. feeds that snapshot to the drift-gated
//!    [`AdaptiveScheduler`](freshen_heuristics::adaptive::AdaptiveScheduler),
//!    re-solving (warm-started) only when Jeffreys drift crosses the
//!    threshold — or every epoch under the oracle policy used as the
//!    re-solve baseline in benchmarks.
//!
//! An optional per-epoch ledger audit ([`audit`]) re-derives the
//! dispatcher's credit conservation law (`credit_in + accrued = executed
//! + retained + shed`) from independent inputs and counts breaches on
//! the `audit.violations` obs counter — enable it with
//! [`EngineConfig::audit`].
//!
//! Everything is deterministic: seeded generators, splitmix64 failure
//! injection, total-order sorts, and a hand-rolled report serializer make
//! a replayed run byte-identical ([`EngineReport::to_json`]).
//!
//! ```
//! use freshen_core::problem::Problem;
//! use freshen_engine::{Engine, EngineConfig, LiveAccessStream, LivePollSource};
//!
//! let prior = Problem::builder()
//!     .change_rates(vec![4.0, 1.0, 0.25])
//!     .access_weights(vec![8.0, 1.0, 1.0])
//!     .bandwidth(3.0)
//!     .build()
//!     .unwrap();
//! let config = EngineConfig { epochs: 10, seed: 7, ..EngineConfig::default() };
//! let accesses = LiveAccessStream::new(prior.access_probs(), 40.0, 7, 10.0);
//! let mut source = LivePollSource::new(prior.change_rates(), 8, 20.0).unwrap();
//! let report = Engine::new(&prior, config)
//!     .unwrap()
//!     .run(accesses, &mut source)
//!     .unwrap();
//! assert!(report.realized_pf > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod audit;
pub mod calendar;
pub mod config;
pub mod dispatch;
pub mod report;
pub mod runtime;
pub mod source;
pub mod state;
pub mod stream;

pub use audit::{EpochLedger, LedgerAudit};
pub use calendar::CalendarQueue;
pub use config::{EngineConfig, EstimatorKind, ResolvePolicy};
pub use dispatch::{EpochOutcome, ExecutedPoll, PollDispatcher};
pub use report::{EngineReport, EpochStats};
pub use runtime::Engine;
pub use source::{LivePollSource, LivePollState, PollSource, ReplayPollSource};
pub use state::{EngineState, EstimatorState};
pub use stream::{replay_accesses, BoxedAccessStream, DriftingAccessStream, LiveAccessStream};
