//! The engine's run report: per-epoch stats plus run totals, rendered as
//! deterministic JSON.
//!
//! The JSON is hand-rolled field-by-field (like `freshen-bench`'s
//! `BENCH_*.json` writer) so the byte layout depends only on the numbers
//! themselves — replaying the same trace with the same seed must produce
//! a byte-identical report, and that property must not hinge on the JSON
//! backend in use. Wall-clock quantities deliberately live in the obs
//! metrics (`--metrics-out`), never in the report.

use std::fmt::Write as _;

/// One epoch of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index, from 0.
    pub index: usize,
    /// Epoch start time (periods).
    pub start: f64,
    /// Jeffreys drift of the epoch's estimates vs. the active schedule's
    /// baseline.
    pub drift: f64,
    /// Did this epoch end in a re-solve?
    pub resolved: bool,
    /// Access events ingested.
    pub accesses: u64,
    /// Accesses to budget-starved elements (served stale).
    pub stale_served: u64,
    /// Poll attempts executed.
    pub dispatched: u64,
    /// Successful polls.
    pub succeeded: u64,
    /// Failed attempts.
    pub failures: u64,
    /// Retried attempts.
    pub retries: u64,
    /// Polls deferred past the epoch by the budget.
    pub deferred: u64,
    /// Backlog shed by the cap (polls, fractional).
    pub shed: f64,
    /// Perceived freshness realized this epoch: the epoch's estimates
    /// evaluated at the *achieved* poll frequencies.
    pub realized_pf: f64,
}

/// Full run summary returned by [`Engine::run`].
///
/// [`Engine::run`]: crate::runtime::Engine::run
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Mirror size.
    pub elements: usize,
    /// Epoch length (periods).
    pub epoch_len: f64,
    /// Master seed of the run.
    pub seed: u64,
    /// Total events ingested (accesses + poll attempts).
    pub events: u64,
    /// Access events ingested.
    pub accesses: u64,
    /// Successful polls.
    pub polls_succeeded: u64,
    /// Failed poll attempts.
    pub polls_failed: u64,
    /// Retried poll attempts.
    pub retries: u64,
    /// Budget-deferred polls.
    pub deferred: u64,
    /// Exact solves performed (including the initial one).
    pub resolves: u64,
    /// Epoch observations absorbed without re-solving.
    pub skips: u64,
    /// Resolves satisfied by certified incremental KKT repair (a subset
    /// of `resolves`).
    pub repairs: u64,
    /// Repair attempts that failed the strict certificate (or diverged)
    /// and fell back to a full warm re-solve.
    pub repair_fallbacks: u64,
    /// Mean realized perceived freshness over post-warmup epochs.
    pub realized_pf: f64,
    /// Per-epoch detail, in order.
    pub epochs: Vec<EpochStats>,
}

/// Format an `f64` the way `serde_json` would (always with a decimal
/// point), so reports diff cleanly against serde-produced files.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

impl EpochStats {
    fn write_json(&self, out: &mut String, indent: &str) {
        let _ = write!(
            out,
            "{indent}{{ \"index\": {}, \"start\": {}, \"drift\": {}, \"resolved\": {}, \
             \"accesses\": {}, \"stale_served\": {}, \"dispatched\": {}, \"succeeded\": {}, \
             \"failures\": {}, \"retries\": {}, \"deferred\": {}, \"shed\": {}, \
             \"realized_pf\": {} }}",
            self.index,
            fmt_f64(self.start),
            fmt_f64(self.drift),
            self.resolved,
            self.accesses,
            self.stale_served,
            self.dispatched,
            self.succeeded,
            self.failures,
            self.retries,
            self.deferred,
            fmt_f64(self.shed),
            fmt_f64(self.realized_pf),
        );
    }
}

impl EngineReport {
    /// Render the report as pretty-printed JSON with a fully
    /// deterministic byte layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"elements\": {},", self.elements);
        let _ = writeln!(out, "  \"epoch_len\": {},", fmt_f64(self.epoch_len));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"accesses\": {},", self.accesses);
        let _ = writeln!(out, "  \"polls_succeeded\": {},", self.polls_succeeded);
        let _ = writeln!(out, "  \"polls_failed\": {},", self.polls_failed);
        let _ = writeln!(out, "  \"retries\": {},", self.retries);
        let _ = writeln!(out, "  \"deferred\": {},", self.deferred);
        let _ = writeln!(out, "  \"resolves\": {},", self.resolves);
        let _ = writeln!(out, "  \"skips\": {},", self.skips);
        let _ = writeln!(out, "  \"repairs\": {},", self.repairs);
        let _ = writeln!(out, "  \"repair_fallbacks\": {},", self.repair_fallbacks);
        let _ = writeln!(out, "  \"realized_pf\": {},", fmt_f64(self.realized_pf));
        out.push_str("  \"epochs\": [\n");
        for (i, epoch) in self.epochs.iter().enumerate() {
            epoch.write_json(&mut out, "    ");
            out.push_str(if i + 1 < self.epochs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Re-solves per epoch actually observed (excludes the initial
    /// solve), as a fraction of epochs — the quantity the ≤ 25%-of-oracle
    /// acceptance bound is about.
    pub fn resolve_fraction(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().filter(|e| e.resolved).count() as f64 / self.epochs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineReport {
        EngineReport {
            elements: 3,
            epoch_len: 1.0,
            seed: 7,
            events: 120,
            accesses: 100,
            polls_succeeded: 18,
            polls_failed: 2,
            retries: 1,
            deferred: 4,
            resolves: 2,
            skips: 1,
            repairs: 1,
            repair_fallbacks: 0,
            realized_pf: 0.75,
            epochs: vec![
                EpochStats {
                    index: 0,
                    start: 0.0,
                    drift: 0.0,
                    resolved: false,
                    accesses: 50,
                    stale_served: 3,
                    dispatched: 10,
                    succeeded: 9,
                    failures: 1,
                    retries: 1,
                    deferred: 2,
                    shed: 0.5,
                    realized_pf: 0.7,
                },
                EpochStats {
                    index: 1,
                    start: 1.0,
                    drift: 0.12,
                    resolved: true,
                    accesses: 50,
                    stale_served: 0,
                    dispatched: 10,
                    succeeded: 9,
                    failures: 1,
                    retries: 0,
                    deferred: 2,
                    shed: 0.0,
                    realized_pf: 0.8,
                },
            ],
        }
    }

    #[test]
    fn json_contains_every_field_and_is_stable() {
        let report = sample();
        let json = report.to_json();
        for key in [
            "\"elements\": 3",
            "\"epoch_len\": 1.0",
            "\"seed\": 7",
            "\"events\": 120",
            "\"repairs\": 1",
            "\"repair_fallbacks\": 0",
            "\"realized_pf\": 0.75",
            "\"drift\": 0.12",
            "\"resolved\": true",
            "\"stale_served\": 3",
            "\"shed\": 0.5",
        ] {
            assert!(json.contains(key), "missing `{key}` in:\n{json}");
        }
        assert_eq!(json, report.to_json(), "rendering is pure");
    }

    #[test]
    fn floats_always_carry_a_decimal_point() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert!(fmt_f64(1e300).ends_with(".0"), "huge floats still marked");
    }

    #[test]
    fn resolve_fraction_counts_epoch_resolves() {
        let report = sample();
        assert_eq!(report.resolve_fraction(), 0.5);
        let empty = EngineReport {
            epochs: Vec::new(),
            ..sample()
        };
        assert_eq!(empty.resolve_fraction(), 0.0);
    }
}
