//! Bandwidth-budgeted priority-queue poll dispatcher.
//!
//! Each epoch the active schedule's frequencies accrue *poll credit* per
//! element (`fᵢ · epoch_len`, carrying fractions across epochs). Whole
//! credits become poll requests, ordered by a priority key — the engine
//! passes `p̂ᵢ · λ̂ᵢ`, the marginal value density of refreshing `i` — and
//! admitted greedily until the epoch's bandwidth budget is spent.
//!
//! Degradation is graceful and explicit:
//!
//! * requests beyond the budget are **deferred** — their credit survives
//!   into the next epoch, where they compete again (the element is served
//!   stale meanwhile);
//! * backlog beyond [`max_backlog`] polls is **shed** so a persistently
//!   saturated budget degrades to a lower steady-state poll rate instead
//!   of an unbounded queue;
//! * failed poll attempts (injected deterministically from the seed) are
//!   **retried** with linear backoff while budget and the retry cap
//!   allow, then **abandoned** — the admission-deducted credit returns to
//!   the element's backlog (still subject to the cap, overflow is shed),
//!   so an abandoned refresh competes again next epoch instead of
//!   silently vanishing.
//!
//! Credit obeys a per-epoch conservation law checked by the engine's
//! ledger audit ([`LedgerAudit`](crate::audit::LedgerAudit)):
//!
//! ```text
//! credit_in + accrued = executed + retained + shed
//! ```
//!
//! where `executed` counts successful polls (one credit each), `retained`
//! is the backlog carried into the next epoch, and `shed` is everything
//! the cap discarded. Credit is never negative and never silently
//! destroyed.
//!
//! Everything — admission order, dispatch instants, failure draws — is a
//! pure function of the configuration and the epoch inputs, which is what
//! makes engine runs byte-for-byte reproducible.
//!
//! [`max_backlog`]: crate::config::EngineConfig::max_backlog

use freshen_core::error::{CoreError, Result};
use freshen_core::numeric::neumaier_sum;
use freshen_obs::Recorder;

use crate::calendar::CalendarQueue;
use crate::config::EngineConfig;
use crate::source::PollSource;

/// One successful poll, in dispatch order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutedPoll {
    /// Polled element.
    pub element: usize,
    /// Dispatch instant (periods).
    pub time: f64,
    /// Did the source report new content?
    pub changed: bool,
    /// Attempt number that succeeded (0 = first try).
    pub attempts: u32,
}

/// Everything one epoch of dispatching produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// Successful polls in execution (time) order.
    pub polls: Vec<ExecutedPoll>,
    /// Successful polls per element.
    pub succeeded: Vec<u64>,
    /// Elements that were budget-starved this epoch (deferred, shed, or
    /// abandoned polls) — accesses to them are "served stale".
    pub starved: Vec<bool>,
    /// Poll attempts actually executed (including retries).
    pub dispatched: u64,
    /// Attempts that failed.
    pub failures: u64,
    /// Failed attempts that were re-queued.
    pub retries: u64,
    /// Polls abandoned after exhausting retries or budget.
    pub abandoned: u64,
    /// Planned polls pushed past this epoch by the budget.
    pub deferred: u64,
    /// Backlog credit shed by the cap (in polls, fractional).
    pub shed: f64,
}

/// Latency buckets (periods from epoch start to dispatch) for the
/// `engine.dispatch_latency` histogram.
pub const LATENCY_BUCKETS: [f64; 7] = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// SplitMix64: the engine's deterministic hash for failure injection.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` keyed by `(seed, element, attempt-index)`.
/// Keying on the element's lifetime attempt counter (not the epoch) keeps
/// failure histories comparable across policies run on the same seed.
fn failure_draw(seed: u64, element: usize, attempt_index: u64) -> f64 {
    let key = seed
        ^ (element as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ attempt_index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// The dispatcher: owns per-element credit, failure state, and the
/// persistent dispatch queue across epochs.
#[derive(Debug)]
pub struct PollDispatcher {
    credit: Vec<f64>,
    attempt_counter: Vec<u64>,
    /// Persistent calendar queue: constructed once, re-binned (capacity
    /// retained) every epoch — steady-state epochs allocate nothing.
    queue: CalendarQueue,
    bandwidth: f64,
    budget_factor: f64,
    max_backlog: f64,
    failure_rate: f64,
    max_retries: u32,
    retry_backoff: f64,
    seed: u64,
}

impl PollDispatcher {
    /// Create a dispatcher for `n` elements given the engine config and
    /// the problem's bandwidth (polls per period; the Core Problem's
    /// uniform-size model, so one poll costs one budget unit).
    pub fn new(n: usize, bandwidth: f64, config: &EngineConfig) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "dispatch bandwidth",
                index: None,
                value: bandwidth,
            });
        }
        Ok(PollDispatcher {
            credit: vec![0.0; n],
            attempt_counter: vec![0; n],
            queue: CalendarQueue::new(),
            bandwidth,
            budget_factor: config.budget_factor,
            max_backlog: config.max_backlog,
            failure_rate: config.failure_rate,
            max_retries: config.max_retries,
            retry_backoff: config.retry_backoff,
            seed: config.seed,
        })
    }

    /// Outstanding poll credit for one element (for tests/inspection).
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn backlog(&self, element: usize) -> f64 {
        self.credit[element]
    }

    /// Total outstanding poll credit across all elements
    /// (compensated-summed) — the `retained` term of the ledger
    /// conservation law.
    pub fn total_credit(&self) -> f64 {
        neumaier_sum(self.credit.iter().copied())
    }

    /// Smallest per-element credit. The ledger invariant says this never
    /// drops below zero.
    pub fn min_credit(&self) -> f64 {
        self.credit.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Per-element outstanding credit — the checkpointable half of the
    /// dispatcher's cross-epoch state.
    pub fn credit(&self) -> &[f64] {
        &self.credit
    }

    /// Per-element lifetime attempt counters. Together with the seed these
    /// fully determine future failure draws, so checkpointing them extends
    /// the failure stream exactly across a restart.
    pub fn attempt_counts(&self) -> &[u64] {
        &self.attempt_counter
    }

    /// Overwrite the cross-epoch state from a checkpoint. Configuration
    /// (bandwidth, budget, failure model, seed) is not part of the
    /// snapshot — the restored process must be launched with the same
    /// config, which the snapshot's shape header verifies upstream.
    pub fn restore_state(&mut self, credit: Vec<f64>, attempts: Vec<u64>) -> Result<()> {
        let n = self.credit.len();
        if credit.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "dispatcher credit",
                expected: n,
                actual: credit.len(),
            });
        }
        if attempts.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "dispatcher attempt counters",
                expected: n,
                actual: attempts.len(),
            });
        }
        for (i, &c) in credit.iter().enumerate() {
            if !c.is_finite() || c < -1e-12 {
                return Err(CoreError::InvalidValue {
                    what: "dispatcher credit",
                    index: Some(i),
                    value: c,
                });
            }
        }
        self.credit = credit;
        self.attempt_counter = attempts;
        Ok(())
    }

    /// Run one epoch: accrue credit from `freqs`, admit requests by
    /// `priorities` under the budget, execute them (with injected
    /// failures, retries, and backoff) against `source`, and return the
    /// outcome. Dispatch instants are spread over the epoch in admission
    /// order, so higher-priority polls land earlier.
    ///
    /// The epoch budget is `bandwidth · epoch_len · budget_factor`,
    /// derived from the *same* `epoch_len` that drives credit accrual —
    /// budget and accrual can never disagree about the epoch's length.
    #[allow(clippy::too_many_arguments)]
    pub fn run_epoch(
        &mut self,
        epoch: usize,
        epoch_start: f64,
        epoch_len: f64,
        freqs: &[f64],
        priorities: &[f64],
        source: &mut dyn PollSource,
        recorder: &Recorder,
    ) -> Result<EpochOutcome> {
        let mut span = recorder.span("engine.dispatch");
        span.arg("epoch", epoch);
        let n = self.credit.len();
        if !epoch_len.is_finite() || epoch_len <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "dispatch epoch length",
                index: None,
                value: epoch_len,
            });
        }
        if freqs.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "dispatch frequencies",
                expected: n,
                actual: freqs.len(),
            });
        }
        if priorities.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "dispatch priorities",
                expected: n,
                actual: priorities.len(),
            });
        }
        let mut outcome = EpochOutcome {
            polls: Vec::new(),
            succeeded: vec![0; n],
            starved: vec![false; n],
            dispatched: 0,
            failures: 0,
            retries: 0,
            abandoned: 0,
            deferred: 0,
            shed: 0.0,
        };

        let budget_per_epoch = self.bandwidth * epoch_len * self.budget_factor;

        // 1. Accrue credit and plan one request per whole credit. No
        // element can ever get more polls admitted than the whole budget
        // allows, and credit beyond the backlog cap is shed below — so
        // planning past `budget + max_backlog` requests per element would
        // only allocate memory for requests that cannot be served (and a
        // pathological `f · epoch_len` would overflow the copy counter).
        let plan_cap = (budget_per_epoch + self.max_backlog)
            .ceil()
            .min(u32::MAX as f64);
        let mut requests: Vec<(usize, u32)> = Vec::new();
        for (i, (credit, &f)) in self.credit.iter_mut().zip(freqs).enumerate() {
            *credit += f * epoch_len;
            for copy in 0..credit.floor().min(plan_cap) as u32 {
                requests.push((i, copy));
            }
        }
        // Priority order: value density descending, then element then
        // copy index — a total order, so admission is deterministic.
        requests.sort_by(|&(ea, ca), &(eb, cb)| {
            priorities[eb]
                .total_cmp(&priorities[ea])
                .then_with(|| ea.cmp(&eb))
                .then_with(|| ca.cmp(&cb))
        });

        // 2. Admit under the budget; the rest is deferred.
        let mut budget_left = budget_per_epoch;
        let mut admitted = Vec::new();
        for &(element, _) in &requests {
            if budget_left >= 1.0 {
                budget_left -= 1.0;
                self.credit[element] -= 1.0;
                admitted.push(element);
            } else {
                outcome.deferred += 1;
                outcome.starved[element] = true;
            }
        }

        // 3. Shed backlog beyond the cap (graceful degradation).
        for i in 0..n {
            let excess = self.credit[i] - self.max_backlog;
            if excess > 0.0 {
                outcome.shed += excess;
                outcome.starved[i] = true;
                self.credit[i] = self.max_backlog;
            }
        }

        // 4. Execute in time order: admitted polls spread across the
        // epoch (admission order ⇒ priority order ⇒ earlier slots);
        // retries re-enter the queue at their backoff instant. The
        // calendar queue pops in exactly the old heap's (time, seq)
        // order, but with O(1) amortized operations and — being
        // persistent — zero steady-state allocation.
        let latency = recorder.histogram("engine.dispatch_latency", &LATENCY_BUCKETS);
        let epoch_end = epoch_start + epoch_len;
        let slot = epoch_len / admitted.len().max(1) as f64;
        let grows_before = self.queue.grows();
        self.queue
            .begin_epoch(epoch_start, epoch_len, admitted.len());
        for (k, &element) in admitted.iter().enumerate() {
            self.queue
                .push(epoch_start + (k as f64 + 0.5) * slot, element, 0)?;
        }
        while let Some(p) = self.queue.pop() {
            outcome.dispatched += 1;
            let attempt_index = self.attempt_counter[p.element];
            self.attempt_counter[p.element] += 1;
            let failed = self.failure_rate > 0.0
                && failure_draw(self.seed, p.element, attempt_index) < self.failure_rate;
            if failed {
                outcome.failures += 1;
                if p.attempt < self.max_retries && budget_left >= 1.0 {
                    budget_left -= 1.0;
                    outcome.retries += 1;
                    self.queue.push(
                        // Linear backoff, clamped so epochs stay ordered.
                        (p.time + self.retry_backoff * (p.attempt + 1) as f64).min(epoch_end),
                        p.element,
                        p.attempt + 1,
                    )?;
                } else {
                    outcome.abandoned += 1;
                    outcome.starved[p.element] = true;
                    // Return the admission-deducted credit: the refresh
                    // defers to the next epoch rather than losing its
                    // bandwidth. The backlog cap still rules; overflow
                    // is shed, not silently destroyed.
                    let credit = &mut self.credit[p.element];
                    *credit += 1.0;
                    if *credit > self.max_backlog {
                        outcome.shed += *credit - self.max_backlog;
                        *credit = self.max_backlog;
                    }
                }
                continue;
            }
            let changed = source.poll(p.element, p.time);
            latency.observe(p.time - epoch_start);
            outcome.succeeded[p.element] += 1;
            outcome.polls.push(ExecutedPoll {
                element: p.element,
                time: p.time,
                changed,
                attempts: p.attempt,
            });
        }
        let grown = self.queue.grows() - grows_before;
        if grown > 0 {
            recorder.counter("engine.queue_grows").add(grown);
        }
        Ok(outcome)
    }

    /// Lifetime capacity-growth events of the persistent dispatch queue.
    /// Steady-state epochs must not move this — the no-churn regression
    /// test in `tests/properties.rs` asserts it.
    pub fn queue_grows(&self) -> u64 {
        self.queue.grows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ReplayPollSource;

    /// A source that records poll times and always answers `changed`.
    struct Probe {
        calls: Vec<(usize, f64)>,
    }
    impl PollSource for Probe {
        fn poll(&mut self, element: usize, time: f64) -> bool {
            self.calls.push((element, time));
            true
        }
    }

    fn config() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn dispatches_schedule_under_ample_budget() {
        let mut d = PollDispatcher::new(2, 10.0, &config()).unwrap();
        let mut probe = Probe { calls: Vec::new() };
        let out = d
            .run_epoch(
                0,
                0.0,
                1.0,
                &[4.0, 2.0],
                &[1.0, 2.0],
                &mut probe,
                &Recorder::disabled(),
            )
            .unwrap();
        assert_eq!(out.succeeded, vec![4, 2]);
        assert_eq!(out.deferred, 0);
        assert_eq!(out.dispatched, 6);
        // Time-ordered execution, all within the epoch.
        assert!(probe.calls.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(probe.calls.iter().all(|&(_, t)| (0.0..1.0).contains(&t)));
        // Element 1 has twice the priority: its polls occupy the earliest
        // slots.
        assert_eq!(probe.calls[0].0, 1);
        assert_eq!(probe.calls[1].0, 1);
    }

    #[test]
    fn saturated_budget_defers_low_priority_first() {
        let mut cfg = config();
        cfg.budget_factor = 0.5; // budget 5 of 10 planned polls
        let mut d = PollDispatcher::new(2, 10.0, &cfg).unwrap();
        let mut probe = Probe { calls: Vec::new() };
        let out = d
            .run_epoch(
                0,
                0.0,
                1.0,
                &[5.0, 5.0],
                &[2.0, 1.0],
                &mut probe,
                &Recorder::disabled(),
            )
            .unwrap();
        assert_eq!(out.succeeded[0], 5, "high priority fully served");
        assert_eq!(out.succeeded[1], 0, "low priority fully deferred");
        assert_eq!(out.deferred, 5);
        assert!(out.starved[1] && !out.starved[0]);
        // Deferred credit survives into the next epoch (capped).
        assert!(d.backlog(1) >= cfg.max_backlog - 1e-9);
    }

    #[test]
    fn backlog_is_capped_not_unbounded() {
        let mut cfg = config();
        cfg.budget_factor = 0.1;
        cfg.max_backlog = 2.0;
        let mut d = PollDispatcher::new(1, 10.0, &cfg).unwrap();
        let mut shed_total = 0.0;
        for epoch in 0..5 {
            let out = d
                .run_epoch(
                    epoch,
                    epoch as f64,
                    1.0,
                    &[10.0],
                    &[1.0],
                    &mut Probe { calls: Vec::new() },
                    &Recorder::disabled(),
                )
                .unwrap();
            shed_total += out.shed;
        }
        assert!(d.backlog(0) <= 2.0 + 1e-9, "cap holds");
        assert!(shed_total > 0.0, "persistent saturation sheds backlog");
    }

    #[test]
    fn fractional_credit_carries_across_epochs() {
        let mut d = PollDispatcher::new(1, 10.0, &config()).unwrap();
        let mut first = 0;
        let mut total = 0;
        for epoch in 0..4 {
            let out = d
                .run_epoch(
                    epoch,
                    epoch as f64,
                    1.0,
                    &[0.5],
                    &[1.0],
                    &mut Probe { calls: Vec::new() },
                    &Recorder::disabled(),
                )
                .unwrap();
            if epoch == 0 {
                first = out.dispatched;
            }
            total += out.dispatched;
        }
        assert_eq!(first, 0, "half a credit is not a poll yet");
        assert_eq!(total, 2, "f=0.5 over 4 periods is 2 polls");
    }

    #[test]
    fn failures_are_retried_with_backoff_then_abandoned() {
        let mut cfg = config();
        cfg.failure_rate = 0.999_999; // effectively always fail
        cfg.max_retries = 2;
        cfg.retry_backoff = 0.01;
        let mut d = PollDispatcher::new(1, 10.0, &cfg).unwrap();
        let out = d
            .run_epoch(
                0,
                0.0,
                1.0,
                &[2.0],
                &[1.0],
                &mut Probe { calls: Vec::new() },
                &Recorder::disabled(),
            )
            .unwrap();
        // 2 planned polls, each tried 1 + 2 times, all failing.
        assert_eq!(out.dispatched, 6);
        assert_eq!(out.failures, 6);
        assert_eq!(out.retries, 4);
        assert_eq!(out.abandoned, 2);
        assert_eq!(out.succeeded[0], 0);
        assert!(out.starved[0]);
    }

    #[test]
    fn abandoned_polls_compete_again_next_epoch() {
        // Regression: abandonment used to destroy the admission-deducted
        // credit, so a poll lost to failures was gone forever. Post-fix
        // the credit returns to the backlog and re-plans next epoch.
        let mut cfg = config();
        cfg.failure_rate = 0.999_999; // every attempt fails
        cfg.max_retries = 1;
        let mut d = PollDispatcher::new(1, 10.0, &cfg).unwrap();
        let out = d
            .run_epoch(
                0,
                0.0,
                1.0,
                &[2.0],
                &[1.0],
                &mut Probe { calls: Vec::new() },
                &Recorder::disabled(),
            )
            .unwrap();
        assert_eq!(out.abandoned, 2);
        assert!(
            d.backlog(0) >= 2.0 - 1e-9,
            "abandoned credit survives: {}",
            d.backlog(0)
        );
        // Next epoch accrues *nothing* — every planned poll comes from
        // the restored credit. Pre-fix this epoch dispatched 0 polls.
        let next = d
            .run_epoch(
                1,
                1.0,
                1.0,
                &[0.0],
                &[1.0],
                &mut Probe { calls: Vec::new() },
                &Recorder::disabled(),
            )
            .unwrap();
        assert!(
            next.dispatched >= 2,
            "restored credit must re-plan polls, dispatched {}",
            next.dispatched
        );
    }

    #[test]
    fn abandoned_credit_respects_the_backlog_cap() {
        let mut cfg = config();
        cfg.failure_rate = 0.999_999;
        cfg.max_retries = 0;
        cfg.max_backlog = 1.0;
        let mut d = PollDispatcher::new(1, 10.0, &cfg).unwrap();
        let out = d
            .run_epoch(
                0,
                0.0,
                1.0,
                &[3.0],
                &[1.0],
                &mut Probe { calls: Vec::new() },
                &Recorder::disabled(),
            )
            .unwrap();
        assert_eq!(out.abandoned, 3);
        assert!(d.backlog(0) <= 1.0 + 1e-9, "cap holds on restoration");
        assert!(out.shed >= 2.0 - 1e-9, "overflow is shed, not destroyed");
    }

    #[test]
    fn budget_follows_the_epoch_len_passed_to_run_epoch() {
        // Regression: the budget used to be frozen from config.epoch_len
        // at construction, so run_epoch with a different epoch length
        // mis-sized the budget relative to accrual. config.epoch_len is
        // 1.0; dispatch a 2.0-period epoch: accrual 10 credits, budget
        // 10.0 × 2.0 = 20 ⇒ all ten polls admitted.
        let mut d = PollDispatcher::new(1, 10.0, &config()).unwrap();
        let out = d
            .run_epoch(
                0,
                0.0,
                2.0,
                &[5.0],
                &[1.0],
                &mut Probe { calls: Vec::new() },
                &Recorder::disabled(),
            )
            .unwrap();
        assert_eq!(out.dispatched, 10, "budget scales with the real epoch");
        assert_eq!(out.deferred, 0);
    }

    #[test]
    fn rejects_invalid_epoch_len() {
        let mut d = PollDispatcher::new(1, 10.0, &config()).unwrap();
        let r = Recorder::disabled();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                d.run_epoch(
                    0,
                    0.0,
                    bad,
                    &[1.0],
                    &[1.0],
                    &mut Probe { calls: Vec::new() },
                    &r
                )
                .is_err(),
                "epoch_len {bad} must be rejected"
            );
        }
    }

    #[test]
    fn pathological_frequencies_plan_bounded_requests() {
        // Regression: a huge f·epoch_len used to allocate one request per
        // whole credit *before* any cap — enough to exhaust memory — and
        // `as u32` silently truncated beyond u32::MAX. Planning is now
        // capped at what budget + backlog could ever admit.
        let mut cfg = config();
        cfg.max_backlog = 2.0;
        let mut d = PollDispatcher::new(1, 5.0, &cfg).unwrap();
        let out = d
            .run_epoch(
                0,
                0.0,
                1.0,
                &[1e12], // ≫ u32::MAX planned credits pre-fix
                &[1.0],
                &mut Probe { calls: Vec::new() },
                &Recorder::disabled(),
            )
            .unwrap();
        assert_eq!(out.dispatched, 5, "whole budget served");
        assert!(d.backlog(0) <= 2.0 + 1e-9, "cap still holds");
        assert!(out.shed > 1e11, "excess credit is accounted as shed");
    }

    #[test]
    fn credit_ledger_balances_across_epochs() {
        // credit_in + accrued = executed + retained + shed, every epoch,
        // including under failures, retries, abandonment, and shedding.
        let mut cfg = config();
        cfg.failure_rate = 0.4;
        cfg.max_retries = 1;
        cfg.budget_factor = 0.6; // saturated: abandonment + deferral occur
        cfg.seed = 11;
        let freqs = [3.0, 2.5, 0.7, 1.3];
        let mut d = PollDispatcher::new(4, 6.0, &cfg).unwrap();
        let mut abandoned_total = 0;
        for epoch in 0..8 {
            let credit_in = d.total_credit();
            let out = d
                .run_epoch(
                    epoch,
                    epoch as f64,
                    1.0,
                    &freqs,
                    &[4.0, 3.0, 2.0, 1.0],
                    &mut Probe { calls: Vec::new() },
                    &Recorder::disabled(),
                )
                .unwrap();
            let accrued: f64 = freqs.iter().sum();
            let executed = out.polls.len() as f64;
            let residual = credit_in + accrued - executed - d.total_credit() - out.shed;
            assert!(
                residual.abs() < 1e-9,
                "epoch {epoch}: ledger residual {residual}"
            );
            assert!(d.min_credit() >= -1e-12, "credit never goes negative");
            abandoned_total += out.abandoned;
        }
        assert!(abandoned_total > 0, "the run exercised abandonment");
    }

    #[test]
    fn moderate_failures_still_mostly_succeed() {
        let mut cfg = config();
        cfg.failure_rate = 0.2;
        cfg.seed = 5;
        let mut d = PollDispatcher::new(4, 40.0, &cfg).unwrap();
        let mut probe = Probe { calls: Vec::new() };
        let out = d
            .run_epoch(
                0,
                0.0,
                1.0,
                &[6.0; 4],
                &[1.0; 4],
                &mut probe,
                &Recorder::disabled(),
            )
            .unwrap();
        let succeeded: u64 = out.succeeded.iter().sum();
        assert_eq!(succeeded, 24, "retries recover transient failures");
        assert!(out.failures > 0, "some attempts did fail");
        assert!(probe.calls.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn identical_inputs_identical_outcomes() {
        let run = || {
            let mut cfg = config();
            cfg.failure_rate = 0.3;
            cfg.seed = 99;
            let mut d = PollDispatcher::new(3, 6.0, &cfg).unwrap();
            let mut src = ReplayPollSource::new(
                3,
                &[freshen_workload::trace::PollRecord {
                    time: 0.0,
                    element: 0,
                    changed: true,
                }],
            )
            .unwrap();
            let mut outs = Vec::new();
            for epoch in 0..3 {
                outs.push(
                    d.run_epoch(
                        epoch,
                        epoch as f64,
                        1.0,
                        &[2.0, 2.0, 2.0],
                        &[3.0, 2.0, 1.0],
                        &mut src,
                        &Recorder::disabled(),
                    )
                    .unwrap(),
                );
            }
            outs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let mut d = PollDispatcher::new(2, 5.0, &config()).unwrap();
        let r = Recorder::disabled();
        let mut probe = Probe { calls: Vec::new() };
        assert!(d
            .run_epoch(0, 0.0, 1.0, &[1.0], &[1.0, 1.0], &mut probe, &r)
            .is_err());
        assert!(d
            .run_epoch(0, 0.0, 1.0, &[1.0, 1.0], &[1.0], &mut probe, &r)
            .is_err());
        assert!(PollDispatcher::new(0, 5.0, &config()).is_err());
        assert!(PollDispatcher::new(2, 0.0, &config()).is_err());
    }

    #[test]
    fn failure_draw_is_uniform_ish() {
        let mut below = 0;
        for k in 0..10_000u64 {
            if failure_draw(7, 3, k) < 0.25 {
                below += 1;
            }
        }
        let frac = below as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
    }
}
