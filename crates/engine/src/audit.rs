//! The poll-credit ledger audit: bandwidth accounting as an enforced
//! invariant.
//!
//! The dispatcher's credit is a conserved quantity. Per epoch:
//!
//! ```text
//! credit_in + accrued = executed + retained + shed
//! ```
//!
//! * `credit_in` — backlog carried in from the previous epoch;
//! * `accrued` — `Σ fᵢ · epoch_len`, the epoch's scheduled work;
//! * `executed` — successful polls (each consumed exactly one credit at
//!   admission);
//! * `retained` — backlog carried out to the next epoch;
//! * `shed` — credit the backlog cap discarded, *explicitly accounted*.
//!
//! Anything that leaks outside those buckets is a conservation bug — the
//! class of bug where a poll abandoned after failed retries used to
//! destroy its admission-deducted credit silently. [`LedgerAudit`]
//! re-derives both sides from independent inputs (the frequency vector,
//! the outcome counters, and the dispatcher's credit totals) every
//! epoch, so a regression cannot hide behind the dispatcher's own
//! bookkeeping.
//!
//! Enable it with [`EngineConfig::audit`](crate::EngineConfig::audit);
//! breaches increment the `audit.violations` obs counter and are kept as
//! per-epoch [`EpochLedger`] records retrievable from
//! [`Engine::ledger`](crate::Engine::ledger).

use freshen_core::numeric::neumaier_sum;

use crate::dispatch::EpochOutcome;

/// One epoch's conservation-law bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochLedger {
    /// Epoch index.
    pub epoch: usize,
    /// Total credit entering the epoch.
    pub credit_in: f64,
    /// Credit accrued this epoch (`Σ fᵢ·epoch_len`, compensated).
    pub accrued: f64,
    /// Successful polls (one credit each).
    pub executed: u64,
    /// Polls abandoned after exhausting retries or budget (their credit
    /// must reappear in `retained` or `shed`, never vanish).
    pub abandoned: u64,
    /// Total credit leaving the epoch.
    pub retained: f64,
    /// Credit discarded by the backlog cap.
    pub shed: f64,
    /// `credit_in + accrued − executed − retained − shed` — zero up to
    /// floating-point accumulation noise when the ledger balances.
    pub residual: f64,
    /// Smallest per-element credit after the epoch (must be ≥ 0).
    pub min_credit: f64,
    /// Did this epoch break the conservation law?
    pub violated: bool,
}

impl EpochLedger {
    /// The tolerance the residual was judged against: proportional to
    /// the epoch's credit volume, since the residual only carries
    /// per-element f64 rounding.
    pub fn tolerance(&self) -> f64 {
        1e-9 * (1.0 + self.credit_in.abs() + self.accrued.abs())
    }
}

/// Accumulates [`EpochLedger`] records over a run and counts breaches.
#[derive(Debug, Clone, Default)]
pub struct LedgerAudit {
    epochs: Vec<EpochLedger>,
    violations: u64,
}

impl LedgerAudit {
    /// An empty ledger.
    pub fn new() -> Self {
        LedgerAudit::default()
    }

    /// Record one epoch. `credit_in`/`retained`/`min_credit` come from
    /// the dispatcher's credit totals sampled around `run_epoch`;
    /// `freqs` and `epoch_len` independently re-derive the accrual.
    /// Returns the record (also kept internally).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        epoch: usize,
        credit_in: f64,
        freqs: &[f64],
        epoch_len: f64,
        outcome: &EpochOutcome,
        retained: f64,
        min_credit: f64,
    ) -> EpochLedger {
        let accrued = neumaier_sum(freqs.iter().map(|&f| f * epoch_len));
        let executed = outcome.polls.len() as u64;
        let residual = credit_in + accrued - executed as f64 - retained - outcome.shed;
        let mut ledger = EpochLedger {
            epoch,
            credit_in,
            accrued,
            executed,
            abandoned: outcome.abandoned,
            retained,
            shed: outcome.shed,
            residual,
            min_credit,
            violated: false,
        };
        ledger.violated = residual.abs() > ledger.tolerance() || min_credit < -1e-12;
        if ledger.violated {
            self.violations += 1;
        }
        self.epochs.push(ledger);
        ledger
    }

    /// Every epoch recorded so far, in order.
    pub fn epochs(&self) -> &[EpochLedger] {
        &self.epochs
    }

    /// Number of epochs that broke the conservation law.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// True iff every recorded epoch balanced.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Largest absolute residual seen (0 for an empty ledger).
    pub fn max_residual(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.residual.abs())
            .fold(0.0, f64::max)
    }

    /// Drop all records (the engine resets the ledger per run).
    pub fn clear(&mut self) {
        self.epochs.clear();
        self.violations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::dispatch::PollDispatcher;
    use crate::source::PollSource;
    use freshen_obs::Recorder;

    struct AlwaysChanged;
    impl PollSource for AlwaysChanged {
        fn poll(&mut self, _element: usize, _time: f64) -> bool {
            true
        }
    }

    /// Drive a real dispatcher under saturation + failures and let the
    /// ledger check every epoch — the engine-independent version of the
    /// invariant the runtime enforces behind `EngineConfig::audit`.
    #[test]
    fn real_dispatcher_epochs_balance() {
        let cfg = EngineConfig {
            failure_rate: 0.35,
            max_retries: 1,
            budget_factor: 0.7,
            seed: 3,
            ..EngineConfig::default()
        };
        let freqs = [2.0, 1.5, 1.0, 0.5];
        let mut dispatcher = PollDispatcher::new(4, 5.0, &cfg).unwrap();
        let mut ledger = LedgerAudit::new();
        let mut abandoned = 0;
        for epoch in 0..10 {
            let credit_in = dispatcher.total_credit();
            let outcome = dispatcher
                .run_epoch(
                    epoch,
                    epoch as f64,
                    1.0,
                    &freqs,
                    &[4.0, 3.0, 2.0, 1.0],
                    &mut AlwaysChanged,
                    &Recorder::disabled(),
                )
                .unwrap();
            let record = ledger.record(
                epoch,
                credit_in,
                &freqs,
                1.0,
                &outcome,
                dispatcher.total_credit(),
                dispatcher.min_credit(),
            );
            assert!(!record.violated, "epoch {epoch}: {record:?}");
            abandoned += outcome.abandoned;
        }
        assert!(ledger.is_clean());
        assert_eq!(ledger.epochs().len(), 10);
        assert!(ledger.max_residual() < 1e-9);
        assert!(abandoned > 0, "saturation + failures must abandon polls");
    }

    /// Fabricate the pre-fix bug: an epoch whose retained credit is one
    /// poll short of balancing (the abandoned poll's credit destroyed).
    #[test]
    fn destroyed_credit_is_flagged() {
        let outcome = EpochOutcome {
            polls: Vec::new(),
            succeeded: vec![0],
            starved: vec![true],
            dispatched: 2,
            failures: 2,
            retries: 1,
            abandoned: 1,
            deferred: 0,
            shed: 0.0,
        };
        let mut ledger = LedgerAudit::new();
        // 2.0 accrued, nothing executed, nothing shed — but only 1.0
        // retained: one credit vanished with the abandoned poll.
        let record = ledger.record(0, 0.0, &[2.0], 1.0, &outcome, 1.0, 0.0);
        assert!(record.violated);
        assert!((record.residual - 1.0).abs() < 1e-12);
        assert_eq!(ledger.violations(), 1);
        assert!(!ledger.is_clean());
    }

    #[test]
    fn negative_credit_is_flagged_even_when_balanced() {
        let outcome = EpochOutcome {
            polls: Vec::new(),
            succeeded: vec![0],
            starved: vec![false],
            dispatched: 0,
            failures: 0,
            retries: 0,
            abandoned: 0,
            deferred: 0,
            shed: 0.0,
        };
        let mut ledger = LedgerAudit::new();
        let record = ledger.record(0, -0.5, &[1.0], 1.0, &outcome, 0.5, -0.5);
        assert!(record.violated, "negative credit is a breach on its own");
    }

    #[test]
    fn clear_resets_the_ledger() {
        let outcome = EpochOutcome {
            polls: Vec::new(),
            succeeded: vec![0],
            starved: vec![false],
            dispatched: 0,
            failures: 0,
            retries: 0,
            abandoned: 0,
            deferred: 0,
            shed: 0.0,
        };
        let mut ledger = LedgerAudit::new();
        ledger.record(0, 0.0, &[2.0], 1.0, &outcome, 1.0, 0.0);
        assert!(!ledger.is_clean());
        ledger.clear();
        assert!(ledger.is_clean());
        assert!(ledger.epochs().is_empty());
    }
}
