//! Checkpointable engine state: everything [`Engine`] carries across
//! epochs, extracted into one plain-data struct.
//!
//! The contract is exactness: [`Engine::restore_state`] applied to a
//! freshly constructed engine (same prior, same config) leaves it in a
//! state from which every subsequent [`Engine::step`] makes decisions
//! byte-identical to the engine that exported the state. That is what
//! lets `freshen-serve` extend the determinism rule across process
//! boundaries — a run killed at epoch `k` and restored finishes with the
//! same report as an uninterrupted run.
//!
//! Two deliberate omissions keep the state small and portable:
//!
//! * **Configuration** (gains, thresholds, decay, seeds) is not state —
//!   the restoring process supplies the same [`EngineConfig`], which the
//!   serve layer's snapshot shape header verifies before restoring.
//! * **RNG internals** are never serialized. Every stochastic input is
//!   either a pure function of `(seed, counters)` (the dispatcher's
//!   failure draws) or replayable by consumed-event count (the live
//!   sources) — see [`LivePollState`](crate::LivePollState).
//!
//! [`Engine`]: crate::Engine
//! [`Engine::step`]: crate::Engine::step
//! [`Engine::restore_state`]: crate::Engine::restore_state
//! [`EngineConfig`]: crate::EngineConfig

use freshen_core::problem::Solution;
use freshen_obs::{SloState, TimeSeriesState};

use crate::report::EpochStats;

/// Snapshot of the configured change-rate estimator's learned state.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorState {
    /// State of an [`EwmaRateEstimator`](freshen_core::estimate::EwmaRateEstimator).
    Ewma {
        /// Per-element rate estimates (priors included).
        rates: Vec<f64>,
        /// Per-element polls folded in.
        seen: Vec<u64>,
    },
    /// State of a [`WindowRateEstimator`](freshen_core::estimate::WindowRateEstimator).
    Window {
        /// Window capacity — recorded so a snapshot taken under one
        /// window length cannot silently restore under another.
        window: usize,
        /// Per element, the retained `(interval, changed)` pairs
        /// oldest-first.
        entries: Vec<Vec<(f64, bool)>>,
    },
    /// State of an [`LlnRateEstimator`](freshen_core::estimate::LlnRateEstimator):
    /// the full-history sufficient statistics.
    Lln {
        /// Per-element poll counts.
        polls: Vec<u64>,
        /// Per-element change-detection counts.
        detections: Vec<u64>,
        /// Per-element summed poll intervals.
        interval_sum: Vec<f64>,
    },
    /// State of an [`SaRateEstimator`](freshen_core::estimate::SaRateEstimator).
    /// The gain schedule's parameters live in the config; `seen` resumes
    /// the per-element step-size sequence exactly.
    Sa {
        /// Per-element rate iterates (priors included).
        rates: Vec<f64>,
        /// Per-element observation counts (the gain-schedule index).
        seen: Vec<u64>,
    },
}

/// Everything the engine carries across epochs, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Last successful poll instant per element.
    pub last_poll: Vec<f64>,
    /// Change-rate estimator state.
    pub estimator: EstimatorState,
    /// Profile learner's decayed access counts.
    pub profile_counts: Vec<f64>,
    /// Profile learner's lifetime observation count.
    pub profile_observations: u64,
    /// The active schedule (frequencies + the warm-start multiplier).
    pub schedule: Solution,
    /// Drift-monitor baseline access probabilities.
    pub baseline_probs: Vec<f64>,
    /// Drift-monitor baseline change rates.
    pub baseline_rates: Vec<f64>,
    /// Exact solves performed so far (including the initial one).
    pub resolves: u64,
    /// Re-solve decisions absorbed without solving.
    pub skips: u64,
    /// Resolves satisfied by certified incremental KKT repair (a subset
    /// of `resolves`).
    pub repairs: u64,
    /// Repair attempts that failed the certificate (or diverged) and
    /// fell back to a full warm re-solve.
    pub repair_fallbacks: u64,
    /// Drift measured by the most recent decision, if any.
    pub last_drift: Option<f64>,
    /// Dispatcher per-element outstanding poll credit.
    pub credit: Vec<f64>,
    /// Dispatcher per-element lifetime attempt counters (these key the
    /// deterministic failure draws).
    pub attempts: Vec<u64>,
    /// Per-epoch statistics of the run so far; its length is the epoch
    /// counter.
    pub history: Vec<EpochStats>,
    /// Telemetry time-series ring contents (possibly downsampled).
    pub series: TimeSeriesState,
    /// SLO evaluator state, present when the exporting engine had SLO
    /// rules armed.
    pub slo: Option<SloState>,
}

impl EngineState {
    /// The epoch the exporting engine would run next.
    pub fn epoch(&self) -> usize {
        self.history.len()
    }

    /// Mirror size the state was exported for.
    pub fn elements(&self) -> usize {
        self.last_poll.len()
    }
}
