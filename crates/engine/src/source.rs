//! Poll sources: where the engine's dispatcher sends its polls.
//!
//! The runtime is source-agnostic — a [`PollSource`] answers "did this
//! element change since the mirror's last successful poll of it?". Two
//! implementations cover the two ingestion modes of the tentpole:
//!
//! * [`ReplayPollSource`] replays recorded poll outcomes from a
//!   `workload::trace` poll log, so a production trace can be re-run
//!   deterministically through different engine policies;
//! * [`LivePollSource`] *is* the source: it owns per-element Poisson
//!   update processes (via `freshen-sim`'s update generator) and answers
//!   polls from its live version counters.

use freshen_core::error::{CoreError, Result};
use freshen_sim::generators::UpdateGenerator;
use freshen_workload::trace::PollRecord;

/// Something the dispatcher can poll.
///
/// `time` is the dispatch instant in periods. Implementations may assume
/// times are non-decreasing across calls *per run* (the dispatcher
/// guarantees it); behaviour on time travel is implementation-defined but
/// must not panic.
pub trait PollSource {
    /// Poll `element` at `time`; returns whether new content was found
    /// since this element's previous successful poll.
    fn poll(&mut self, element: usize, time: f64) -> bool;
}

/// Replays the change indicators of a recorded poll log.
///
/// Outcomes are grouped per element in time order and consumed one per
/// poll. When the engine polls an element more often than the recorded
/// trace did, the recording is cycled — preserving each element's
/// empirical change ratio, which is the property the estimators consume.
/// Elements absent from the log always answer "unchanged".
#[derive(Debug, Clone)]
pub struct ReplayPollSource {
    outcomes: Vec<Vec<bool>>,
    cursor: Vec<usize>,
}

impl ReplayPollSource {
    /// Group a poll log by element for an `n`-element mirror.
    pub fn new(n: usize, records: &[PollRecord]) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        let mut indexed: Vec<&PollRecord> = records.iter().collect();
        indexed.sort_by(|a, b| a.time.total_cmp(&b.time));
        let mut outcomes = vec![Vec::new(); n];
        for (idx, r) in indexed.iter().enumerate() {
            if r.element >= n {
                return Err(CoreError::InvalidValue {
                    what: "poll element",
                    index: Some(idx),
                    value: r.element as f64,
                });
            }
            outcomes[r.element].push(r.changed);
        }
        Ok(ReplayPollSource {
            cursor: vec![0; n],
            outcomes,
        })
    }

    /// Recorded outcomes available for one element.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn recorded(&self, element: usize) -> usize {
        self.outcomes[element].len()
    }

    /// Per-element replay cursors — the source's checkpointable state.
    pub fn cursors(&self) -> &[usize] {
        &self.cursor
    }

    /// Overwrite the replay cursors from a checkpoint. The source must
    /// have been rebuilt from the same poll log.
    pub fn restore_cursors(&mut self, cursors: Vec<usize>) -> Result<()> {
        if cursors.len() != self.cursor.len() {
            return Err(CoreError::LengthMismatch {
                what: "replay cursors",
                expected: self.cursor.len(),
                actual: cursors.len(),
            });
        }
        self.cursor = cursors;
        Ok(())
    }
}

impl PollSource for ReplayPollSource {
    fn poll(&mut self, element: usize, _time: f64) -> bool {
        let recs = &self.outcomes[element];
        if recs.is_empty() {
            return false;
        }
        let out = recs[self.cursor[element] % recs.len()];
        self.cursor[element] += 1;
        out
    }
}

/// A live source: per-element Poisson change processes answered directly.
///
/// Content versions advance via a seeded [`UpdateGenerator`]; a poll
/// reports whether the version moved past what the mirror last synced.
/// Failed polls never reach the source, so they observe nothing and sync
/// nothing — exactly the semantics the retry logic needs.
#[derive(Debug)]
pub struct LivePollSource {
    updates: UpdateGenerator,
    pending: Option<(f64, usize)>,
    versions: Vec<u64>,
    synced: Vec<u64>,
    horizon: f64,
    /// Update events pulled from the generator so far (including a
    /// still-pending one). The generator's RNG position is a pure function
    /// of (rates, seed, consumed), which is what makes the source
    /// checkpointable without serializing the RNG itself.
    consumed: u64,
}

/// Checkpointable state of a [`LivePollSource`]. The update generator is
/// not serialized; [`LivePollSource::restore`] replays `consumed` events
/// through a freshly seeded generator to land it on the identical RNG
/// position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivePollState {
    /// Events pulled from the update generator.
    pub consumed: u64,
    /// Source-side content version per element.
    pub versions: Vec<u64>,
    /// Mirror-synced version per element.
    pub synced: Vec<u64>,
    /// Was the most recently pulled event still buffered (pulled from the
    /// generator but not yet applied to `versions`)?
    pub has_pending: bool,
}

impl LivePollSource {
    /// Create a source whose elements change at `change_rates`
    /// (per period), simulated up to `horizon` periods.
    pub fn new(change_rates: &[f64], seed: u64, horizon: f64) -> Result<Self> {
        if change_rates.is_empty() {
            return Err(CoreError::Empty);
        }
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "source horizon",
                index: None,
                value: horizon,
            });
        }
        for (i, &r) in change_rates.iter().enumerate() {
            if !r.is_finite() || r < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "change rate",
                    index: Some(i),
                    value: r,
                });
            }
        }
        Ok(LivePollSource {
            updates: UpdateGenerator::new(change_rates, seed),
            pending: None,
            versions: vec![0; change_rates.len()],
            synced: vec![0; change_rates.len()],
            horizon,
            consumed: 0,
        })
    }

    /// Apply every source update at or before `t`.
    fn advance(&mut self, t: f64) {
        loop {
            match self.pending {
                Some((ut, e)) if ut <= t => {
                    self.versions[e] += 1;
                    self.pending = None;
                }
                Some(_) => break,
                None => match self.updates.next_event(self.horizon) {
                    Some(ev) => {
                        self.consumed += 1;
                        self.pending = Some(ev);
                    }
                    None => break,
                },
            }
        }
    }

    /// Current source-side version of one element (for tests/evaluation).
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn version(&self, element: usize) -> u64 {
        self.versions[element]
    }

    /// Snapshot the source's checkpointable state.
    pub fn state(&self) -> LivePollState {
        LivePollState {
            consumed: self.consumed,
            versions: self.versions.clone(),
            synced: self.synced.clone(),
            has_pending: self.pending.is_some(),
        }
    }

    /// Rebuild a source at the exact position captured by
    /// [`state`](Self::state): a fresh generator seeded identically is
    /// advanced by `consumed` events, so its RNG, heap, and the buffered
    /// pending event all land where the checkpointed process left them.
    /// The replayed version counters are cross-checked against the
    /// snapshot — a mismatch means the rates, seed, or horizon differ from
    /// the checkpointed run and comes back as a [`CoreError`].
    pub fn restore(
        change_rates: &[f64],
        seed: u64,
        horizon: f64,
        state: &LivePollState,
    ) -> Result<Self> {
        let mut src = LivePollSource::new(change_rates, seed, horizon)?;
        let n = src.versions.len();
        if state.versions.len() != n || state.synced.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "live source versions",
                expected: n,
                actual: state.versions.len().max(state.synced.len()),
            });
        }
        if state.has_pending && state.consumed == 0 {
            return Err(CoreError::Inconsistent {
                routine: "live-poll-source",
                invariant: "a pending event implies at least one consumed event",
            });
        }
        let applied = state.consumed - u64::from(state.has_pending);
        for k in 0..state.consumed {
            let ev = src
                .updates
                .next_event(src.horizon)
                .ok_or(CoreError::Inconsistent {
                    routine: "live-poll-source",
                    invariant: "snapshot consumed more updates than the stream holds",
                })?;
            src.consumed += 1;
            if k < applied {
                src.versions[ev.1] += 1;
            } else {
                src.pending = Some(ev);
            }
        }
        if src.versions != state.versions {
            return Err(CoreError::Inconsistent {
                routine: "live-poll-source",
                invariant: "replayed versions diverge from the snapshot",
            });
        }
        for (i, (&s, &v)) in state.synced.iter().zip(&state.versions).enumerate() {
            if s > v {
                return Err(CoreError::InvalidValue {
                    what: "synced version",
                    index: Some(i),
                    value: s as f64,
                });
            }
        }
        src.synced = state.synced.clone();
        Ok(src)
    }
}

impl PollSource for LivePollSource {
    fn poll(&mut self, element: usize, time: f64) -> bool {
        self.advance(time);
        let changed = self.versions[element] > self.synced[element];
        self.synced[element] = self.versions[element];
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_cycles_per_element_outcomes() {
        let records = vec![
            PollRecord {
                time: 1.0,
                element: 0,
                changed: true,
            },
            PollRecord {
                time: 2.0,
                element: 0,
                changed: false,
            },
        ];
        let mut src = ReplayPollSource::new(2, &records).unwrap();
        assert_eq!(src.recorded(0), 2);
        assert!(src.poll(0, 0.5));
        assert!(!src.poll(0, 1.5));
        assert!(src.poll(0, 2.5), "wraps around");
        assert!(!src.poll(1, 0.5), "unrecorded element never changes");
    }

    #[test]
    fn replay_orders_by_time_not_input_order() {
        let records = vec![
            PollRecord {
                time: 9.0,
                element: 0,
                changed: false,
            },
            PollRecord {
                time: 1.0,
                element: 0,
                changed: true,
            },
        ];
        let mut src = ReplayPollSource::new(1, &records).unwrap();
        assert!(src.poll(0, 0.0), "earliest record first");
        assert!(!src.poll(0, 0.0));
    }

    #[test]
    fn replay_validates_inputs() {
        assert!(ReplayPollSource::new(0, &[]).is_err());
        let bad = [PollRecord {
            time: 0.0,
            element: 5,
            changed: true,
        }];
        assert!(ReplayPollSource::new(2, &bad).is_err());
    }

    #[test]
    fn live_source_reports_changes_once() {
        // Rate 50/period: the first poll at t=1 has almost surely seen a
        // change; an immediate re-poll at the same instant has not.
        let mut src = LivePollSource::new(&[50.0], 7, 100.0).unwrap();
        assert!(src.poll(0, 1.0));
        assert!(!src.poll(0, 1.0), "nothing new since the sync");
        assert!(src.poll(0, 2.0));
    }

    #[test]
    fn live_source_zero_rate_never_changes() {
        let mut src = LivePollSource::new(&[0.0, 1000.0], 3, 50.0).unwrap();
        for k in 1..=20 {
            assert!(!src.poll(0, k as f64), "frozen element never changes");
        }
        assert!(src.poll(1, 21.0));
    }

    #[test]
    fn live_source_change_ratio_tracks_rate() {
        // λ = 1, polls every 0.5 periods: detection probability
        // 1 − e^{−0.5} ≈ 0.393.
        let mut src = LivePollSource::new(&[1.0], 11, 3000.0).unwrap();
        let mut changed = 0;
        let polls = 4000;
        for k in 1..=polls {
            if src.poll(0, k as f64 * 0.5) {
                changed += 1;
            }
        }
        let ratio = changed as f64 / polls as f64;
        let expected = 1.0 - (-0.5f64).exp();
        assert!((ratio - expected).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn live_source_validates_inputs() {
        assert!(LivePollSource::new(&[], 0, 10.0).is_err());
        assert!(LivePollSource::new(&[1.0], 0, 0.0).is_err());
        assert!(LivePollSource::new(&[-1.0], 0, 10.0).is_err());
    }

    #[test]
    fn replay_cursor_roundtrip_resumes_exactly() {
        let records: Vec<PollRecord> = (0..6)
            .map(|k| PollRecord {
                time: k as f64,
                element: k % 2,
                changed: k % 3 == 0,
            })
            .collect();
        let mut src = ReplayPollSource::new(2, &records).unwrap();
        for k in 0..7 {
            src.poll(k % 2, k as f64);
        }
        let cursors = src.cursors().to_vec();
        let mut restored = ReplayPollSource::new(2, &records).unwrap();
        restored.restore_cursors(cursors).unwrap();
        for k in 7..20 {
            assert_eq!(src.poll(k % 2, k as f64), restored.poll(k % 2, k as f64));
        }
        assert!(restored.restore_cursors(vec![0; 3]).is_err());
    }

    #[test]
    fn live_source_state_roundtrip_is_exact() {
        let rates = [2.0, 0.7, 5.0];
        let mut src = LivePollSource::new(&rates, 9, 500.0).unwrap();
        for k in 1..=137 {
            src.poll(k % 3, k as f64 * 0.25);
        }
        let state = src.state();
        let mut restored = LivePollSource::restore(&rates, 9, 500.0, &state).unwrap();
        assert_eq!(restored.state(), state);
        for k in 138..400 {
            let t = k as f64 * 0.25;
            assert_eq!(src.poll(k % 3, t), restored.poll(k % 3, t), "poll {k}");
        }
        assert_eq!(src.state(), restored.state());
    }

    #[test]
    fn live_source_restore_rejects_mismatched_config() {
        let rates = [2.0, 0.7];
        let mut src = LivePollSource::new(&rates, 9, 100.0).unwrap();
        for k in 1..50 {
            src.poll(k % 2, k as f64);
        }
        let state = src.state();
        // Different rates or seed replay to different version counters.
        assert!(LivePollSource::restore(&[2.0, 1.4], 9, 100.0, &state).is_err());
        assert!(LivePollSource::restore(&rates, 10, 100.0, &state).is_err());
        // Wrong element count is a length error.
        assert!(LivePollSource::restore(&[2.0], 9, 100.0, &state).is_err());
        // Synced beyond versions is invalid.
        let mut bad = state.clone();
        bad.synced[0] = bad.versions[0] + 1;
        assert!(LivePollSource::restore(&rates, 9, 100.0, &bad).is_err());
    }

    #[test]
    fn live_source_is_deterministic_in_seed() {
        let run = |seed: u64| {
            let mut src = LivePollSource::new(&[2.0, 0.7, 5.0], seed, 200.0).unwrap();
            (0..300)
                .map(|k| src.poll(k % 3, k as f64 * 0.33))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seed, different history");
    }
}
