//! Allocation-free calendar queue for the epoch dispatch loop.
//!
//! The dispatcher executes each epoch's admitted polls in `(time, seq)`
//! order, with retries re-entering at their backoff instant. A
//! `BinaryHeap` does that in `O(log n)` per operation and — rebuilt every
//! epoch — reallocates its backing buffer at every `run_epoch` call. At
//! engine scale the heap's pointer-chasing comparisons and the per-epoch
//! allocation churn dominate the dispatch loop.
//!
//! [`CalendarQueue`] replaces it with time-bucketed bins (a classic
//! calendar queue, Brown 1988), exploiting two structural facts of the
//! dispatch loop:
//!
//! * admitted polls are pushed **before** the drain starts, spread
//!   uniformly over the epoch — one bucket per admission slot gives O(1)
//!   expected occupancy;
//! * every mid-drain push (a retry) carries a time **≥ the instant being
//!   popped** (backoff is non-negative and clamped to the epoch end), so
//!   a forward-sweeping cursor never has to revisit earlier buckets.
//!
//! Pop therefore advances the cursor to the lowest non-empty bucket and
//! scans it for the `(time, seq)` minimum — `O(1)` amortized — which
//! reproduces the heap's total order *exactly*: bucket boundaries
//! partition time, and within a bucket the scan uses the same
//! `(total_cmp(time), seq)` key the heap used. Determinism and
//! byte-identical dispatch traces are preserved by construction.
//!
//! The structure is **persistent**: the engine constructs it once and
//! every epoch re-bins into the same backing vectors (`clear()` keeps
//! capacity). After warm-up, steady-state epochs perform zero heap
//! allocation; the [`grows`](CalendarQueue::grows) counter records every
//! capacity-growth event so a regression test can assert the churn is
//! gone (see `tests/properties.rs`).

use freshen_core::error::{CoreError, Result};

/// A queued poll attempt. Field order mirrors the dispatcher's old
/// `Pending` heap entry; `seq` is assigned by the queue in push order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Scheduled dispatch instant (periods).
    pub time: f64,
    /// Push sequence number within the epoch — the deterministic
    /// tie-break for equal instants.
    pub seq: u64,
    /// Element to poll.
    pub element: usize,
    /// Attempt number (0 = first try).
    pub attempt: u32,
}

/// Forward-sweeping bucket calendar over one epoch's time span.
#[derive(Debug, Default)]
pub struct CalendarQueue {
    /// Persistent bins; only the first `active` are in use this epoch.
    buckets: Vec<Vec<Entry>>,
    active: usize,
    cursor: usize,
    len: usize,
    origin: f64,
    inv_width: f64,
    seq: u64,
    grows: u64,
}

impl CalendarQueue {
    /// An empty queue with no buckets; [`begin_epoch`](Self::begin_epoch)
    /// sizes it.
    pub fn new() -> Self {
        CalendarQueue::default()
    }

    /// Arm the queue for an epoch spanning `[epoch_start,
    /// epoch_start + epoch_len)` with `expected` initial entries. Uses
    /// one bucket per expected entry (so expected occupancy is 1);
    /// existing bucket storage is retained and reused.
    ///
    /// # Panics
    /// Debug-asserts the previous epoch drained the queue completely.
    pub fn begin_epoch(&mut self, epoch_start: f64, epoch_len: f64, expected: usize) {
        debug_assert_eq!(self.len, 0, "queue must drain before re-binning");
        let wanted = expected.max(1);
        if wanted > self.buckets.len() {
            self.grows += 1;
            self.buckets.resize_with(wanted, Vec::new);
        }
        for bucket in &mut self.buckets[..self.active.max(wanted)] {
            bucket.clear();
        }
        self.active = wanted;
        self.cursor = 0;
        self.len = 0;
        self.seq = 0;
        self.origin = epoch_start;
        self.inv_width = wanted as f64 / epoch_len;
    }

    /// Queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime count of capacity-growth events (new buckets or a bucket
    /// reallocating its storage). Steady-state epochs must not move this
    /// counter — the no-churn regression test asserts exactly that.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Buckets currently armed (for inspection).
    pub fn bucket_count(&self) -> usize {
        self.active
    }

    /// Schedule a poll attempt at `time`. Times at or beyond the epoch
    /// end land in the last bucket; times after the epoch start but
    /// before the sweep cursor (which the dispatcher never produces —
    /// retries back off forwards) are clamped to the cursor's bucket to
    /// keep the sweep correct anyway.
    ///
    /// # Errors
    /// A non-finite `time`, or one before the epoch origin, is rejected
    /// with [`CoreError::InvalidValue`]: a NaN would otherwise cast to
    /// bucket 0 and silently corrupt the pop order, and a pre-epoch
    /// instant means the caller's clock ran backwards. (`-0.0` at an
    /// origin of `0.0` is fine — IEEE compares it equal — and lands in
    /// the first bucket.)
    pub fn push(&mut self, time: f64, element: usize, attempt: u32) -> Result<()> {
        if !time.is_finite() || time < self.origin {
            return Err(CoreError::InvalidValue {
                what: "calendar event time",
                index: Some(element),
                value: time,
            });
        }
        let idx = (((time - self.origin) * self.inv_width) as usize)
            .min(self.active - 1)
            .max(self.cursor);
        let bucket = &mut self.buckets[idx];
        if bucket.len() == bucket.capacity() {
            self.grows += 1;
        }
        bucket.push(Entry {
            time,
            seq: self.seq,
            element,
            attempt,
        });
        self.seq += 1;
        self.len += 1;
        Ok(())
    }

    /// Remove and return the earliest entry (`(time, seq)` order —
    /// identical to a min-heap on the same key).
    pub fn pop(&mut self) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
        let bucket = &mut self.buckets[self.cursor];
        let mut best = 0;
        for (k, e) in bucket.iter().enumerate().skip(1) {
            let b = &bucket[best];
            if e.time.total_cmp(&b.time).then(e.seq.cmp(&b.seq)).is_lt() {
                best = k;
            }
        }
        self.len -= 1;
        Some(bucket.swap_remove(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.begin_epoch(0.0, 1.0, 8);
        for (t, e) in [(0.7, 1), (0.1, 2), (0.4, 3), (0.1, 4), (0.95, 5)] {
            q.push(t, e, 0).unwrap();
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.element).collect();
        assert_eq!(order, vec![2, 4, 3, 1, 5], "time asc, ties by push order");
        assert!(q.is_empty());
    }

    #[test]
    fn matches_binary_heap_order_with_retries() {
        // Replay the dispatcher's access pattern against a reference
        // heap: uniform initial slots, then mid-drain pushes at
        // popped-time + backoff. Orders must agree exactly.
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Rev(f64, u64, usize);
        impl Eq for Rev {}
        impl Ord for Rev {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                o.0.total_cmp(&self.0).then_with(|| o.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Rev {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }

        let n = 37;
        let epoch_len = 1.0;
        let slot = epoch_len / n as f64;
        let mut q = CalendarQueue::new();
        q.begin_epoch(0.0, epoch_len, n);
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for k in 0..n {
            let t = (k as f64 + 0.5) * slot;
            q.push(t, k, 0).unwrap();
            heap.push(Rev(t, seq, k));
            seq += 1;
        }
        let mut step = 0usize;
        while let Some(e) = q.pop() {
            let Rev(ht, hs, he) = heap.pop().expect("same length");
            assert_eq!((e.time, e.seq, e.element), (ht, hs, he), "step {step}");
            // Every third pop spawns a "retry" at a deterministic backoff.
            if step.is_multiple_of(3) && e.attempt == 0 {
                let rt = (e.time + 0.07 * ((step % 5) as f64 + 1.0)).min(epoch_len);
                q.push(rt, e.element, 1).unwrap();
                heap.push(Rev(rt, seq, e.element));
                seq += 1;
            }
            step += 1;
        }
        assert!(heap.is_empty());
    }

    #[test]
    fn reuse_does_not_grow_capacity() {
        let mut q = CalendarQueue::new();
        for epoch in 0..50 {
            q.begin_epoch(epoch as f64, 1.0, 16);
            for k in 0..16 {
                q.push(epoch as f64 + (k as f64 + 0.5) / 16.0, k, 0)
                    .unwrap();
            }
            while q.pop().is_some() {}
            if epoch == 0 {
                assert!(q.grows() > 0, "first epoch allocates");
            }
        }
        let after_warmup = {
            let mut q2 = CalendarQueue::new();
            q2.begin_epoch(0.0, 1.0, 16);
            for k in 0..16 {
                q2.push((k as f64 + 0.5) / 16.0, k, 0).unwrap();
            }
            while q2.pop().is_some() {}
            q2.grows()
        };
        assert_eq!(
            q.grows(),
            after_warmup,
            "50 steady epochs must allocate exactly as much as one"
        );
    }

    #[test]
    fn clamps_out_of_range_times() {
        let mut q = CalendarQueue::new();
        q.begin_epoch(1.0, 1.0, 4);
        q.push(2.5, 0, 0).unwrap(); // beyond the epoch end: last bucket
        q.push(1.1, 1, 0).unwrap();
        assert_eq!(q.pop().unwrap().element, 1);
        assert_eq!(q.pop().unwrap().element, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn shrinking_epochs_reuse_buckets() {
        let mut q = CalendarQueue::new();
        q.begin_epoch(0.0, 1.0, 32);
        for k in 0..32 {
            q.push((k as f64 + 0.5) / 32.0, k, 0).unwrap();
        }
        while q.pop().is_some() {}
        let grown = q.grows();
        // A smaller epoch fits entirely in existing storage.
        q.begin_epoch(1.0, 1.0, 8);
        for k in 0..8 {
            q.push(1.0 + (k as f64 + 0.5) / 8.0, k, 0).unwrap();
        }
        let drained: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.element).collect();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
        assert_eq!(q.grows(), grown, "shrink must not allocate");
    }

    #[test]
    fn rejects_non_finite_and_pre_epoch_times() {
        let mut q = CalendarQueue::new();
        q.begin_epoch(1.0, 1.0, 4);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.999, -1.0] {
            let err = q.push(bad, 3, 0).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("calendar event time"), "{bad}: {msg}");
        }
        assert!(q.is_empty(), "rejected pushes must not enqueue");
        // The queue stays usable after a rejection.
        q.push(1.5, 7, 0).unwrap();
        assert_eq!(q.pop().unwrap().element, 7);
    }

    #[test]
    fn negative_zero_at_origin_zero_is_accepted() {
        // IEEE: -0.0 == 0.0, so the origin check passes and the cast
        // (-0.0 * inv_width) as usize lands in bucket 0 — first out.
        let mut q = CalendarQueue::new();
        q.begin_epoch(0.0, 1.0, 4);
        q.push(0.5, 1, 0).unwrap();
        q.push(-0.0, 2, 0).unwrap();
        assert_eq!(q.pop().unwrap().element, 2);
        assert_eq!(q.pop().unwrap().element, 1);
    }

    #[test]
    fn exact_bucket_boundary_times_keep_global_order() {
        // Times exactly on bucket boundaries (k/n · len) must neither
        // straddle the wrong bucket nor break (time, seq) order, and the
        // epoch-end instant itself clamps into the last bucket.
        let n = 4;
        let mut q = CalendarQueue::new();
        q.begin_epoch(0.0, 1.0, n);
        for k in (0..=n).rev() {
            q.push(k as f64 / n as f64, k, 0).unwrap();
        }
        let popped: Vec<(f64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.element))
            .collect();
        let times: Vec<f64> = popped.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(
            popped.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn empty_epoch_is_fine() {
        let mut q = CalendarQueue::new();
        q.begin_epoch(0.0, 1.0, 0);
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
        q.push(0.5, 0, 0).unwrap(); // single fallback bucket
        assert_eq!(q.pop().unwrap().element, 0);
    }
}
