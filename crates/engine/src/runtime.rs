//! The engine proper: the epoch loop closing the paper's operational
//! loop online.
//!
//! Per epoch the engine (1) executes the active schedule through the
//! budgeted dispatcher, (2) folds the resulting poll outcomes and the
//! epoch's access events into the incremental estimators, (3) feeds the
//! fresh `(p̂, λ̂)` snapshot to the drift-gated adaptive scheduler, and
//! (4) scores the epoch: perceived freshness of the *achieved* poll
//! frequencies under the epoch's estimates.
//!
//! Determinism: given a fixed input stream, poll source, and config, the
//! run — every dispatch, failure, estimate, drift value, and re-solve
//! decision — is a pure function, and [`EngineReport::to_json`] is
//! byte-identical across repeats. Wall-clock only enters the obs metrics
//! (`events_per_sec`), never the report.

use std::iter::Peekable;
use std::time::Instant;

use freshen_core::error::{CoreError, Result};
use freshen_core::estimate::{
    EwmaRateEstimator, LlnRateEstimator, SaRateEstimator, WindowRateEstimator,
};
use freshen_core::exec::Executor;
use freshen_core::problem::{Problem, Solution};
use freshen_core::profile::ProfileEstimator;
use freshen_heuristics::adaptive::{AdaptiveScheduler, DriftMonitor};
use freshen_obs::{EpochSample, Health, Recorder, SloEngine, TimeSeries};
use freshen_workload::trace::AccessRecord;

use crate::audit::LedgerAudit;
use crate::config::{EngineConfig, EstimatorKind, ResolvePolicy};
use crate::dispatch::PollDispatcher;
use crate::report::{EngineReport, EpochStats};
use crate::source::PollSource;
use crate::state::{EngineState, EstimatorState};

/// The configured change-rate estimator behind one interface.
#[derive(Debug)]
enum RateTracker {
    Ewma(EwmaRateEstimator),
    Window(WindowRateEstimator),
    Lln(LlnRateEstimator),
    Sa(SaRateEstimator),
}

impl RateTracker {
    fn new(n: usize, kind: EstimatorKind, prior: f64) -> Result<Self> {
        Ok(match kind {
            EstimatorKind::Ewma { gain } => {
                RateTracker::Ewma(EwmaRateEstimator::new(n, gain, prior)?)
            }
            EstimatorKind::Window { len } => RateTracker::Window(WindowRateEstimator::new(n, len)?),
            EstimatorKind::Lln => RateTracker::Lln(LlnRateEstimator::new(n)?),
            EstimatorKind::Sa { gain, decay } => {
                RateTracker::Sa(SaRateEstimator::new(n, gain, decay, prior)?)
            }
        })
    }

    fn observe(&mut self, element: usize, interval: f64, changed: bool) -> Result<()> {
        match self {
            RateTracker::Ewma(e) => e.observe(element, interval, changed),
            RateTracker::Window(e) => e.observe(element, interval, changed),
            RateTracker::Lln(e) => e.observe(element, interval, changed),
            RateTracker::Sa(e) => e.observe(element, interval, changed),
        }
    }

    fn rates(&self, fallback: f64) -> Vec<f64> {
        match self {
            RateTracker::Ewma(e) => e.rates(fallback),
            RateTracker::Window(e) => e.rates(fallback),
            RateTracker::Lln(e) => e.rates(fallback),
            RateTracker::Sa(e) => e.rates(fallback),
        }
    }

    fn export(&self) -> EstimatorState {
        match self {
            RateTracker::Ewma(e) => EstimatorState::Ewma {
                rates: e.raw_rates().to_vec(),
                seen: e.observation_counts().to_vec(),
            },
            RateTracker::Window(e) => EstimatorState::Window {
                window: e.window(),
                entries: e.entries(),
            },
            RateTracker::Lln(e) => {
                let (polls, detections, interval_sum) = e.state();
                EstimatorState::Lln {
                    polls: polls.to_vec(),
                    detections: detections.to_vec(),
                    interval_sum: interval_sum.to_vec(),
                }
            }
            RateTracker::Sa(e) => EstimatorState::Sa {
                rates: e.raw_rates().to_vec(),
                seen: e.observation_counts().to_vec(),
            },
        }
    }

    /// Rebuild from exported state; the kind and its parameters come from
    /// `config` and must match the snapshot's shape.
    fn restore(n: usize, kind: EstimatorKind, state: EstimatorState) -> Result<Self> {
        match (kind, state) {
            (EstimatorKind::Ewma { gain }, EstimatorState::Ewma { rates, seen }) => {
                if rates.len() != n {
                    return Err(CoreError::LengthMismatch {
                        what: "estimator rates",
                        expected: n,
                        actual: rates.len(),
                    });
                }
                Ok(RateTracker::Ewma(EwmaRateEstimator::from_state(
                    rates, seen, gain,
                )?))
            }
            (EstimatorKind::Window { len }, EstimatorState::Window { window, entries }) => {
                if entries.len() != n {
                    return Err(CoreError::LengthMismatch {
                        what: "estimator entries",
                        expected: n,
                        actual: entries.len(),
                    });
                }
                if window != len {
                    return Err(CoreError::InvalidConfig(format!(
                        "snapshot window {window} does not match configured window {len}"
                    )));
                }
                Ok(RateTracker::Window(WindowRateEstimator::from_state(
                    window, entries,
                )?))
            }
            (
                EstimatorKind::Lln,
                EstimatorState::Lln {
                    polls,
                    detections,
                    interval_sum,
                },
            ) => {
                if polls.len() != n {
                    return Err(CoreError::LengthMismatch {
                        what: "estimator polls",
                        expected: n,
                        actual: polls.len(),
                    });
                }
                Ok(RateTracker::Lln(LlnRateEstimator::from_state(
                    polls,
                    detections,
                    interval_sum,
                )?))
            }
            (EstimatorKind::Sa { gain, decay }, EstimatorState::Sa { rates, seen }) => {
                if rates.len() != n {
                    return Err(CoreError::LengthMismatch {
                        what: "estimator rates",
                        expected: n,
                        actual: rates.len(),
                    });
                }
                Ok(RateTracker::Sa(SaRateEstimator::from_state(
                    rates, seen, gain, decay,
                )?))
            }
            _ => Err(CoreError::InvalidConfig(
                "snapshot estimator kind does not match the configured estimator".into(),
            )),
        }
    }
}

/// The online freshening runtime. Construct with a prior [`Problem`]
/// (the operator's initial belief about `(p, λ)` and the bandwidth
/// budget), then [`run`](Engine::run) it over an access stream and a
/// poll source.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    bandwidth: f64,
    /// The prior's per-poll cost column, re-attached to every rebuilt
    /// estimates problem (costs are operator-declared, not estimated).
    costs: Option<Vec<f64>>,
    profile: ProfileEstimator,
    rates: RateTracker,
    scheduler: AdaptiveScheduler,
    dispatcher: PollDispatcher,
    recorder: Recorder,
    executor: Executor,
    estimates: Problem,
    last_poll: Vec<f64>,
    ledger: Option<LedgerAudit>,
    /// Per-epoch stats of the run in progress; its length is the epoch
    /// counter, so [`step`](Engine::step) needs no separate index.
    history: Vec<EpochStats>,
    /// Bounded telemetry ring of per-epoch samples (always populated;
    /// downsamples itself rather than growing with run length).
    series: TimeSeries,
    /// Freshness-SLO evaluator, armed by [`EngineConfig::slo`].
    slo: Option<SloEngine>,
}

impl Engine {
    /// Validate the config, solve the prior problem for the initial
    /// schedule, and arm estimators, drift monitor, and dispatcher.
    pub fn new(prior: &Problem, config: EngineConfig) -> Result<Self> {
        config.validate()?;
        let n = prior.len();
        let slo = match &config.slo {
            Some(rules) => Some(SloEngine::new(rules.clone()).map_err(CoreError::InvalidConfig)?),
            None => None,
        };
        // Operating levy: explicit `poll_cost`, or the shadow price γ* a
        // binding `cost_budget` implies on the prior (a pure function of
        // the prior, so restores re-derive the same levy).
        let levy = match config.cost_budget {
            Some(cap) => {
                let solver = freshen_solver::LagrangeSolver::default();
                solver
                    .solve_cost_budget(prior, cap)?
                    .cost_multiplier
                    .unwrap_or(0.0)
            }
            None => config.poll_cost,
        };
        Ok(Engine {
            bandwidth: prior.bandwidth(),
            costs: prior.poll_costs().map(<[f64]>::to_vec),
            profile: ProfileEstimator::new(n, config.profile_decay)?,
            rates: RateTracker::new(n, config.estimator, config.fallback_rate)?,
            scheduler: AdaptiveScheduler::new_costed(prior, config.drift_threshold, levy)?
                .with_repair_fraction(config.repair_fraction),
            dispatcher: PollDispatcher::new(n, prior.bandwidth(), &config)?,
            recorder: Recorder::disabled(),
            executor: Executor::serial(),
            estimates: prior.clone(),
            last_poll: vec![0.0; n],
            ledger: config.audit.then(LedgerAudit::new),
            history: Vec::new(),
            series: TimeSeries::default(),
            slo,
            config,
        })
    }

    /// Attach a metrics/trace recorder (builder-style, like the solver
    /// and simulator).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Run re-solves (and the solver's inner allocation loop) on
    /// `executor`. With a thread pool, each epoch's drift-gated re-solve
    /// is spawned onto a worker and overlapped with the epoch's PF
    /// scoring, so the event loop never blocks on the solver; the solver
    /// itself also parallelizes its water-filling pass. Reports stay
    /// byte-identical at any worker count — the two overlapped steps are
    /// data-independent.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.scheduler = self.scheduler.with_executor(executor.clone());
        self.executor = executor;
        self
    }

    /// Mirror size.
    pub fn len(&self) -> usize {
        self.last_poll.len()
    }

    /// True when tracking zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.last_poll.is_empty()
    }

    /// Run the configured number of epochs, ingesting `accesses` (any
    /// stream of time-ordered [`AccessRecord`]s — a streaming trace
    /// reader or a live generator) and polling `source`.
    ///
    /// Equivalent to resetting the epoch history and calling
    /// [`step`](Engine::step) until [`EngineConfig::epochs`] epochs have
    /// run, then [`report`](Engine::report).
    pub fn run<I>(&mut self, accesses: I, source: &mut dyn PollSource) -> Result<EngineReport>
    where
        I: IntoIterator<Item = Result<AccessRecord>>,
    {
        let started = Instant::now();
        let mut accesses = accesses.into_iter().peekable();
        self.history.clear();
        if let Some(ledger) = &mut self.ledger {
            ledger.clear();
        }
        while self.history.len() < self.config.epochs {
            self.step(&mut accesses, source)?;
        }
        let totals = self.report();

        // Throughput and headline gauges for bench telemetry; wall time
        // stays out of the report itself.
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            self.recorder
                .gauge("events_per_sec")
                .set(totals.events as f64 / elapsed);
        }
        self.recorder.gauge("pf").set(totals.realized_pf);
        Ok(totals)
    }

    /// Execute exactly one epoch: dispatch the active schedule, fold poll
    /// outcomes and the epoch's accesses into the estimators, run the
    /// drift-gated re-solve decision, and append the epoch's stats to the
    /// [`history`](Engine::history).
    ///
    /// This is the unit `freshen-serve` drives: it checkpoints between
    /// steps and drains after the in-flight step on shutdown. The epoch
    /// index is `history().len()`, so a restored engine continues exactly
    /// where the exporting one stopped.
    pub fn step<I>(
        &mut self,
        accesses: &mut Peekable<I>,
        source: &mut dyn PollSource,
    ) -> Result<EpochStats>
    where
        I: Iterator<Item = Result<AccessRecord>>,
    {
        let n = self.len();
        let epoch = self.history.len();
        let resolve_counter = self.recorder.counter("engine.resolves");
        let skip_counter = self.recorder.counter("engine.skips");
        let repair_counter = self.recorder.counter("engine.repairs");
        let repair_fallback_counter = self.recorder.counter("engine.repair_fallbacks");
        let audit_counter = self.recorder.counter("audit.violations");
        let offload_counter = self.recorder.counter("engine.offloaded_resolves");
        let drift_gauge = self.recorder.gauge("engine.drift");
        let pf_gauge = self.recorder.gauge("engine.realized_pf");

        let mut span = self.recorder.span("engine.epoch");
        span.arg("epoch", epoch);
        let epoch_start = epoch as f64 * self.config.epoch_len;
        let epoch_end = epoch_start + self.config.epoch_len;

        // 1. Execute the active schedule under the budget.
        let freqs = self.scheduler.schedule().frequencies.clone();
        let priorities: Vec<f64> = self
            .estimates
            .access_probs()
            .iter()
            .zip(self.estimates.change_rates())
            .map(|(&p, &l)| p * l)
            .collect();
        let credit_in = self
            .ledger
            .is_some()
            .then(|| self.dispatcher.total_credit());
        let outcome = self.dispatcher.run_epoch(
            epoch,
            epoch_start,
            self.config.epoch_len,
            &freqs,
            &priorities,
            source,
            &self.recorder,
        )?;
        if let Some(ledger) = &mut self.ledger {
            let record = ledger.record(
                epoch,
                credit_in.expect("sampled when the ledger is armed"),
                &freqs,
                self.config.epoch_len,
                &outcome,
                self.dispatcher.total_credit(),
                self.dispatcher.min_credit(),
            );
            if record.violated {
                audit_counter.inc();
            }
        }

        // 2. Fold poll outcomes into the change-rate estimator.
        for poll in &outcome.polls {
            let interval = (poll.time - self.last_poll[poll.element]).max(1e-9);
            self.rates.observe(poll.element, interval, poll.changed)?;
            self.last_poll[poll.element] = poll.time;
        }

        // ... and the epoch's accesses into the profile estimator.
        let mut epoch_accesses = 0u64;
        let mut stale_served = 0u64;
        while let Some(record) = accesses.peek() {
            match record {
                Ok(a) if a.time < epoch_end => {
                    if a.element >= n {
                        return Err(CoreError::InvalidValue {
                            what: "access element",
                            index: Some(a.element),
                            value: a.element as f64,
                        });
                    }
                    self.profile.observe(a.element);
                    epoch_accesses += 1;
                    if outcome.starved[a.element] {
                        stale_served += 1;
                    }
                    accesses.next();
                }
                Ok(_) => break,
                Err(_) => {
                    // Surface the stream error (unwrap is safe: we
                    // just peeked an Err).
                    return Err(accesses.next().expect("peeked item").unwrap_err());
                }
            }
        }

        // 3. Fresh estimates → drift monitor → (maybe) warm re-solve.
        self.estimates = {
            let mut builder = Problem::builder()
                .change_rates(self.rates.rates(self.config.fallback_rate))
                .access_weights(self.profile.access_probs_smoothed(self.config.smoothing))
                .bandwidth(self.bandwidth);
            if let Some(costs) = &self.costs {
                builder = builder.costs(costs.clone());
            }
            builder.build()?
        };
        // 4. ... overlapped with scoring the epoch (estimates at the
        // achieved frequencies). The re-solve decision and the PF
        // score read the same immutable estimates and touch disjoint
        // state, so on a pool the solve runs on a worker while the
        // score runs here — the loop never blocks on the solver.
        let achieved: Vec<f64> = outcome
            .succeeded
            .iter()
            .map(|&polls| polls as f64 / self.config.epoch_len)
            .collect();
        if self.executor.is_parallel() {
            offload_counter.inc();
        }
        let repairs_before = self.scheduler.repairs();
        let fallbacks_before = self.scheduler.repair_fallbacks();
        let (resolve_outcome, realized_pf) = {
            let scheduler = &mut self.scheduler;
            let estimates = &self.estimates;
            let policy = self.config.resolve_policy;
            self.executor.join(
                move || match policy {
                    ResolvePolicy::DriftGated => scheduler.observe(estimates),
                    ResolvePolicy::EveryEpoch => scheduler.resolve(estimates).map(|_| true),
                },
                || estimates.perceived_freshness(&achieved),
            )
        };
        let resolved = resolve_outcome?;
        let drift = self.scheduler.last_drift().unwrap_or(0.0);
        if resolved {
            resolve_counter.inc();
        } else {
            skip_counter.inc();
        }
        repair_counter.add((self.scheduler.repairs() - repairs_before) as u64);
        repair_fallback_counter.add((self.scheduler.repair_fallbacks() - fallbacks_before) as u64);
        drift_gauge.set(drift);
        pf_gauge.set(realized_pf);

        let stats = EpochStats {
            index: epoch,
            start: epoch_start,
            drift,
            resolved,
            accesses: epoch_accesses,
            stale_served,
            dispatched: outcome.dispatched,
            succeeded: outcome.polls.len() as u64,
            failures: outcome.failures,
            retries: outcome.retries,
            deferred: outcome.deferred,
            shed: outcome.shed,
            realized_pf,
        };
        self.history.push(stats.clone());
        self.observe_epoch(&stats, epoch_end);
        Ok(stats)
    }

    /// Fold one finished epoch into the telemetry ring and (when armed)
    /// the SLO evaluator. Everything here reads deterministic run state
    /// only — wall clock never enters the sample.
    fn observe_epoch(&mut self, stats: &EpochStats, epoch_end: f64) {
        // Exact order statistics over the per-element ages at epoch end
        // (time since last successful poll). O(n log n) on a vector the
        // engine already owns — fine at epoch cadence.
        let mut ages: Vec<f64> = self.last_poll.iter().map(|&t| epoch_end - t).collect();
        ages.sort_unstable_by(f64::total_cmp);
        let rank = |q: f64| {
            let idx = ((q * ages.len() as f64).ceil() as usize).max(1) - 1;
            ages[idx.min(ages.len() - 1)]
        };
        let mut sample = EpochSample {
            epoch: stats.index as u64,
            realized_pf: stats.realized_pf,
            drift: stats.drift,
            age_p50: rank(0.50),
            age_p95: rank(0.95),
            age_max: ages[ages.len() - 1],
            credit: self.dispatcher.total_credit(),
            resolves: self.scheduler.resolves() as u64,
            skips: self.scheduler.skips() as u64,
            shed: stats.shed,
            dispatched: stats.dispatched,
            accesses: stats.accesses,
            stale_served: stats.stale_served,
            health: Health::Ok.as_u8(),
            requests: 0,
            request_p95_us: 0.0,
        };
        if let Some(slo) = &mut self.slo {
            let transition = slo.evaluate(&sample);
            sample.health = slo.health().as_u8();
            self.recorder.counter("obs.slo.evaluations").inc();
            if let Some(alert) = transition {
                let counter = match alert.health {
                    Health::Ok => "obs.slo.recoveries",
                    Health::Warn => "obs.slo.warns",
                    Health::Breach => "obs.slo.breaches",
                };
                self.recorder.counter(counter).inc();
                self.recorder.event(
                    "slo.transition",
                    &[
                        ("epoch", &alert.epoch),
                        ("state", &alert.health.as_str()),
                        ("rule", &alert.rule),
                        ("value", &alert.value),
                        ("threshold", &alert.threshold),
                    ],
                );
            }
        }
        self.series.push(sample);
        if self.config.progress_every > 0
            && (stats.index + 1).is_multiple_of(self.config.progress_every)
        {
            eprintln!(
                "epoch {:>6}  pf {:.4}  health {}  credit {:.2}  dispatched {}  shed {:.2}",
                stats.index,
                stats.realized_pf,
                self.health().as_str(),
                sample.credit,
                stats.dispatched,
                stats.shed,
            );
        }
    }

    /// The report over every epoch stepped so far. Totals are derived
    /// entirely from the epoch history plus the scheduler's counters, so
    /// the report is identical whether the epochs ran in one process or
    /// across a checkpoint/restore boundary.
    pub fn report(&self) -> EngineReport {
        let mut totals = EngineReport {
            elements: self.len(),
            epoch_len: self.config.epoch_len,
            seed: self.config.seed,
            events: 0,
            accesses: 0,
            polls_succeeded: 0,
            polls_failed: 0,
            retries: 0,
            deferred: 0,
            resolves: self.scheduler.resolves() as u64,
            skips: self.scheduler.skips() as u64,
            repairs: self.scheduler.repairs() as u64,
            repair_fallbacks: self.scheduler.repair_fallbacks() as u64,
            realized_pf: 0.0,
            epochs: self.history.clone(),
        };
        for e in &self.history {
            totals.events += e.accesses + e.dispatched;
            totals.accesses += e.accesses;
            totals.polls_succeeded += e.succeeded;
            totals.polls_failed += e.failures;
            totals.retries += e.retries;
            totals.deferred += e.deferred;
        }
        let measured: Vec<f64> = self
            .history
            .iter()
            .skip(self.config.warmup_epochs)
            .map(|e| e.realized_pf)
            .collect();
        totals.realized_pf = measured.iter().sum::<f64>() / measured.len().max(1) as f64;
        totals
    }

    /// Per-epoch stats accumulated by [`step`](Engine::step) /
    /// [`run`](Engine::run) so far.
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// The epoch the next [`step`](Engine::step) will execute.
    pub fn epoch(&self) -> usize {
        self.history.len()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The active poll schedule.
    pub fn schedule(&self) -> &Solution {
        self.scheduler.schedule()
    }

    /// Export every piece of cross-epoch state as plain data — see
    /// [`EngineState`] for the exactness contract.
    pub fn export_state(&self) -> EngineState {
        EngineState {
            last_poll: self.last_poll.clone(),
            estimator: self.rates.export(),
            profile_counts: self.profile.counts().to_vec(),
            profile_observations: self.profile.observations(),
            schedule: self.scheduler.schedule().clone(),
            baseline_probs: self.scheduler.monitor().baseline_probs().to_vec(),
            baseline_rates: self.scheduler.monitor().baseline_rates().to_vec(),
            resolves: self.scheduler.resolves() as u64,
            skips: self.scheduler.skips() as u64,
            repairs: self.scheduler.repairs() as u64,
            repair_fallbacks: self.scheduler.repair_fallbacks() as u64,
            last_drift: self.scheduler.last_drift(),
            credit: self.dispatcher.credit().to_vec(),
            attempts: self.dispatcher.attempt_counts().to_vec(),
            history: self.history.clone(),
            series: self.series.export(),
            slo: self.slo.as_ref().map(|s| s.export()),
        }
    }

    /// Inject state exported by [`export_state`](Engine::export_state)
    /// into this engine, which must have been constructed with the same
    /// prior shape and configuration. After a successful restore, every
    /// subsequent [`step`](Engine::step) is byte-identical to the engine
    /// that exported the state.
    ///
    /// Validation happens before any mutation: an inconsistent state (a
    /// length mismatch, a mismatched estimator kind, non-finite values, a
    /// gapped history) comes back as a [`CoreError`] and leaves the
    /// engine untouched.
    pub fn restore_state(&mut self, state: EngineState) -> Result<()> {
        let n = self.len();
        if state.last_poll.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "last-poll instants",
                expected: n,
                actual: state.last_poll.len(),
            });
        }
        for (i, &t) in state.last_poll.iter().enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "last-poll instant",
                    index: Some(i),
                    value: t,
                });
            }
        }
        if state.profile_counts.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "profile counts",
                expected: n,
                actual: state.profile_counts.len(),
            });
        }
        if state.baseline_probs.len() != n || state.schedule.frequencies.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "scheduler state",
                expected: n,
                actual: state
                    .baseline_probs
                    .len()
                    .max(state.schedule.frequencies.len()),
            });
        }
        for (k, e) in state.history.iter().enumerate() {
            if e.index != k {
                return Err(CoreError::Inconsistent {
                    routine: "engine-restore",
                    invariant: "epoch history must be gapless and ordered",
                });
            }
        }

        // Build every fallible component before mutating anything.
        let series = TimeSeries::from_state(self.series.capacity(), &state.series)
            .map_err(|e| CoreError::InvalidConfig(format!("telemetry series: {e}")))?;
        // SLO state restores only when this engine has rules armed; an
        // armed engine restoring a pre-SLO snapshot starts evaluating
        // fresh, and an unarmed engine ignores any carried SLO state.
        let slo = match (&self.config.slo, &state.slo) {
            (Some(rules), Some(slo_state)) => Some(
                SloEngine::from_state(rules.clone(), slo_state)
                    .map_err(CoreError::InvalidConfig)?,
            ),
            (Some(rules), None) => {
                Some(SloEngine::new(rules.clone()).map_err(CoreError::InvalidConfig)?)
            }
            (None, _) => None,
        };
        let rates = RateTracker::restore(n, self.config.estimator, state.estimator)?;
        let profile = ProfileEstimator::from_state(
            state.profile_counts,
            self.config.profile_decay,
            state.profile_observations,
        )?;
        let monitor = DriftMonitor::from_state(
            state.baseline_probs,
            state.baseline_rates,
            self.config.drift_threshold,
        )?;
        let scheduler = AdaptiveScheduler::from_state(
            state.schedule,
            monitor,
            state.resolves as usize,
            state.skips as usize,
            state.last_drift,
        )?
        .with_repair_fraction(self.config.repair_fraction)
        .with_repair_counters(state.repairs as usize, state.repair_fallbacks as usize)
        .with_executor(self.executor.clone())
        // Same operating levy the constructor derived (explicit, or the
        // cost-budget calibration — this engine already carries it).
        .with_cost_weight(self.scheduler.cost_weight());
        // The live `(p̂, λ̂)` snapshot is a pure function of estimator
        // state, so it is recomputed rather than checkpointed. Before the
        // first epoch it is the prior, which the fresh engine already
        // holds.
        let estimates = if state.history.is_empty() {
            None
        } else {
            let mut builder = Problem::builder()
                .change_rates(rates.rates(self.config.fallback_rate))
                .access_weights(profile.access_probs_smoothed(self.config.smoothing))
                .bandwidth(self.bandwidth);
            if let Some(costs) = &self.costs {
                builder = builder.costs(costs.clone());
            }
            Some(builder.build()?)
        };
        self.dispatcher
            .restore_state(state.credit, state.attempts)?;
        self.rates = rates;
        self.profile = profile;
        self.scheduler = scheduler;
        self.last_poll = state.last_poll;
        self.history = state.history;
        self.series = series;
        self.slo = slo;
        if let Some(estimates) = estimates {
            self.estimates = estimates;
        }
        if let Some(ledger) = &mut self.ledger {
            ledger.clear();
        }
        Ok(())
    }

    /// The engine's current `(p̂, λ̂)` snapshot (the prior before the
    /// first epoch completes).
    pub fn estimates(&self) -> &Problem {
        &self.estimates
    }

    /// The adaptive scheduler (active schedule, resolve/skip counters).
    pub fn scheduler(&self) -> &AdaptiveScheduler {
        &self.scheduler
    }

    /// The poll-credit ledger from the most recent run, when
    /// [`EngineConfig::audit`] is on (`None` otherwise). Each epoch's
    /// conservation residual and breach flag are retained for
    /// post-mortem inspection.
    pub fn ledger(&self) -> Option<&LedgerAudit> {
        self.ledger.as_ref()
    }

    /// The bounded per-epoch telemetry ring (always populated).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The SLO evaluator, when [`EngineConfig::slo`] armed one.
    pub fn slo(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// Current SLO health; `Ok` when no rules are armed.
    pub fn health(&self) -> Health {
        self.slo.as_ref().map_or(Health::Ok, |s| s.health())
    }

    /// The `/health` JSON body, when SLO rules are armed.
    pub fn health_json(&self) -> Option<String> {
        self.slo
            .as_ref()
            .map(|s| s.health_json(self.history.len().saturating_sub(1) as u64))
    }

    /// Stamp wall-clock control-plane load onto the retained sample for
    /// `epoch` (see [`TimeSeries::annotate_requests`]); annotations never
    /// feed back into reports or SLO evaluation.
    pub fn annotate_requests(&mut self, epoch: u64, requests: u64, p95_us: f64) {
        self.series.annotate_requests(epoch, requests, p95_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{LivePollSource, ReplayPollSource};
    use crate::stream::{replay_accesses, LiveAccessStream};
    use freshen_workload::trace::PollRecord;

    fn prior(n: usize, bandwidth: f64) -> Problem {
        Problem::builder()
            .change_rates(vec![2.0; n])
            .access_weights(vec![1.0; n])
            .bandwidth(bandwidth)
            .build()
            .unwrap()
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            epochs: 8,
            warmup_epochs: 2,
            seed: 13,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn live_run_produces_consistent_totals() {
        let p = prior(6, 6.0);
        let mut engine = Engine::new(&p, small_config()).unwrap();
        let accesses = LiveAccessStream::new(p.access_probs(), 100.0, 3, 8.0);
        let mut source = LivePollSource::new(&[3.0, 3.0, 2.0, 2.0, 1.0, 1.0], 5, 16.0).unwrap();
        let report = engine.run(accesses, &mut source).unwrap();

        assert_eq!(report.elements, 6);
        assert_eq!(report.epochs.len(), 8);
        assert!(report.accesses > 500, "≈100/period over 8 periods");
        assert_eq!(
            report.events,
            report.accesses + report.epochs.iter().map(|e| e.dispatched).sum::<u64>()
        );
        assert!(report.polls_succeeded > 0);
        assert!(report.realized_pf > 0.0 && report.realized_pf <= 1.0);
        assert_eq!(
            report.resolves + report.skips,
            1 + report.epochs.len() as u64,
            "initial solve plus one decision per epoch"
        );
    }

    #[test]
    fn trace_replay_is_byte_identical() {
        let n = 4;
        // A deterministic synthetic trace, no RNG involved.
        let mut access_records = Vec::new();
        let mut poll_records = Vec::new();
        for k in 0..400 {
            access_records.push(AccessRecord {
                time: k as f64 * 0.02,
                element: [0, 0, 1, 2, 0, 3, 1, 0][k % 8],
            });
        }
        for k in 0..80 {
            poll_records.push(PollRecord {
                time: k as f64 * 0.1,
                element: k % n,
                changed: k % 3 != 0,
            });
        }
        let mut config = small_config();
        config.failure_rate = 0.2; // exercise the injected-failure path
        let run = || {
            let p = prior(n, 8.0);
            let mut engine = Engine::new(&p, config.clone()).unwrap();
            let mut source = ReplayPollSource::new(n, &poll_records).unwrap();
            engine
                .run(replay_accesses(access_records.clone()), &mut source)
                .unwrap()
                .to_json()
        };
        let first = run();
        assert_eq!(first, run(), "same trace + seed ⇒ byte-identical report");
        assert!(first.contains("\"epochs\""));
    }

    #[test]
    fn pooled_resolves_leave_the_report_byte_identical() {
        let n = 4;
        let mut access_records = Vec::new();
        let mut poll_records = Vec::new();
        for k in 0..400 {
            access_records.push(AccessRecord {
                time: k as f64 * 0.02,
                element: [0, 0, 1, 2, 0, 3, 1, 0][k % 8],
            });
        }
        for k in 0..80 {
            poll_records.push(PollRecord {
                time: k as f64 * 0.1,
                element: k % n,
                changed: k % 3 != 0,
            });
        }
        let config = small_config();
        let run = |executor: Executor| {
            let p = prior(n, 8.0);
            let mut engine = Engine::new(&p, config.clone())
                .unwrap()
                .with_executor(executor);
            let mut source = ReplayPollSource::new(n, &poll_records).unwrap();
            engine
                .run(replay_accesses(access_records.clone()), &mut source)
                .unwrap()
                .to_json()
        };
        let serial = run(Executor::serial());
        for workers in [2, 4] {
            assert_eq!(
                serial,
                run(Executor::thread_pool(workers)),
                "{workers}-worker pool must not perturb the report"
            );
        }
    }

    #[test]
    fn offloaded_resolves_are_counted() {
        let p = prior(3, 3.0);
        let recorder = Recorder::enabled();
        let mut engine = Engine::new(&p, small_config())
            .unwrap()
            .with_recorder(recorder.clone())
            .with_executor(Executor::thread_pool(2));
        let accesses = LiveAccessStream::new(p.access_probs(), 50.0, 2, 8.0);
        let mut source = LivePollSource::new(&[2.0; 3], 4, 16.0).unwrap();
        let report = engine.run(accesses, &mut source).unwrap();
        assert_eq!(
            recorder.counter_value("engine.offloaded_resolves").unwrap(),
            report.epochs.len() as u64,
            "every epoch's resolve decision goes through the pool"
        );
    }

    #[test]
    fn engine_learns_the_skewed_profile() {
        // Uniform prior, heavily skewed live traffic: after the run the
        // profile estimate must rank element 0 on top.
        let p = prior(4, 4.0);
        let mut engine = Engine::new(&p, small_config()).unwrap();
        let accesses = LiveAccessStream::new(&[0.7, 0.2, 0.05, 0.05], 200.0, 9, 8.0);
        let mut source = LivePollSource::new(&[1.0; 4], 11, 16.0).unwrap();
        engine.run(accesses, &mut source).unwrap();
        let probs = engine.estimates().access_probs().to_vec();
        assert!(probs[0] > probs[1] && probs[1] > probs[2], "{probs:?}");
        assert!(probs[0] > 0.5, "dominant element learned: {probs:?}");
    }

    #[test]
    fn stream_errors_abort_the_run() {
        let p = prior(2, 2.0);
        let mut engine = Engine::new(&p, small_config()).unwrap();
        let accesses = vec![
            Ok(AccessRecord {
                time: 0.1,
                element: 0,
            }),
            Err(CoreError::InvalidConfig("bad line".into())),
        ];
        let mut source = LivePollSource::new(&[1.0, 1.0], 1, 16.0).unwrap();
        let err = engine.run(accesses, &mut source).unwrap_err();
        assert!(err.to_string().contains("bad line"), "{err}");
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let p = prior(2, 2.0);
        let mut engine = Engine::new(&p, small_config()).unwrap();
        let accesses = vec![Ok(AccessRecord {
            time: 0.1,
            element: 9,
        })];
        let mut source = LivePollSource::new(&[1.0, 1.0], 1, 16.0).unwrap();
        assert!(engine.run(accesses, &mut source).is_err());
    }

    #[test]
    fn oracle_policy_resolves_every_epoch() {
        let p = prior(3, 3.0);
        let mut config = small_config();
        config.resolve_policy = ResolvePolicy::EveryEpoch;
        let mut engine = Engine::new(&p, config).unwrap();
        let accesses = LiveAccessStream::new(p.access_probs(), 50.0, 21, 8.0);
        let mut source = LivePollSource::new(&[2.0; 3], 22, 16.0).unwrap();
        let report = engine.run(accesses, &mut source).unwrap();
        assert!(report.epochs.iter().all(|e| e.resolved));
        assert_eq!(report.resolves, 1 + report.epochs.len() as u64);
        assert_eq!(report.skips, 0);
    }

    #[test]
    fn audited_run_keeps_a_clean_ledger_under_failures() {
        // Budget-starved + failure-injected: abandonment, retries, and
        // shedding all fire, and every epoch still balances.
        let p = prior(4, 4.0);
        let mut config = small_config();
        config.audit = true;
        config.failure_rate = 0.3;
        config.max_retries = 1;
        config.budget_factor = 0.6;
        let recorder = Recorder::enabled();
        let mut engine = Engine::new(&p, config)
            .unwrap()
            .with_recorder(recorder.clone());
        let accesses = LiveAccessStream::new(p.access_probs(), 60.0, 5, 8.0);
        let mut source = LivePollSource::new(&[2.0; 4], 6, 16.0).unwrap();
        let report = engine.run(accesses, &mut source).unwrap();

        let ledger = engine.ledger().expect("audit flag arms the ledger");
        assert_eq!(ledger.epochs().len(), report.epochs.len());
        assert!(
            ledger.is_clean(),
            "conservation breached: {:?}",
            ledger.epochs()
        );
        assert!(ledger.max_residual() < 1e-9);
        assert!(
            ledger.epochs().iter().map(|e| e.abandoned).sum::<u64>() > 0,
            "the starved run must exercise the abandonment path"
        );
        assert_eq!(recorder.counter_value("audit.violations").unwrap_or(0), 0);
        assert!(
            Engine::new(&p, small_config()).unwrap().ledger().is_none(),
            "ledger stays off by default"
        );
    }

    #[test]
    fn recorder_captures_engine_metrics() {
        let p = prior(3, 3.0);
        let recorder = Recorder::enabled();
        let mut engine = Engine::new(&p, small_config())
            .unwrap()
            .with_recorder(recorder.clone());
        let accesses = LiveAccessStream::new(p.access_probs(), 50.0, 2, 8.0);
        let mut source = LivePollSource::new(&[2.0; 3], 4, 16.0).unwrap();
        let report = engine.run(accesses, &mut source).unwrap();
        assert_eq!(
            recorder.counter_value("engine.resolves").unwrap_or(0)
                + recorder.counter_value("engine.skips").unwrap_or(0),
            report.epochs.len() as u64
        );
        assert!(recorder.gauge_value("pf").is_some());
        assert!(recorder.gauge_value("engine.drift").is_some());
        let metrics = recorder.metrics_json().expect("enabled recorder");
        assert!(metrics.contains("engine.dispatch_latency"));
    }

    #[test]
    fn state_roundtrip_resumes_byte_identically() {
        // Step an engine halfway, export, restore into a fresh engine,
        // finish both — the reports must match byte for byte. This is
        // the in-process version of the serve crate's kill-and-resume
        // guarantee, with the live sources restored by replay.
        let n = 4;
        let p = prior(n, 6.0);
        let mut config = small_config();
        config.failure_rate = 0.15; // exercise the attempt-counter path
        let rates = [3.0, 2.0, 1.5, 1.0];
        let horizon = config.horizon();
        let make_accesses =
            || LiveAccessStream::new(p.access_probs(), 80.0, 31, horizon).peekable();
        let split = 3;

        // Uninterrupted reference run.
        let mut reference = Engine::new(&p, config.clone()).unwrap();
        let mut ref_source = LivePollSource::new(&rates, 32, horizon).unwrap();
        let expected = reference
            .run(make_accesses(), &mut ref_source)
            .unwrap()
            .to_json();

        // Run `split` epochs, snapshot everything the serve layer would.
        let mut first = Engine::new(&p, config.clone()).unwrap();
        let mut source = LivePollSource::new(&rates, 32, horizon).unwrap();
        let mut accesses = make_accesses();
        let mut consumed = 0u64;
        for _ in 0..split {
            consumed += first.step(&mut accesses, &mut source).unwrap().accesses;
        }
        let state = first.export_state();
        assert_eq!(state.epoch(), split);
        let source_state = source.state();

        // Restore into fresh components and finish.
        let mut second = Engine::new(&p, config.clone()).unwrap();
        second.restore_state(state).unwrap();
        let mut source2 = LivePollSource::restore(&rates, 32, horizon, &source_state).unwrap();
        let mut accesses2 = make_accesses();
        for _ in 0..consumed {
            accesses2.next().unwrap().unwrap();
        }
        while second.epoch() < config.epochs {
            second.step(&mut accesses2, &mut source2).unwrap();
        }
        assert_eq!(
            second.report().to_json(),
            expected,
            "restored run must reproduce the uninterrupted report"
        );
    }

    #[test]
    fn telemetry_series_and_slo_follow_the_run() {
        use freshen_obs::SloConfig;
        let p = prior(4, 4.0);
        let mut config = small_config();
        // Unreachable floor: every epoch violates, so the run must walk
        // Ok → Warn → Breach and stay breached.
        config.slo = Some(SloConfig {
            target_pf: 0.999_999,
            breach_after: 2,
            ..SloConfig::default()
        });
        let recorder = Recorder::enabled();
        let mut engine = Engine::new(&p, config.clone())
            .unwrap()
            .with_recorder(recorder.clone());
        let accesses = LiveAccessStream::new(p.access_probs(), 60.0, 7, config.horizon());
        let mut source = LivePollSource::new(&[1.5; 4], 8, 16.0).unwrap();
        let report = engine.run(accesses, &mut source).unwrap();

        let samples = engine.series().samples();
        assert_eq!(samples.len(), report.epochs.len());
        assert_eq!(samples[0].epoch, 0);
        assert!(samples.iter().all(|s| s.age_p50 <= s.age_p95));
        assert!(samples.iter().all(|s| s.age_p95 <= s.age_max));
        assert_eq!(engine.health(), Health::Breach);
        let slo = engine.slo().expect("armed");
        assert!(slo.breaches() >= 1);
        assert_eq!(
            recorder.counter_value("obs.slo.evaluations").unwrap(),
            report.epochs.len() as u64
        );
        assert_eq!(recorder.counter_value("obs.slo.breaches").unwrap(), 1);
        assert!(engine.health_json().unwrap().contains("\"breach\""));

        // The evaluator and the ring survive an export/restore cycle.
        let state = engine.export_state();
        let mut fresh = Engine::new(&p, config).unwrap();
        fresh.restore_state(state.clone()).unwrap();
        assert_eq!(fresh.health(), Health::Breach);
        assert_eq!(fresh.series().samples(), engine.series().samples());
        assert_eq!(fresh.export_state(), state);

        // An engine without rules stays Ok and ignores carried SLO state.
        let mut unarmed = Engine::new(&p, small_config()).unwrap();
        unarmed.restore_state(state).unwrap();
        assert_eq!(unarmed.health(), Health::Ok);
        assert!(unarmed.slo().is_none());
        assert!(unarmed.export_state().slo.is_none());
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let p = prior(3, 3.0);
        let mut engine = Engine::new(&p, small_config()).unwrap();
        let accesses = LiveAccessStream::new(p.access_probs(), 50.0, 2, 8.0);
        let mut source = LivePollSource::new(&[2.0; 3], 4, 16.0).unwrap();
        engine.run(accesses, &mut source).unwrap();
        let good = engine.export_state();

        // Wrong element count.
        let mut fresh = Engine::new(&p, small_config()).unwrap();
        let mut bad = good.clone();
        bad.last_poll.push(0.0);
        assert!(fresh.restore_state(bad).is_err());

        // Non-finite poll instant.
        let mut bad = good.clone();
        bad.last_poll[0] = f64::NAN;
        assert!(fresh.restore_state(bad).is_err());

        // Gapped history.
        let mut bad = good.clone();
        bad.history[2].index = 7;
        assert!(fresh.restore_state(bad).is_err());

        // Estimator kind mismatch.
        let mut bad = good.clone();
        bad.estimator = EstimatorState::Window {
            window: 32,
            entries: vec![Vec::new(); 3],
        };
        assert!(fresh.restore_state(bad).is_err());

        // A failed restore leaves the engine usable: the good state
        // still applies cleanly afterwards.
        fresh.restore_state(good).unwrap();
        assert_eq!(fresh.epoch(), engine.epoch());
    }
}
