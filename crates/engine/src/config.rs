//! Engine configuration: estimator choice, re-solve policy, dispatch
//! budget, and failure-injection knobs.

use freshen_core::error::{CoreError, Result};
use freshen_obs::SloConfig;

/// Which incremental change-rate estimator the engine maintains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// Recursive constant-gain stochastic-approximation estimator
    /// ([`EwmaRateEstimator`]) — `O(1)` memory per element, geometric
    /// forgetting with step `gain ∈ (0, 1]`.
    ///
    /// [`EwmaRateEstimator`]: freshen_core::estimate::EwmaRateEstimator
    Ewma {
        /// Stochastic-approximation step size.
        gain: f64,
    },
    /// Sliding-window bias-reduced estimator ([`WindowRateEstimator`]) —
    /// `O(window)` memory per element, sharp forgetting.
    ///
    /// [`WindowRateEstimator`]: freshen_core::estimate::WindowRateEstimator
    Window {
        /// Polls remembered per element.
        len: usize,
    },
    /// Law-of-large-numbers estimator ([`LlnRateEstimator`]) — full-history
    /// sufficient statistics in `O(1)` memory per element, strongly
    /// consistent on stationary streams (error `O(1/√n)`), but forgets a
    /// regime shift only at `O(1/n)`.
    ///
    /// [`LlnRateEstimator`]: freshen_core::estimate::LlnRateEstimator
    Lln,
    /// Decreasing-gain stochastic-approximation estimator
    /// ([`SaRateEstimator`]) — Robbins–Monro schedule
    /// `η_k = gain/(1+k)^decay`, almost-sure convergence with a vanishing
    /// noise floor on stationary streams.
    ///
    /// [`SaRateEstimator`]: freshen_core::estimate::SaRateEstimator
    Sa {
        /// Initial gain `g₀ ∈ (0, 1]`.
        gain: f64,
        /// Gain decay exponent, in `(0.5, 1]` for Robbins–Monro
        /// convergence.
        decay: f64,
    },
}

/// When does the engine re-solve the Core Problem?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvePolicy {
    /// Re-solve only when the drift monitor fires (the production
    /// policy): warm-started, so small drifts are cheap.
    DriftGated,
    /// Re-solve at the end of every epoch regardless of drift — the
    /// oracle the drift-gated policy is benchmarked against.
    EveryEpoch,
}

/// Full engine configuration. [`EngineConfig::default`] is a reasonable
/// operating point for period-scale epochs; every field is a plain value
/// so configs stay copyable and comparable in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of epochs to run.
    pub epochs: usize,
    /// Epoch length in periods: the cadence of estimation, drift checks,
    /// and dispatch planning.
    pub epoch_len: f64,
    /// Leading epochs excluded from the realized-PF average while the
    /// estimators settle.
    pub warmup_epochs: usize,
    /// Jeffreys-divergence threshold handed to the drift monitor.
    pub drift_threshold: f64,
    /// Re-solve policy (drift-gated vs. every-epoch oracle).
    pub resolve_policy: ResolvePolicy,
    /// Incremental-repair gate: when a re-solve fires and the drift
    /// monitor localises it to at most this fraction of elements, the
    /// scheduler patches the previous optimum by KKT repair (then
    /// certifies with the strict audit) instead of re-running the full
    /// warm-started water-fill. `0.0` disables repair entirely.
    pub repair_fraction: f64,
    /// Change-rate estimator choice.
    pub estimator: EstimatorKind,
    /// Per-observation decay of the access-profile counts (1.0 = plain
    /// counting; slightly below 1.0 = exponential forgetting).
    pub profile_decay: f64,
    /// Additive smoothing pseudo-count for the access profile (> 0 keeps
    /// never-accessed elements schedulable).
    pub smoothing: f64,
    /// Change rate assumed for never-polled elements.
    pub fallback_rate: f64,
    /// Multiplier on the problem bandwidth when sizing the per-epoch
    /// dispatch budget: < 1.0 deliberately starves the dispatcher to
    /// exercise graceful degradation.
    pub budget_factor: f64,
    /// Maximum poll backlog (in polls) an element may carry across
    /// epochs before the excess is shed (stale-but-served degradation).
    pub max_backlog: f64,
    /// Probability that any individual poll attempt fails (injected
    /// deterministically from the seed).
    pub failure_rate: f64,
    /// Retries allowed per planned poll after its first failed attempt.
    pub max_retries: u32,
    /// Delay (periods) added per retry attempt.
    pub retry_backoff: f64,
    /// Master seed: failure injection derives from it, so a fixed seed
    /// plus a fixed input stream reproduces the run byte-for-byte.
    pub seed: u64,
    /// Run the per-epoch poll-credit ledger audit
    /// ([`LedgerAudit`](crate::audit::LedgerAudit)): every epoch the
    /// dispatcher's conservation law is checked and breaches are counted
    /// on the `audit.violations` obs counter. Off by default — the check
    /// is cheap (one pass over the credit vector) but exists for tests,
    /// CI, and debugging, not the hot path.
    pub audit: bool,
    /// Freshness-SLO rules evaluated against every epoch's telemetry
    /// sample ([`SloEngine`](freshen_obs::SloEngine)). `None` disables
    /// evaluation; the time-series ring is populated either way.
    pub slo: Option<SloConfig>,
    /// Emit a one-line progress summary to stderr every this many epochs
    /// (0 disables). Purely cosmetic: never touches reports, snapshots,
    /// or any deterministic output.
    pub progress_every: usize,
    /// Per-poll cost weight `γ` handed to the scheduler's solver: every
    /// solve (initial, warm, repair) maximizes `PF − γ·Σ cᵢfᵢ` against
    /// the problem's cost column and the repair certificate checks the
    /// cost-adjusted KKT condition. `0.0` (the default) is the cost-blind
    /// objective, bit-for-bit.
    pub poll_cost: f64,
    /// Optional cost-spend cap `C`. When set, the engine calibrates the
    /// levy once at startup — the dual bisection
    /// (`LagrangeSolver::solve_cost_budget`) on the *prior* problem
    /// yields the shadow price γ\*, which is then installed as the
    /// operating `poll_cost` for the whole run. Mutually exclusive with a
    /// nonzero `poll_cost` (the cap decides the levy; setting both is a
    /// config error). Calibration is a pure function of the prior, so a
    /// restored run re-derives the identical levy.
    pub cost_budget: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epochs: 40,
            epoch_len: 1.0,
            warmup_epochs: 5,
            drift_threshold: 0.05,
            resolve_policy: ResolvePolicy::DriftGated,
            repair_fraction: 0.1,
            estimator: EstimatorKind::Ewma { gain: 0.1 },
            profile_decay: 0.9995,
            smoothing: 0.5,
            fallback_rate: 1.0,
            budget_factor: 1.0,
            max_backlog: 2.0,
            failure_rate: 0.0,
            max_retries: 2,
            retry_backoff: 0.05,
            seed: 0,
            audit: false,
            slo: None,
            progress_every: 0,
            poll_cost: 0.0,
            cost_budget: None,
        }
    }
}

impl EngineConfig {
    /// Validate every knob; the error names the offending field.
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &'static str, value: f64) -> CoreError {
            CoreError::InvalidValue {
                what,
                index: None,
                value,
            }
        }
        if self.epochs == 0 {
            return Err(CoreError::InvalidConfig("engine needs ≥ 1 epoch".into()));
        }
        if self.warmup_epochs >= self.epochs {
            return Err(CoreError::InvalidConfig(format!(
                "warmup ({}) must leave at least one measured epoch of {}",
                self.warmup_epochs, self.epochs
            )));
        }
        if !self.epoch_len.is_finite() || self.epoch_len <= 0.0 {
            return Err(bad("epoch length", self.epoch_len));
        }
        if !self.drift_threshold.is_finite() || self.drift_threshold <= 0.0 {
            return Err(bad("drift threshold", self.drift_threshold));
        }
        if !self.repair_fraction.is_finite() || !(0.0..=1.0).contains(&self.repair_fraction) {
            return Err(bad("repair fraction", self.repair_fraction));
        }
        match self.estimator {
            EstimatorKind::Ewma { gain } => {
                if !gain.is_finite() || gain <= 0.0 || gain > 1.0 {
                    return Err(bad("estimator gain", gain));
                }
            }
            EstimatorKind::Window { len } => {
                if len == 0 {
                    return Err(CoreError::InvalidConfig(
                        "window estimator needs ≥ 1 slot".into(),
                    ));
                }
            }
            EstimatorKind::Lln => {}
            EstimatorKind::Sa { gain, decay } => {
                if !gain.is_finite() || gain <= 0.0 || gain > 1.0 {
                    return Err(bad("estimator gain", gain));
                }
                if !decay.is_finite() || decay <= 0.5 || decay > 1.0 {
                    return Err(bad("estimator gain decay", decay));
                }
            }
        }
        if !self.poll_cost.is_finite() || self.poll_cost < 0.0 {
            return Err(bad("poll cost weight", self.poll_cost));
        }
        if let Some(cap) = self.cost_budget {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(bad("cost budget", cap));
            }
            if self.poll_cost > 0.0 {
                return Err(CoreError::InvalidConfig(
                    "cost budget and poll cost are mutually exclusive: the cap calibrates \
                     the levy itself"
                        .into(),
                ));
            }
        }
        if !self.profile_decay.is_finite() || self.profile_decay <= 0.0 || self.profile_decay > 1.0
        {
            return Err(bad("profile decay", self.profile_decay));
        }
        if !self.smoothing.is_finite() || self.smoothing <= 0.0 {
            return Err(bad("profile smoothing", self.smoothing));
        }
        if !self.fallback_rate.is_finite() || self.fallback_rate <= 0.0 {
            return Err(bad("fallback change rate", self.fallback_rate));
        }
        if !self.budget_factor.is_finite() || self.budget_factor <= 0.0 {
            return Err(bad("budget factor", self.budget_factor));
        }
        if !self.max_backlog.is_finite() || self.max_backlog < 1.0 {
            return Err(bad("max backlog", self.max_backlog));
        }
        if !self.failure_rate.is_finite() || !(0.0..1.0).contains(&self.failure_rate) {
            return Err(bad("failure rate", self.failure_rate));
        }
        if !self.retry_backoff.is_finite() || self.retry_backoff < 0.0 {
            return Err(bad("retry backoff", self.retry_backoff));
        }
        if let Some(slo) = &self.slo {
            slo.validate().map_err(CoreError::InvalidConfig)?;
        }
        Ok(())
    }

    /// Total simulated horizon in periods.
    pub fn horizon(&self) -> f64 {
        self.epochs as f64 * self.epoch_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        EngineConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_names_each_bad_field() {
        let ok = EngineConfig::default();
        let cases: Vec<(EngineConfig, &str)> = vec![
            (
                EngineConfig {
                    epochs: 0,
                    ..ok.clone()
                },
                "epoch",
            ),
            (
                EngineConfig {
                    warmup_epochs: 40,
                    ..ok.clone()
                },
                "warmup",
            ),
            (
                EngineConfig {
                    epoch_len: 0.0,
                    ..ok.clone()
                },
                "epoch length",
            ),
            (
                EngineConfig {
                    drift_threshold: -1.0,
                    ..ok.clone()
                },
                "drift threshold",
            ),
            (
                EngineConfig {
                    repair_fraction: 1.5,
                    ..ok.clone()
                },
                "repair fraction",
            ),
            (
                EngineConfig {
                    estimator: EstimatorKind::Ewma { gain: 2.0 },
                    ..ok.clone()
                },
                "gain",
            ),
            (
                EngineConfig {
                    estimator: EstimatorKind::Window { len: 0 },
                    ..ok.clone()
                },
                "window",
            ),
            (
                EngineConfig {
                    profile_decay: 0.0,
                    ..ok.clone()
                },
                "decay",
            ),
            (
                EngineConfig {
                    smoothing: 0.0,
                    ..ok.clone()
                },
                "smoothing",
            ),
            (
                EngineConfig {
                    fallback_rate: f64::NAN,
                    ..ok.clone()
                },
                "fallback",
            ),
            (
                EngineConfig {
                    budget_factor: 0.0,
                    ..ok.clone()
                },
                "budget",
            ),
            (
                EngineConfig {
                    max_backlog: 0.5,
                    ..ok.clone()
                },
                "backlog",
            ),
            (
                EngineConfig {
                    failure_rate: 1.0,
                    ..ok.clone()
                },
                "failure",
            ),
            (
                EngineConfig {
                    retry_backoff: -0.1,
                    ..ok.clone()
                },
                "backoff",
            ),
            (
                EngineConfig {
                    slo: Some(SloConfig {
                        target_pf: 2.0,
                        ..SloConfig::default()
                    }),
                    ..ok.clone()
                },
                "slo",
            ),
            (
                EngineConfig {
                    estimator: EstimatorKind::Sa {
                        gain: 0.5,
                        decay: 0.3,
                    },
                    ..ok.clone()
                },
                "decay",
            ),
            (
                EngineConfig {
                    poll_cost: -0.1,
                    ..ok.clone()
                },
                "poll cost",
            ),
            (
                EngineConfig {
                    cost_budget: Some(0.0),
                    ..ok.clone()
                },
                "cost budget",
            ),
            (
                EngineConfig {
                    poll_cost: 0.1,
                    cost_budget: Some(5.0),
                    ..ok.clone()
                },
                "mutually exclusive",
            ),
        ];
        for (config, hint) in cases {
            let err = config.validate().unwrap_err().to_string().to_lowercase();
            assert!(err.contains(hint), "error `{err}` should mention `{hint}`");
        }
    }

    #[test]
    fn horizon_is_epochs_times_length() {
        let c = EngineConfig {
            epochs: 8,
            epoch_len: 2.5,
            ..EngineConfig::default()
        };
        assert_eq!(c.horizon(), 20.0);
    }
}
