//! **Figure 7** — the big case (Table 3 setup: 500 000 objects, 1 000 000
//! updates/period, 250 000 syncs/period, θ = 1.0, σ = 2.0): perceived
//! freshness vs number of partitions (20–200) for the four techniques.
//!
//! The exact optimum is deliberately not computed — the point of the
//! figure is that it *cannot* be at this scale — but the curves' shapes
//! match the small case: PF-partitioning is the clear winner and solutions
//! beyond ~100 partitions barely improve.
//!
//! Honour `FRESHEN_N` to scale the mirror down for smoke tests.

use freshen_bench::{big_case_n, header, heuristic_pf, parallel_map, row, PARTITIONS_BIG};
use freshen_heuristics::{HeuristicConfig, PartitionCriterion};
use freshen_workload::scenario::Scenario;

fn main() {
    let n = big_case_n();
    let problem = Scenario::table3_scaled(n, 42)
        .problem()
        .expect("table3 scenario builds");
    let criteria = [
        PartitionCriterion::PerceivedFreshness,
        PartitionCriterion::AccessProb,
        PartitionCriterion::ChangeRate,
        PartitionCriterion::AccessOverChange,
    ];
    println!("# Figure 7: big case (N = {n}), PF vs num partitions");
    header(&[
        "num_partitions",
        "PF_PARTITIONING",
        "P_PARTITIONING",
        "LAMBDA_PARTITIONING",
        "P_OVER_LAMBDA_PARTITIONING",
    ]);
    let grid: Vec<(usize, PartitionCriterion)> = PARTITIONS_BIG
        .iter()
        .flat_map(|&k| criteria.iter().map(move |&c| (k, c)))
        .collect();
    let results = parallel_map(&grid, |&(k, criterion)| {
        heuristic_pf(
            &problem,
            HeuristicConfig {
                criterion,
                num_partitions: k,
                ..Default::default()
            },
        )
    });
    for (i, &k) in PARTITIONS_BIG.iter().enumerate() {
        let cells: Vec<f64> = (0..criteria.len())
            .map(|j| results[i * criteria.len() + j])
            .collect();
        row(&k.to_string(), &cells);
    }
}
