//! **Parallel scaling benchmark** — the sharded two-level solve plus
//! parallel PF evaluation across mirror sizes and worker counts.
//!
//! For each mirror size N the serial baseline is the global Lagrange
//! solve followed by a serial PF evaluation. Each (N, threads) cell then
//! runs the two-level sharded solve (outer bisection on the shared
//! multiplier, per-shard water-filling fanned out on the pool) plus the
//! chunked parallel PF evaluation, reporting wall-clock speedup over the
//! serial baseline and PF parity |pf − pf_serial| (the shard equivalence
//! argument says parity should sit at solver tolerance, ≤ 1e-6).
//!
//! Grid: N ∈ {10⁴, 10⁵, 10⁶} × threads ∈ {1, 2, 4, 8}; pass `--smoke`
//! for the CI-sized grid N ∈ {10⁴, 10⁵} × threads ∈ {1, 2, 4}. Telemetry
//! lands in `results/BENCH_scale.json`.
//!
//! Speedups only materialize with real cores — on a single-core box every
//! cell degenerates to ~1×, which the header line calls out.

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_core::exec::Executor;
use freshen_core::problem::Problem;
use freshen_obs::Recorder;
use freshen_solver::LagrangeSolver;

/// Shard count for the two-level solve: enough shards to keep every
/// worker fed at the largest thread count without shrinking the per-shard
/// water-filling below chunking granularity.
const SHARDS: usize = 32;

/// Deterministic synthetic mirror: striped rates, Zipf-flavoured access
/// weights, and a striped size mix — no RNG, so every run and every
/// worker count sees byte-identical inputs.
fn scale_problem(n: usize) -> Problem {
    let rates: Vec<f64> = (0..n).map(|i| 0.1 + (i % 17) as f64 * 0.3).collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let sizes: Vec<f64> = (0..n).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect();
    Problem::builder()
        .change_rates(rates)
        .access_weights(weights)
        .sizes(sizes)
        .bandwidth(n as f64 / 4.0)
        .build()
        .expect("scale problem builds")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, thread_grid): (&[usize], &[usize]) = if smoke {
        (&[10_000, 100_000], &[1, 2, 4])
    } else {
        (&[10_000, 100_000, 1_000_000], &[1, 2, 4, 8])
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "# Sharded parallel solve+evaluate scaling ({} shards, {cores} cores available{})",
        SHARDS,
        if cores < *thread_grid.last().expect("non-empty grid") {
            "; speedup is core-bound on this machine"
        } else {
            ""
        }
    );
    header(&[
        "run",
        "n",
        "threads",
        "wall_seconds",
        "speedup",
        "pf",
        "pf_parity",
    ]);

    let mut bench = BenchReport::new("scale")
        .with_meta("smoke", smoke)
        .with_meta("shards", SHARDS)
        .with_meta(
            "sizes",
            sizes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
        )
        .with_meta(
            "threads",
            thread_grid
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
        );
    for &n in sizes {
        let problem = scale_problem(n);

        // Serial baseline: global solve + serial evaluation.
        let serial_recorder = Recorder::enabled();
        let serial_solver = LagrangeSolver {
            recorder: serial_recorder.clone(),
            ..Default::default()
        };
        let (serial_pf, serial_wall) = timed(|| {
            let solution = serial_solver.solve(&problem).expect("serial solve");
            problem.perceived_freshness(&solution.frequencies)
        });
        let label = format!("serial/n={n}");
        row(&label, &[n as f64, 1.0, serial_wall, 1.0, serial_pf, 0.0]);
        let mut serial_run = BenchRun::from_recorder(&label, serial_wall, &serial_recorder);
        serial_run.pf = Some(serial_pf);
        bench.push(serial_run);

        for &threads in thread_grid {
            let recorder = Recorder::enabled();
            let executor = Executor::thread_pool(threads).with_recorder(recorder.clone());
            let solver = LagrangeSolver {
                recorder: recorder.clone(),
                executor: executor.clone(),
                ..Default::default()
            };
            let (pf, wall) = timed(|| {
                let solution = solver
                    .solve_sharded(&problem, SHARDS)
                    .expect("sharded solve");
                problem.perceived_freshness_exec(&solution.frequencies, &executor)
            });
            let speedup = serial_wall / wall.max(f64::MIN_POSITIVE);
            let parity = (pf - serial_pf).abs();
            let label = format!("sharded/n={n}/threads={threads}");
            row(
                &label,
                &[n as f64, threads as f64, wall, speedup, pf, parity],
            );
            let mut run = BenchRun::from_recorder(&label, wall, &recorder);
            run.pf = Some(pf);
            bench.push(run);
        }
    }

    match bench.write() {
        Ok(path) => println!("# telemetry: {}", path.display()),
        Err(e) => eprintln!("# telemetry write failed: {e}"),
    }
}
